//! Umbrella crate for the Mixen reproduction workspace.
//!
//! Re-exports the public surface of every member crate so the examples and
//! integration tests read naturally. Library users should depend on the
//! individual crates (`mixen-core`, `mixen-graph`, …) directly.

pub use mixen_algos as algos;
pub use mixen_baselines as baselines;
pub use mixen_cachesim as cachesim;
pub use mixen_core as core;
pub use mixen_graph as graph;
