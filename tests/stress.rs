//! Stress tests: larger randomized structures, degenerate shapes and long
//! iteration counts — the configurations most likely to expose indexing or
//! phase-scheduling bugs that small hand-built graphs miss.

use mixen_algos::{bfs, connected_components, default_root, pagerank, Engine, PageRankOpts};
use mixen_baselines::ReferenceEngine;
use mixen_core::{MixenEngine, MixenOpts, RegularOrdering};
use mixen_graph::{gen, Dataset, EdgeList, Graph, Scale};

fn close_all(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{ctx}: node {i}: {x} vs {y}"
        );
    }
}

#[test]
fn long_pagerank_runs_stay_in_agreement() {
    let g = Dataset::Wiki.generate(Scale::Tiny, 55);
    let mixen = MixenEngine::new(&g, MixenOpts::default());
    let reference = ReferenceEngine::new(&g);
    let a = pagerank(&g, &mixen, PageRankOpts::default(), 100);
    let b = pagerank(&g, &reference, PageRankOpts::default(), 100);
    close_all(&a, &b, 1e-3, "100-iteration pagerank");
}

#[test]
fn every_ordering_policy_gives_identical_results() {
    let g = Dataset::Pld.generate(Scale::Tiny, 66);
    let reference = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 8);
    for ordering in [
        RegularOrdering::Original,
        RegularOrdering::HubsFirst,
        RegularOrdering::ByInDegree,
    ] {
        let engine = MixenEngine::new(
            &g,
            MixenOpts {
                ordering,
                ..MixenOpts::default()
            },
        );
        let got = pagerank(&g, &engine, PageRankOpts::default(), 8);
        close_all(&got, &reference, 1e-3, &format!("{ordering:?}"));
    }
}

#[test]
fn pathological_single_hub_star() {
    // 50k spokes into one hub: one giant row, extreme load imbalance.
    let n = 50_001u32;
    let mut pairs: Vec<(u32, u32)> = (1..n).map(|u| (u, 0)).collect();
    pairs.push((0, 1)); // make the hub regular
    let g = Graph::from_pairs(n as usize, &pairs);
    let engine = MixenEngine::new(
        &g,
        MixenOpts {
            block_side: 1024,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        },
    );
    let got = Engine::iterate::<f32, _, _>(&engine, |_| 1.0, |_, s| s, 1);
    assert_eq!(got[0], (n - 1) as f32);
    assert_eq!(got[1], 1.0);
    assert_eq!(got[2], 0.0);
}

#[test]
fn giant_single_row_cannot_be_split_but_still_works() {
    // One source with edges to every node: the load balancer must keep the
    // row intact (bins are per block-row) and still cover every edge.
    let n = 10_000u32;
    let mut pairs: Vec<(u32, u32)> = (0..n).map(|v| (0, v)).collect();
    pairs.extend((1..n).map(|u| (u, 0)));
    let g = Graph::from_pairs(n as usize, &pairs);
    let engine = MixenEngine::new(
        &g,
        MixenOpts {
            block_side: 64,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        },
    );
    let got = Engine::iterate::<f32, _, _>(&engine, |_| 1.0, |_, s| s, 1);
    let want = ReferenceEngine::new(&g).iterate::<f32, _, _>(|_| 1.0, |_, s| s, 1);
    close_all(&got, &want, 1e-3, "giant row");
}

#[test]
fn bfs_on_deep_chain_exercises_many_sparse_levels() {
    let n = 30_000u32;
    let pairs: Vec<(u32, u32)> = (0..n - 1).map(|u| (u, u + 1)).collect();
    let g = Graph::from_pairs(n as usize, &pairs);
    let engine = MixenEngine::new(
        &g,
        MixenOpts {
            block_side: 512,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        },
    );
    let depths = bfs(&engine, 0);
    for (v, &d) in depths.iter().enumerate() {
        assert_eq!(d, v as i32);
    }
}

#[test]
fn cc_on_many_small_components() {
    // 1000 disjoint triangles.
    let mut el = EdgeList::new(3000);
    for t in 0..1000u32 {
        let base = t * 3;
        el.push(base, base + 1);
        el.push(base + 1, base + 2);
        el.push(base + 2, base);
    }
    el.symmetrize();
    let g = Graph::from_edge_list(&el);
    let engine = MixenEngine::new(&g, MixenOpts::default());
    let labels = connected_components(&g, &engine, 20);
    for t in 0..1000u32 {
        let base = t * 3;
        assert_eq!(labels[base as usize], base);
        assert_eq!(labels[base as usize + 1], base);
        assert_eq!(labels[base as usize + 2], base);
    }
}

#[test]
fn profile_generator_scales_smoothly() {
    // Same spec at growing n keeps its class fractions.
    for n in [500usize, 2000, 8000] {
        let g = gen::generate_profile(&gen::ProfileSpec {
            n,
            avg_degree: 8.0,
            frac_regular: 0.3,
            frac_seed: 0.3,
            frac_sink: 0.3,
            frac_isolated: 0.1,
            beta: 0.5,
            in_skew: 0.8,
            out_skew: 0.5,
            seed: 77,
        });
        let s = mixen_graph::StructuralStats::of(&g);
        assert!(
            (s.frac_regular - 0.3).abs() < 0.05,
            "n={n}: {}",
            s.frac_regular
        );
        assert!((s.frac_isolated - 0.1).abs() < 0.05, "n={n}");
    }
}

#[test]
fn default_root_traverses_giant_component() {
    let g = Dataset::Rmat.generate(Scale::Tiny, 88);
    let engine = MixenEngine::new(&g, MixenOpts::default());
    let depths = bfs(&engine, default_root(&g));
    let reached = depths.iter().filter(|&&d| d >= 0).count();
    assert!(
        reached * 3 > g.n(),
        "root must reach a sizable component: {reached}/{}",
        g.n()
    );
}
