//! Corrupted-input corpus: every malformed, truncated, or bit-flipped graph
//! file must surface as a typed `Err(GraphError)` — never a panic — through
//! both format versions, and numeric poison must be caught by the supervised
//! runner with a populated report.
//!
//! Fault-injection cases are driven by `mixen_graph::faults`, so each
//! failure is reproducible from `(input, plan)`.

use mixen_algos::{pagerank_supervised, PageRankOpts};
use mixen_core::{EngineUsed, RobustRunner, RunnerOpts};
use mixen_graph::io::{self, crc32, MAX_EDGES, MAX_NODES};
use mixen_graph::{FaultPlan, FaultyReader, Graph, GraphError};

fn sample_graph() -> Graph {
    Graph::from_pairs(
        9,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (1, 0),
            (3, 0),
            (3, 5),
            (4, 1),
            (4, 2),
            (0, 5),
            (2, 6),
            (6, 7),
        ],
    )
}

fn v2_bytes(g: &Graph) -> Vec<u8> {
    let mut out = Vec::new();
    io::write_csr(g, &mut out).unwrap();
    out
}

fn v1_bytes(g: &Graph) -> Vec<u8> {
    let mut out = Vec::new();
    io::write_csr_v1(g, &mut out).unwrap();
    out
}

fn assert_same(a: &Graph, b: &Graph) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.m(), b.m());
    assert_eq!(a.out_csr().ptr(), b.out_csr().ptr());
    assert_eq!(a.out_csr().idx(), b.out_csr().idx());
}

#[test]
fn v2_roundtrip_with_checksum() {
    let g = sample_graph();
    let bytes = v2_bytes(&g);
    assert_eq!(&bytes[..4], b"MXG2");
    let loaded = io::read_csr(&mut bytes.as_slice()).unwrap();
    assert_same(&g, &loaded);
}

#[test]
fn v1_files_still_load() {
    // Read-compat with files written by the seed (pre-checksum) format.
    let g = sample_graph();
    let bytes = v1_bytes(&g);
    assert_eq!(&bytes[..4], b"MXG1");
    let loaded = io::read_csr(&mut bytes.as_slice()).unwrap();
    assert_same(&g, &loaded);
}

#[test]
fn every_truncation_errors_never_panics() {
    let g = sample_graph();
    for bytes in [v1_bytes(&g), v2_bytes(&g)] {
        for cut in 0..bytes.len() {
            let err = io::read_csr(&mut &bytes[..cut]).expect_err(&format!(
                "prefix of {cut}/{} bytes must not parse",
                bytes.len()
            ));
            // Truncation may surface as plain I/O (header EOF), an
            // invariant breach, or a checksum mismatch — but always typed.
            match err {
                GraphError::Io(_)
                | GraphError::Format(_)
                | GraphError::Invariant(_)
                | GraphError::Checksum { .. } => {}
                other => panic!("unexpected variant for cut {cut}: {other}"),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_caught_in_v2() {
    // The CRC32 guarantees any single-bit corruption in a v2 file is
    // detected (header flips change magic/counts, payload flips break the
    // checksum).
    let g = sample_graph();
    let bytes = v2_bytes(&g);
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1 << bit;
            assert!(
                io::read_csr(&mut mutated.as_slice()).is_err(),
                "flip at byte {byte} bit {bit} went unnoticed"
            );
        }
    }
}

#[test]
fn flipped_payload_bit_is_a_checksum_error() {
    let g = sample_graph();
    let mut bytes = v2_bytes(&g);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    match io::read_csr(&mut bytes.as_slice()) {
        // Flips that keep the CSR structurally valid are caught by the CRC;
        // flips that break monotonicity first may surface as Invariant.
        Err(GraphError::Checksum { stored, computed }) => assert_ne!(stored, computed),
        Err(GraphError::Invariant(_)) => {}
        other => panic!("expected checksum/invariant error, got {other:?}"),
    }
}

#[test]
fn flipped_stored_crc_is_a_checksum_error() {
    let g = sample_graph();
    let mut bytes = v2_bytes(&g);
    bytes[20] ^= 0x01; // the stored CRC field (after magic + n + m)
    match io::read_csr(&mut bytes.as_slice()) {
        Err(GraphError::Checksum { stored, computed }) => assert_ne!(stored, computed),
        other => panic!("expected checksum error, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_a_format_error() {
    for magic in [*b"MXG0", *b"GXM1", *b"\0\0\0\0", *b"MXG3"] {
        let mut bytes = v2_bytes(&sample_graph());
        bytes[..4].copy_from_slice(&magic);
        match io::read_csr(&mut bytes.as_slice()) {
            Err(GraphError::Format(_)) => {}
            other => panic!("magic {magic:?}: expected format error, got {other:?}"),
        }
    }
}

#[test]
fn absurd_headers_are_capacity_errors() {
    // A header claiming u64::MAX nodes must be rejected before any
    // allocation is attempted (the pre-allocation DoS).
    for (n, m) in [
        (u64::MAX, 0),
        (MAX_NODES + 1, 0),
        (1, u64::MAX),
        (1, MAX_EDGES + 1),
    ] {
        for magic in [*b"MXG1", *b"MXG2"] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&magic);
            bytes.extend_from_slice(&n.to_le_bytes());
            bytes.extend_from_slice(&m.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 64]);
            match io::read_csr(&mut bytes.as_slice()) {
                Err(GraphError::Capacity {
                    requested, limit, ..
                }) => {
                    assert!(requested > limit);
                }
                other => panic!("n={n} m={m}: expected capacity error, got {other:?}"),
            }
        }
    }
}

#[test]
fn non_monotone_ptr_is_an_invariant_error() {
    // Hand-build a v1 file whose ptr array decreases.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"MXG1");
    bytes.extend_from_slice(&3u64.to_le_bytes());
    bytes.extend_from_slice(&2u64.to_le_bytes());
    for p in [0u64, 2, 1, 2] {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    for i in [0u32, 1] {
        bytes.extend_from_slice(&i.to_le_bytes());
    }
    match io::read_csr(&mut bytes.as_slice()) {
        Err(GraphError::Invariant(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected invariant error, got {other:?}"),
    }
}

#[test]
fn out_of_range_idx_is_an_invariant_error() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"MXG1");
    bytes.extend_from_slice(&3u64.to_le_bytes());
    bytes.extend_from_slice(&2u64.to_le_bytes());
    for p in [0u64, 1, 2, 2] {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    for i in [1u32, 99] {
        bytes.extend_from_slice(&i.to_le_bytes());
    }
    match io::read_csr(&mut bytes.as_slice()) {
        Err(GraphError::Invariant(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected invariant error, got {other:?}"),
    }
}

#[test]
fn seeded_fault_plans_never_panic_and_are_deterministic() {
    let g = sample_graph();
    let bytes = v2_bytes(&g);
    for seed in 0..200u64 {
        let read = |s| {
            let plan = FaultPlan::from_seed(s, bytes.len() as u64);
            let mut r = FaultyReader::new(bytes.as_slice(), plan);
            io::read_csr(&mut r)
        };
        let (a, b) = (read(seed), read(seed));
        match (&a, &b) {
            (Ok(ga), Ok(gb)) => assert_same(ga, gb),
            (Err(ea), Err(eb)) => {
                assert_eq!(
                    ea.kind_name(),
                    eb.kind_name(),
                    "seed {seed} not deterministic"
                )
            }
            _ => panic!("seed {seed}: one attempt succeeded, the other failed"),
        }
    }
}

#[test]
fn interrupted_storms_alone_are_survivable() {
    // Interruption-only plans must not lose data: read_csr retries through
    // them and still verifies the checksum.
    let g = sample_graph();
    let bytes = v2_bytes(&g);
    for count in [1u32, 2, 5] {
        let plan = FaultPlan::from_faults([
            mixen_graph::Fault::Interrupted { count },
            mixen_graph::Fault::ShortChunks(3),
        ]);
        let mut r = FaultyReader::new(bytes.as_slice(), plan);
        let loaded = io::read_csr(&mut r).unwrap_or_else(|e| panic!("count {count}: {e}"));
        assert_same(&g, &loaded);
    }
}

#[test]
fn crc32_check_vector() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

#[test]
fn malformed_text_lines_are_reported_with_line_numbers() {
    let cases: &[(&str, usize)] = &[
        ("0 1\n1 two\n", 2),
        ("x\n", 1),
        ("0 1\n2\n", 2),
        ("0 1\n\n1 2 3\n", 3),
    ];
    for (text, line) in cases {
        match io::read_edge_list(text.as_bytes(), 0) {
            Err(GraphError::Parse { line: l, .. }) => assert_eq!(l, *line, "input {text:?}"),
            other => panic!("{text:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn oversized_text_declarations_are_rejected() {
    // n= beyond the cap, with the line number pinpointed.
    let text = "# n=4294967295\n0 1\n";
    match io::read_edge_list_capped(text.as_bytes(), 0, 1 << 20) {
        Err(GraphError::Parse { line, .. }) => assert_eq!(line, 1),
        other => panic!("expected parse error, got {other:?}"),
    }
    // Edge endpoints beyond the cap are a capacity error.
    let text = "0 2000000\n";
    match io::read_edge_list_capped(text.as_bytes(), 0, 1 << 20) {
        Err(GraphError::Capacity {
            requested, limit, ..
        }) => {
            assert_eq!(requested, 2_000_001);
            assert_eq!(limit, 1 << 20);
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Checkpoint (`CKPT1`) corpus: the durability layer gets the same hostile
// treatment as the graph formats — every corruption is a typed error.
// ---------------------------------------------------------------------------

fn sample_checkpoint(g: &Graph) -> (mixen_graph::Checkpoint, Vec<u8>) {
    let vals: Vec<f32> = (0..g.n()).map(|i| 0.25 + i as f32).collect();
    let crc = mixen_graph::io::graph_checksum(g);
    let ck = mixen_graph::Checkpoint::from_values(7, 1.5e-3, 0xfeed_beef, crc, &vals);
    let mut bytes = Vec::new();
    ck.write_to(&mut bytes).unwrap();
    (ck, bytes)
}

#[test]
fn checkpoint_truncations_error_never_panic() {
    let g = sample_graph();
    let (_, bytes) = sample_checkpoint(&g);
    for cut in 0..bytes.len() {
        let err = mixen_graph::Checkpoint::read_from(&mut &bytes[..cut]).expect_err(&format!(
            "prefix of {cut}/{} bytes must not parse",
            bytes.len()
        ));
        match err {
            GraphError::Io(_) | GraphError::Format(_) | GraphError::Checksum { .. } => {}
            other => panic!("unexpected variant for cut {cut}: {other}"),
        }
    }
}

#[test]
fn checkpoint_payload_flip_is_a_checksum_error() {
    let g = sample_graph();
    let (_, bytes) = sample_checkpoint(&g);
    // Flip one byte in every payload position; all must be caught by the
    // payload CRC.
    let header = bytes.len() - g.n() * 4;
    for pos in header..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x04;
        match mixen_graph::Checkpoint::read_from(&mut mutated.as_slice()) {
            Err(GraphError::Checksum { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("payload flip at {pos}: expected checksum error, got {other:?}"),
        }
    }
}

#[test]
fn checkpoint_graph_mismatch_is_rejected_on_resume() {
    let g = sample_graph();
    let dir = std::env::temp_dir().join("mixen_corpus_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stale.ckpt");
    let runner = RobustRunner::new(RunnerOpts {
        checkpoint_path: Some(path.clone()),
        ..RunnerOpts::default()
    });
    runner
        .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 3)
        .unwrap();
    // Same node count, different edges: only the graph checksum tells them
    // apart, and it must.
    let other = Graph::from_pairs(9, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let err = runner.resume_from::<f32>(&other, &path).unwrap_err();
    assert!(matches!(err, GraphError::Format(_)), "{err}");
    assert!(err.to_string().contains("graph checksum"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_half_checkpoint_is_typed_and_old_snapshot_survives() {
    // The torn-rename scenario: a crash mid-write leaves a half-length tmp
    // file. The reader rejects the fragment with a typed error, and the
    // atomic protocol means the previous full snapshot is still intact.
    let g = sample_graph();
    let dir = std::env::temp_dir().join("mixen_corpus_torn");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("torn.ckpt");
    let (ck, bytes) = sample_checkpoint(&g);
    ck.save_atomic(&path).unwrap();
    // Simulate the torn in-flight write next to the durable snapshot.
    let tmp = mixen_graph::ckpt::tmp_path(&path);
    std::fs::write(&tmp, &bytes[..bytes.len() / 2]).unwrap();
    let err = mixen_graph::Checkpoint::load(&tmp).unwrap_err();
    assert!(
        matches!(err, GraphError::Io(_) | GraphError::Format(_)),
        "{err}"
    );
    let durable = mixen_graph::Checkpoint::load(&path).unwrap();
    assert_eq!(durable, ck);
    std::fs::remove_file(&tmp).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_writes_through_fault_plans_are_typed() {
    // Disk-full and short-write plans against the checkpoint encoder: the
    // write fails with a typed I/O error, never a panic.
    let g = sample_graph();
    let (ck, bytes) = sample_checkpoint(&g);
    for k in [0u64, 1, 16, bytes.len() as u64 - 1] {
        let mut out = Vec::new();
        let mut w = mixen_graph::FaultyWriter::new(&mut out, FaultPlan::disk_full_at(k));
        let err = ck.write_to(&mut w).expect_err(&format!("disk full at {k}"));
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
    }
    // Short writes alone must not corrupt anything: the writer loops.
    let mut out = Vec::new();
    let mut w = mixen_graph::FaultyWriter::new(&mut out, FaultPlan::short_writes(3));
    ck.write_to(&mut w).unwrap();
    assert_eq!(out, bytes);
}

#[test]
fn nan_poisoned_pagerank_is_a_numeric_error_with_report() {
    let g = sample_graph();
    let runner = RobustRunner::new(RunnerOpts::default());
    let failure = pagerank_supervised(
        &g,
        &runner,
        PageRankOpts {
            damping: f32::NAN,
            ..PageRankOpts::default()
        },
        10,
    )
    .expect_err("NaN damping must fail");
    match &failure.error {
        GraphError::Numeric { iteration, msg } => {
            assert!(*iteration <= 1);
            assert!(msg.contains("NaN"), "msg: {msg}");
        }
        other => panic!("expected numeric error, got {other}"),
    }
    // The report describes the run up to the fault.
    assert_eq!(failure.report.engine, EngineUsed::Mixen);
    assert!(failure.report.iterations <= 1);
    assert!(failure.to_string().contains("iteration"));
}

#[test]
fn divergent_iteration_is_a_numeric_error() {
    let g = sample_graph();
    let runner = RobustRunner::new(RunnerOpts {
        divergence_limit: 1e6,
        ..RunnerOpts::default()
    });
    let failure = runner
        .run::<f32, _, _>(&g, |_| 1.0, |_, s| 100.0 * s + 100.0, 64)
        .expect_err("exponential blowup must be caught");
    assert!(matches!(failure.error, GraphError::Numeric { .. }));
    assert!(failure.report.iterations >= 1);
}
