//! Cross-crate integration: every framework must produce the same results
//! for every algorithm on every dataset family — the load-bearing guarantee
//! that the benchmark tables compare identical computations.

use mixen_algos::{
    bfs, collaborative_filtering, default_root, hits, indegree, pagerank, salsa, AnyEngine, CfOpts,
    Engine, EngineKind, PageRankOpts, LATENT_DIM,
};
use mixen_baselines::ReferenceEngine;
use mixen_core::{MixenEngine, MixenOpts};
use mixen_graph::{Dataset, Graph, Scale};

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

fn check_dataset(d: Dataset) {
    let g = d.generate(Scale::Tiny, 123);
    let reference = ReferenceEngine::new(&g);
    let root = default_root(&g);

    let want_ind = indegree(&reference);
    let want_pr = pagerank(&g, &reference, PageRankOpts::default(), 5);
    let want_cf = collaborative_filtering(
        &g,
        &reference,
        CfOpts {
            blend: 0.5,
            iters: 3,
        },
    );
    let want_bfs = bfs(&reference, root);

    for kind in EngineKind::ALL {
        let engine = AnyEngine::build(kind, &g);
        let name = kind.name();

        let ind = indegree(&engine);
        for (i, (a, b)) in ind.iter().zip(&want_ind).enumerate() {
            assert!(
                close(*a, *b, 1e-4),
                "{name}/{}: indegree node {i}: {a} vs {b}",
                d.name()
            );
        }

        let pr = pagerank(&g, &engine, PageRankOpts::default(), 5);
        for (i, (a, b)) in pr.iter().zip(&want_pr).enumerate() {
            assert!(
                close(*a, *b, 1e-3),
                "{name}/{}: pagerank node {i}: {a} vs {b}",
                d.name()
            );
        }

        let cf = collaborative_filtering(
            &g,
            &engine,
            CfOpts {
                blend: 0.5,
                iters: 3,
            },
        );
        for (i, (a, b)) in cf.iter().zip(&want_cf).enumerate() {
            for k in 0..LATENT_DIM {
                assert!(
                    close(a[k], b[k], 1e-3),
                    "{name}/{}: cf node {i} lane {k}",
                    d.name()
                );
            }
        }

        let depths = bfs(&engine, root);
        assert_eq!(depths, want_bfs, "{name}/{}: bfs", d.name());
    }
}

#[test]
fn engines_agree_on_weibo_like() {
    check_dataset(Dataset::Weibo);
}

#[test]
fn engines_agree_on_wiki_like() {
    check_dataset(Dataset::Wiki);
}

#[test]
fn engines_agree_on_pld_like() {
    check_dataset(Dataset::Pld);
}

#[test]
fn engines_agree_on_rmat() {
    check_dataset(Dataset::Rmat);
}

#[test]
fn engines_agree_on_road() {
    check_dataset(Dataset::Road);
}

#[test]
fn hits_and_salsa_match_reference_on_track() {
    let g = Dataset::Track.generate(Scale::Tiny, 9);
    let rev = g.reversed();
    let ref_fwd = ReferenceEngine::new(&g);
    let ref_rev = ReferenceEngine::new(&rev);
    let mix_fwd = MixenEngine::new(&g, MixenOpts::default());
    let mix_rev = MixenEngine::new(&rev, MixenOpts::default());

    let want = hits(g.n(), &ref_fwd, &ref_rev, 5);
    let got = hits(g.n(), &mix_fwd, &mix_rev, 5);
    for (a, b) in got.authority.iter().zip(&want.authority) {
        assert!(close(*a, *b, 1e-3), "hits authority {a} vs {b}");
    }

    let want = salsa(&g, &ref_fwd, &ref_rev, 5);
    let got = salsa(&g, &mix_fwd, &mix_rev, 5);
    for (a, b) in got.hub.iter().zip(&want.hub) {
        assert!(close(*a, *b, 1e-3), "salsa hub {a} vs {b}");
    }
}

#[test]
fn mixen_block_size_does_not_change_results() {
    let g = Dataset::Wiki.generate(Scale::Tiny, 77);
    let reference = ReferenceEngine::new(&g);
    let want = pagerank(&g, &reference, PageRankOpts::default(), 4);
    for side in [64usize, 1024, 65536] {
        let engine = MixenEngine::new(
            &g,
            MixenOpts {
                block_side: side,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
        );
        let got = pagerank(&g, &engine, PageRankOpts::default(), 4);
        for (a, b) in got.iter().zip(&want) {
            assert!(close(*a, *b, 1e-3), "side {side}: {a} vs {b}");
        }
    }
}

#[test]
fn bfs_from_many_roots_on_mixed_connectivity() {
    // Hand-built graph covering every class; roots of every class.
    let g = Graph::from_pairs(
        10,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 0),
            (3, 7),
            (4, 1),
            (1, 7),
            (2, 8),
            (5, 6),
            (6, 5),
        ],
    );
    let reference = ReferenceEngine::new(&g);
    let mixen = MixenEngine::new(&g, MixenOpts::default());
    for root in 0..g.n() as u32 {
        assert_eq!(
            Engine::bfs(&mixen, root),
            reference.bfs(root),
            "root {root}"
        );
    }
}
