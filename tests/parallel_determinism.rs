//! Cross-thread-count determinism of the parallel engine (DESIGN.md §7).
//!
//! Two guarantees are pinned here:
//!
//! * **Schedule determinism per thread count** — the engine's results are a
//!   pure function of (input graph, options, thread count). Re-running at
//!   the same lane count reproduces scores bit-for-bit.
//! * **Tolerance across thread counts** — different lane counts may reduce
//!   float sums in a different association order, so scores are only equal
//!   within `CROSS_THREAD_TOLERANCE` (documented in EXPERIMENTS.md; the
//!   measured small-scale deviation is ~3e-7, two orders below the bound).
//!
//! Control-flow decisions (health checks, fault attribution) must not sit
//! inside that tolerance: the supervised runner pins a divergence fault to
//! the same first-bad iteration whatever the thread count.

use mixen_algos::{pagerank, pagerank_supervised, PageRankOpts};
use mixen_core::{MixenEngine, MixenOpts, RobustRunner, RunnerOpts};
use mixen_graph::{Dataset, Graph, NodeId, Scale};

/// Maximum per-node |score| gap tolerated between runs at different thread
/// counts (unit-normalized PageRank mass). Keep in sync with EXPERIMENTS.md
/// ("Thread scaling") and DESIGN.md §7.
const CROSS_THREAD_TOLERANCE: f32 = 1e-5;

fn skewed_graph() -> Graph {
    Dataset::Weibo.generate(Scale::Tiny, 42)
}

fn pagerank_at(g: &Graph, threads: usize) -> Vec<f32> {
    mixen_pool::with_threads(threads, || {
        let engine = MixenEngine::new(g, MixenOpts::default());
        pagerank(g, &engine, PageRankOpts::default(), 20)
    })
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn pagerank_matches_across_thread_counts_within_tolerance() {
    let g = skewed_graph();
    let base = pagerank_at(&g, 1);
    assert!(base.iter().all(|s| s.is_finite() && *s >= 0.0));
    for threads in [2, 4] {
        let scores = pagerank_at(&g, threads);
        let dev = max_abs_diff(&base, &scores);
        assert!(
            dev <= CROSS_THREAD_TOLERANCE,
            "threads={threads}: max deviation {dev:e} exceeds {CROSS_THREAD_TOLERANCE:e}"
        );
    }
}

#[test]
fn same_thread_count_reproduces_scores_bit_for_bit() {
    let g = skewed_graph();
    for threads in [1, 4] {
        let a = pagerank_at(&g, threads);
        let b = pagerank_at(&g, threads);
        assert_eq!(a, b, "threads={threads} must be schedule-deterministic");
    }
}

#[test]
fn fault_iteration_is_identical_across_thread_counts() {
    let g = skewed_graph();
    // Values grow ~10x per iteration; with limit 1e3 the first bad
    // iteration is fixed by the dynamics alone, so attribution must not
    // depend on how the batch replay was scheduled.
    let apply = |_: NodeId, s: f32| 10.0 * s + 100.0;
    let init = |_: NodeId| 100.0f32;
    let mut expected: Option<(usize, u64)> = None;
    for threads in [1usize, 2, 4] {
        let failure = mixen_pool::with_threads(threads, || {
            let opts = RunnerOpts {
                check_every: 7,
                divergence_limit: 1e3,
                ..RunnerOpts::default()
            };
            RobustRunner::new(opts)
                .run::<f32, _, _>(&g, init, apply, 50)
                .unwrap_err()
        });
        let iteration = failure.report.iterations;
        let bisect_steps = failure.report.metrics.get("fault_bisect_steps");
        match expected {
            None => expected = Some((iteration, bisect_steps)),
            Some(want) => assert_eq!(
                (iteration, bisect_steps),
                want,
                "threads={threads}: fault attribution drifted"
            ),
        }
    }
    // With limit 1e3 and ~10x growth from 100, iteration 1 already
    // overflows the limit.
    assert_eq!(expected.map(|(it, _)| it), Some(1));
}

#[test]
fn supervised_report_carries_pool_counters() {
    let g = skewed_graph();
    let (scores, report) = mixen_pool::with_threads(4, || {
        pagerank_supervised(
            &g,
            &RobustRunner::new(RunnerOpts::default()),
            PageRankOpts::default(),
            10,
        )
        .expect("supervised pagerank must succeed")
    });
    assert!(scores.iter().all(|s| s.is_finite()));
    assert_eq!(report.metrics.get("pool_workers"), 4);
    assert!(
        report.metrics.get("pool_tasks_executed") > 0,
        "a 4-lane run must have executed pool tasks"
    );
}
