//! Cross-crate integration tests for the weighted/semiring extension:
//! weighted Mixen vs the weighted pull oracle on every dataset family, and
//! shortest paths verified against Dijkstra.

use mixen_algos::{dijkstra, sssp, sssp_pull, weighted_spmv};
use mixen_baselines::WPullEngine;
use mixen_core::{MixenOpts, WMixenEngine};
use mixen_graph::{Dataset, NodeId, Scale, WGraph};

fn weighted(d: Dataset, seed: u64) -> WGraph {
    let g = d.generate(Scale::Tiny, seed);
    WGraph::with_hash_weights(&g, 0.5, 4.0, seed ^ 0xABCD)
}

#[test]
fn weighted_engines_agree_on_every_dataset_family() {
    for d in [Dataset::Weibo, Dataset::Wiki, Dataset::Pld, Dataset::Road] {
        let wg = weighted(d, 61);
        let g = wg.topology().clone();
        let mixen = WMixenEngine::new(&wg, MixenOpts::default());
        let pull = WPullEngine::new(&wg);
        // Contract-respecting damped kernel.
        let apply = |_: NodeId, s: f32| 0.2 * s + 1.0;
        let init = move |v: NodeId| if g.in_degree(v) == 0 { 1.0 } else { 0.5 };
        let a = mixen.iterate::<f32, _, _>(&init, apply, 4);
        let b = pull.iterate::<f32, _, _>(&init, apply, 4);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() < 1e-3 * (1.0 + x.abs()),
                "{}: node {i}: {x} vs {y}",
                d.name()
            );
        }
    }
}

#[test]
fn weighted_spmv_matches_manual_accumulation() {
    let wg = weighted(Dataset::Track, 62);
    let engine = WMixenEngine::new(&wg, MixenOpts::default());
    let x: Vec<f32> = (0..wg.n()).map(|i| ((i % 13) + 1) as f32).collect();
    let y = weighted_spmv(&engine, &x);
    // Manual pull for a sample of nodes.
    for v in (0..wg.n() as u32).step_by(97) {
        let want: f32 = wg.in_edges(v).map(|(u, w)| w * x[u as usize]).sum();
        assert!(
            (y[v as usize] - want).abs() < 1e-2 * (1.0 + want.abs()),
            "node {v}: {} vs {want}",
            y[v as usize]
        );
    }
}

#[test]
fn sssp_on_weighted_road_network_matches_dijkstra() {
    let g = Dataset::Road.generate(Scale::Tiny, 63);
    let wg = WGraph::with_hash_weights(&g, 1.0, 9.0, 8);
    let engine = WMixenEngine::new(&wg, MixenOpts::default());
    let root = 0u32;
    let got = sssp(&engine, root, 1_000_000);
    let pull = sssp_pull(&wg, root, 1_000_000);
    let want = dijkstra(&wg, root);
    for v in 0..wg.n() {
        assert!(
            (got[v] - want[v]).abs() < 1e-2 || (got[v].is_infinite() && want[v].is_infinite()),
            "mixen node {v}: {} vs {}",
            got[v],
            want[v]
        );
        assert!(
            (pull[v] - want[v]).abs() < 1e-2 || (pull[v].is_infinite() && want[v].is_infinite()),
            "pull node {v}: {} vs {}",
            pull[v],
            want[v]
        );
    }
}

#[test]
fn weights_survive_symmetric_datasets() {
    // Undirected datasets keep one weight per direction; the hash keys by
    // (u, v) so directions differ — both must be retrievable.
    let g = Dataset::Urand.generate(Scale::Tiny, 64);
    let wg = WGraph::with_hash_weights(&g, 1.0, 2.0, 9);
    let mut checked = 0;
    for u in (0..g.n() as u32).step_by(53) {
        for (v, w) in wg.out_edges(u) {
            assert!((1.0..2.0).contains(&w));
            assert!(wg.weight(v, u).is_some(), "reverse edge must exist");
            checked += 1;
        }
    }
    assert!(checked > 10);
}
