//! Property-based tests over randomly generated graphs: the invariants of
//! DESIGN.md §6, checked with proptest on arbitrary edge sets.

use mixen_baselines::{BlockEngine, PullEngine, PushEngine, ReferenceEngine};
use mixen_core::{FilteredGraph, MixenEngine, MixenOpts};
use mixen_graph::{Classification, Graph, NodeClass, StructuralStats};
use proptest::prelude::*;

/// Arbitrary directed graph: up to 24 nodes, up to 80 edges (duplicates and
/// self-loops allowed — the substrate must cope).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..80)
            .prop_map(move |edges| Graph::from_pairs(n, &edges))
    })
}

fn small_opts() -> MixenOpts {
    MixenOpts {
        block_side: 4,
        min_tasks_per_thread: 1,
        ..MixenOpts::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filtering_is_a_bijection(g in arb_graph()) {
        let f = FilteredGraph::new(&g);
        let mut seen = vec![false; g.n()];
        for old in 0..g.n() as u32 {
            let new = f.to_new(old);
            prop_assert!(!seen[new as usize]);
            seen[new as usize] = true;
            prop_assert_eq!(f.to_old(new), old);
        }
    }

    #[test]
    fn class_boundaries_partition_nodes(g in arb_graph()) {
        let f = FilteredGraph::new(&g);
        let c = Classification::of(&g);
        prop_assert_eq!(
            f.num_regular() + f.num_seed() + f.num_sink() + f.num_isolated(),
            g.n()
        );
        prop_assert_eq!(f.num_regular(), c.count(NodeClass::Regular));
        prop_assert_eq!(f.num_seed(), c.count(NodeClass::Seed));
        prop_assert_eq!(f.num_sink(), c.count(NodeClass::Sink));
        prop_assert_eq!(f.num_isolated(), c.count(NodeClass::Isolated));
    }

    #[test]
    fn every_edge_lands_in_exactly_one_substructure(g in arb_graph()) {
        let f = FilteredGraph::new(&g);
        prop_assert_eq!(
            f.reg_csr().nnz() + f.seed_csr().nnz() + f.sink_csc().nnz(),
            g.m()
        );
    }

    #[test]
    fn blocking_covers_regular_edges_exactly_once(g in arb_graph()) {
        let f = FilteredGraph::new(&g);
        let blocked = mixen_core::BlockedSubgraph::new(f.reg_csr(), &small_opts(), 1);
        prop_assert_eq!(blocked.nnz(), f.reg_csr().nnz());
        // Reconstruct and compare edge multisets.
        let mut got: Vec<(u32, u32)> = Vec::new();
        for row in blocked.rows() {
            for (j, blk) in row.blocks.iter().enumerate() {
                let col_base = (j * blocked.block_side()) as u32;
                for (k, &src) in blk.src_ids.iter().enumerate() {
                    for &d in blk.dests_of(k) {
                        got.push((row.src_start + src, col_base + d));
                    }
                }
            }
        }
        got.sort_unstable();
        let mut want: Vec<(u32, u32)> = f.reg_csr().edges().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mixen_spmv_equals_reference(g in arb_graph()) {
        let engine = MixenEngine::new(&g, small_opts());
        let reference = ReferenceEngine::new(&g);
        let init = |v: u32| (v % 7) as f32 + 0.5;
        let got = engine.iterate::<f32, _, _>(init, |_, s| s, 1);
        let want = reference.iterate::<f32, _, _>(init, |_, s| s, 1);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-3, "{:?} vs {:?}", got, want);
        }
    }

    #[test]
    fn all_engines_agree_on_random_graphs(g in arb_graph()) {
        let reference = ReferenceEngine::new(&g);
        let apply = |_: u32, s: f32| 0.5 * s + 1.0;
        let init = |_: u32| 1.0f32;
        let want = reference.iterate::<f32, _, _>(init, apply, 3);
        let engines_out = [
            MixenEngine::new(&g, small_opts()).iterate::<f32, _, _>(init, apply, 3),
            PullEngine::new(&g).iterate::<f32, _, _>(init, apply, 3),
            PushEngine::new(&g).iterate::<f32, _, _>(init, apply, 3),
            BlockEngine::new(&g, 4).iterate::<f32, _, _>(init, apply, 3),
        ];
        for out in &engines_out {
            for (a, b) in out.iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn bfs_depths_are_consistent(g in arb_graph(), root_seed in 0u32..100) {
        let root = root_seed % g.n() as u32;
        let engine = MixenEngine::new(&g, small_opts());
        let depths = engine.bfs(root);
        prop_assert_eq!(depths[root as usize], 0);
        // Every reached node at depth d > 0 has an in-neighbour at depth d-1,
        // and no edge skips a level downward (BFS optimality).
        for v in 0..g.n() as u32 {
            let d = depths[v as usize];
            if d > 0 {
                let has_parent = g
                    .in_neighbors(v)
                    .iter()
                    .any(|&u| depths[u as usize] == d - 1);
                prop_assert!(has_parent, "node {} depth {} lacks a parent", v, d);
            }
            if d >= 0 {
                for &w in g.out_neighbors(v) {
                    let dw = depths[w as usize];
                    prop_assert!(dw >= 0 && dw <= d + 1, "edge {}->{} skips levels", v, w);
                }
            }
        }
    }

    #[test]
    fn spmv_is_linear(g in arb_graph()) {
        let engine = MixenEngine::new(&g, small_opts());
        let xa: Vec<f32> = (0..g.n()).map(|i| (i % 5) as f32).collect();
        let xb: Vec<f32> = (0..g.n()).map(|i| ((i * 3) % 7) as f32).collect();
        let ya = engine.iterate::<f32, _, _>(|v| xa[v as usize], |_, s| s, 1);
        let yb = engine.iterate::<f32, _, _>(|v| xb[v as usize], |_, s| s, 1);
        let ysum = engine.iterate::<f32, _, _>(|v| xa[v as usize] + xb[v as usize], |_, s| s, 1);
        for i in 0..g.n() {
            prop_assert!((ya[i] + yb[i] - ysum[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn kernel_widths_are_bit_for_bit_identical(g in arb_graph()) {
        // DESIGN.md §11: wider kernels reorder *loads*, never *combines*, so
        // every width must produce the scalar path's bits exactly — including
        // with prefetch enabled, which must be a pure hint.
        let init = |v: u32| (v % 7) as f32 + 0.25;
        let apply = |_: u32, s: f32| 0.85 * s + 0.15;
        let want = MixenEngine::new(
            &g,
            MixenOpts { kernel_width: 1, prefetch_distance: 0, ..small_opts() },
        )
        .iterate::<f32, _, _>(init, apply, 3);
        for width in [2usize, 4, 8] {
            for prefetch in [0usize, 2] {
                let got = MixenEngine::new(
                    &g,
                    MixenOpts { kernel_width: width, prefetch_distance: prefetch, ..small_opts() },
                )
                .iterate::<f32, _, _>(init, apply, 3);
                for (a, b) in got.iter().zip(&want) {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "width {} prefetch {}: {} vs {}", width, prefetch, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn compressed_encodings_stay_within_the_accuracy_budget(g in arb_graph()) {
        // F16/Q16 streams trade bits for bandwidth but plan_codec guarantees
        // the per-iteration error stays under ACCURACY_BUDGET; over a short
        // damped run the final ranks must agree to well under 1e-2.
        use mixen_core::BinEncoding;
        let init = |v: u32| (v % 7) as f32 * 0.1 + 0.1;
        let apply = |_: u32, s: f32| 0.85 * s + 0.15;
        let want = MixenEngine::new(&g, small_opts()).iterate::<f32, _, _>(init, apply, 3);
        let scale = want.iter().fold(1e-3f32, |m, v| m.max(v.abs()));
        for enc in [BinEncoding::F16, BinEncoding::Q16] {
            let got = MixenEngine::new(
                &g,
                MixenOpts { bin_encoding: enc, ..small_opts() },
            )
            .iterate::<f32, _, _>(init, apply, 3);
            for (a, b) in got.iter().zip(&want) {
                prop_assert!(
                    (a - b).abs() / scale < 1e-2,
                    "{:?}: {} vs {} (scale {})", enc, a, b, scale
                );
            }
        }
    }

    #[test]
    fn structural_stats_fractions_sum_to_one(g in arb_graph()) {
        let s = StructuralStats::of(&g);
        let sum = s.frac_regular + s.frac_seed + s.frac_sink + s.frac_isolated;
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(s.beta <= 1.0 + 1e-9);
        prop_assert!(s.alpha <= 1.0 + 1e-9);
    }

    #[test]
    fn permute_unpermute_roundtrip(g in arb_graph()) {
        let f = FilteredGraph::new(&g);
        let vals: Vec<u32> = (0..g.n() as u32).map(|i| i * 13 + 1).collect();
        prop_assert_eq!(f.unpermute(&f.permute(&vals)), vals);
    }

    #[test]
    fn csr_transpose_is_involutive(g in arb_graph()) {
        let t = g.out_csr().transpose();
        prop_assert_eq!(&t.transpose(), g.out_csr());
        prop_assert_eq!(&t, g.in_csc());
    }
}
