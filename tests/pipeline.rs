//! End-to-end pipeline tests: generate → serialize → reload → preprocess →
//! analyze, plus consistency between the analytic model, the structural
//! statistics and the cache-simulator twins.

use mixen_algos::{pagerank, PageRankOpts};
use mixen_baselines::ReferenceEngine;
use mixen_cachesim::{trace_mixen, trace_pull, CacheConfig};
use mixen_core::{MixenEngine, MixenOpts, PerfModel};
use mixen_graph::{io, Dataset, Scale, StructuralStats};

#[test]
fn save_load_analyze_roundtrip() {
    let g = Dataset::Track.generate(Scale::Tiny, 31);
    let dir = std::env::temp_dir().join("mixen_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("track.mxg");
    io::save(&g, &path).unwrap();
    let loaded = io::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(g.out_csr(), loaded.out_csr());
    assert_eq!(g.in_csc(), loaded.in_csc());

    // Analysis on the reloaded graph matches the original bit-for-bit.
    let a = pagerank(
        &g,
        &MixenEngine::new(&g, MixenOpts::default()),
        PageRankOpts::default(),
        5,
    );
    let b = pagerank(
        &loaded,
        &MixenEngine::new(&loaded, MixenOpts::default()),
        PageRankOpts::default(),
        5,
    );
    assert_eq!(a, b);
}

#[test]
fn text_edge_list_roundtrip_preserves_analysis() {
    let g = Dataset::Rmat.generate(Scale::Tiny, 3);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let loaded = io::read_edge_list(buf.as_slice(), g.n()).unwrap();
    let a = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 3);
    let b = pagerank(
        &loaded,
        &ReferenceEngine::new(&loaded),
        PageRankOpts::default(),
        3,
    );
    assert_eq!(a, b);
}

#[test]
fn model_and_stats_and_filter_agree() {
    for d in [Dataset::Weibo, Dataset::Wiki, Dataset::Urand] {
        let g = d.generate(Scale::Tiny, 17);
        let stats = StructuralStats::of(&g);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let f = engine.filtered();
        assert!((f.alpha() - stats.alpha).abs() < 1e-12, "{}", d.name());
        assert!((f.beta() - stats.beta).abs() < 1e-12, "{}", d.name());
        let model = PerfModel::from_filtered(f, engine.blocked().block_side());
        // Blocked structure realizes exactly m̃ edges (float round-off from
        // the beta*m product aside).
        assert!((engine.blocked().nnz() as f64 - model.m_tilde()).abs() < 1e-6);
        // Block count matches the model's b (per dimension).
        assert_eq!(engine.blocked().n_col_blocks() as f64, model.b());
    }
}

#[test]
fn simulated_traffic_tracks_the_model_ordering() {
    // Across graphs with very different alpha/beta, the simulator and the
    // Eq.(1) model must order Mixen-vs-Pull the same way.
    let cfg = CacheConfig::scaled_paper(1024);
    for d in [Dataset::Weibo, Dataset::Wiki, Dataset::Urand] {
        let g = d.generate(Scale::Tiny, 23);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let model = PerfModel::from_filtered(engine.filtered(), engine.blocked().block_side());
        let model_says_mixen_cheaper = model.mixen_traffic() < model.pull_traffic();
        let sim_mixen = trace_mixen(&engine, &cfg).logical_bytes;
        let sim_pull = trace_pull(&g, &cfg).logical_bytes;
        let sim_says_mixen_cheaper = sim_mixen < sim_pull;
        assert_eq!(
            model_says_mixen_cheaper,
            sim_says_mixen_cheaper,
            "{}: model {} vs {}, sim {} vs {}",
            d.name(),
            model.mixen_traffic(),
            model.pull_traffic(),
            sim_mixen,
            sim_pull
        );
    }
}

#[test]
fn dram_traffic_shape_weibo_vs_urand() {
    // The paper's headline (Fig. 4): Mixen's advantage is largest on weibo
    // (alpha = 0.01) and absent on undirected all-regular graphs.
    let cfg = CacheConfig::scaled_paper(1024);

    let weibo = Dataset::Weibo.generate(Scale::Tiny, 29);
    let e = MixenEngine::new(&weibo, MixenOpts::default());
    let ratio_weibo = trace_mixen(&e, &cfg).dram_bytes() as f64
        / trace_pull(&weibo, &cfg).dram_bytes().max(1) as f64;

    let urand = Dataset::Urand.generate(Scale::Tiny, 29);
    let e = MixenEngine::new(&urand, MixenOpts::default());
    let ratio_urand = trace_mixen(&e, &cfg).dram_bytes() as f64
        / trace_pull(&urand, &cfg).dram_bytes().max(1) as f64;

    assert!(
        ratio_weibo < 0.5,
        "weibo: Mixen/Pull traffic ratio {ratio_weibo}"
    );
    assert!(
        ratio_weibo < ratio_urand,
        "advantage must shrink as alpha -> 1: {ratio_weibo} vs {ratio_urand}"
    );
}
