//! Self-tests for the model checker machinery itself: known-good protocols
//! must explore cleanly (with more than one schedule), and each failure
//! class — data race, deadlock, lost wakeup, interleaving-dependent panic —
//! must be caught and replayable. No Mixen crate is involved; everything
//! here drives the facade directly.

use std::sync::Arc;

use mixen_check::cell::RaceCell;
use mixen_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use mixen_check::sync::{Condvar, Mutex};
use mixen_check::{check, explore, replay, thread, Config, FailureKind};

#[test]
fn mutex_orders_cell_writes() {
    let report = check("mutex_orders_cell_writes", Config::default(), || {
        let shared = Arc::new((Mutex::new(()), RaceCell::new(0u32)));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let _g = shared.0.lock().unwrap();
                    shared.1.with_mut(|v| *v += i + 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = shared.1.load();
        assert_eq!(total, 3);
    });
    assert!(
        report.schedules > 1,
        "explored {} schedules",
        report.schedules
    );
    assert!(!report.capped);
}

#[test]
fn unsynchronized_writes_are_a_data_race() {
    let body = || {
        let cell = Arc::new(RaceCell::new(0u32));
        let cell2 = Arc::clone(&cell);
        let t = thread::spawn(move || cell2.store(1));
        cell.store(2);
        t.join().unwrap();
    };
    let report = explore(Config::default(), body);
    let failure = report.failure.expect("write/write race must be detected");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(failure.message.contains("data race"), "{}", failure.message);

    // The printed decision string replays to the same failure class.
    let replayed = replay(&failure.schedule, body).expect("replay must reproduce the race");
    assert_eq!(replayed.kind, FailureKind::DataRace);
}

#[test]
fn release_acquire_publish_is_clean_but_relaxed_is_not() {
    // Release store / acquire load carries the cell write across threads.
    let clean = explore(Config::default(), || {
        let shared = Arc::new((AtomicBool::new(false), RaceCell::new(0u32)));
        let producer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                shared.1.store(42);
                shared.0.store(true, Ordering::Release);
            })
        };
        if shared.0.load(Ordering::Acquire) {
            assert_eq!(shared.1.load(), 42);
        }
        producer.join().unwrap();
    });
    assert!(clean.failure.is_none(), "{:?}", clean.failure);
    assert!(clean.schedules > 1);

    // The same protocol over relaxed orderings is flagged: the consumer's
    // read is not ordered after the producer's write.
    let racy = explore(Config::default(), || {
        let shared = Arc::new((AtomicBool::new(false), RaceCell::new(0u32)));
        let producer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                shared.1.store(42);
                shared.0.store(true, Ordering::Relaxed);
            })
        };
        if shared.0.load(Ordering::Relaxed) {
            let _ = shared.1.load();
        }
        producer.join().unwrap();
    });
    let failure = racy.failure.expect("relaxed publish must be a data race");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

#[test]
fn lock_order_inversion_deadlocks() {
    let report = explore(Config::default(), || {
        let locks = Arc::new((Mutex::new(()), Mutex::new(())));
        let inverted = {
            let locks = Arc::clone(&locks);
            thread::spawn(move || {
                let _a = locks.0.lock().unwrap();
                let _b = locks.1.lock().unwrap();
            })
        };
        {
            let _b = locks.1.lock().unwrap();
            let _a = locks.0.lock().unwrap();
        }
        inverted.join().unwrap();
    });
    let failure = report.failure.expect("AB-BA inversion must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
    assert!(!failure.trace.is_empty());
}

/// The classic missed-wakeup window: the consumer checks the flag *outside*
/// the lock and then waits without re-checking; a producer that fires in
/// between leaves it waiting forever. Modeled `wait` never times out, so
/// this surfaces as a deadlock — exactly what the pool's
/// "serialize the notify against the check-then-wait window" comment and the
/// re-check in `wait_scope` exist to prevent.
#[test]
fn missed_wakeup_is_reported_and_fixed_variant_is_clean() {
    fn protocol(broken: bool) -> impl Fn() {
        move || {
            let shared = Arc::new((AtomicBool::new(false), Mutex::new(()), Condvar::new()));
            let consumer = {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    if broken {
                        if !shared.0.load(Ordering::Acquire) {
                            let guard = shared.1.lock().unwrap();
                            // BUG: no re-check of the flag under the lock.
                            let _ = shared.2.wait(guard).unwrap();
                        }
                    } else {
                        let mut guard = shared.1.lock().unwrap();
                        while !shared.0.load(Ordering::Acquire) {
                            guard = shared.2.wait(guard).unwrap();
                        }
                    }
                })
            };
            shared.0.store(true, Ordering::Release);
            {
                let _g = shared.1.lock().unwrap();
                shared.2.notify_all();
            }
            consumer.join().unwrap();
        }
    }

    let broken = explore(Config::default(), protocol(true));
    let failure = broken.failure.expect("missed wakeup must be detected");
    assert_eq!(failure.kind, FailureKind::Deadlock);

    let fixed = check(
        "missed_wakeup_fixed_variant",
        Config::default(),
        protocol(false),
    );
    assert!(fixed.schedules > 1);
}

/// An interleaving-dependent assertion the bounded DFS cannot reach at
/// preemption bound 0 (it needs the spawner preempted between two relaxed
/// stores) but the seeded random phase — which ignores the bound — can.
#[test]
fn random_phase_reaches_past_the_dfs_bound() {
    fn protocol() -> impl Fn() {
        move || {
            let x = Arc::new(AtomicUsize::new(0));
            let observer = {
                let x = Arc::clone(&x);
                thread::spawn(move || {
                    let seen = x.load(Ordering::Relaxed);
                    assert_ne!(seen, 1, "observer caught the intermediate value");
                })
            };
            x.store(1, Ordering::Relaxed);
            x.store(2, Ordering::Relaxed);
            observer.join().unwrap();
        }
    }

    // Bound 0: the spawner is never preempted, so the observer only ever
    // runs once the spawner blocks in join — after both stores.
    let dfs_only = explore(
        Config {
            preemption_bound: 0,
            ..Config::default()
        },
        protocol(),
    );
    assert!(dfs_only.failure.is_none(), "{:?}", dfs_only.failure);

    // The fuzz phase schedules freely and finds the window.
    let fuzzed = explore(
        Config {
            preemption_bound: 0,
            random_schedules: 200,
            seed: Some(0xC0FFEE),
            ..Config::default()
        },
        protocol(),
    );
    let failure = fuzzed
        .failure
        .expect("random schedules must find the window");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(fuzzed.random_schedules >= 1);
    assert!(
        failure.message.contains("intermediate value"),
        "{}",
        failure.message
    );
}

/// Exhaustiveness sanity check: three threads taking one lock each explore
/// all 3! = 6 completion orders at an unbounded preemption budget (plus
/// interleavings of the other yield points), and the schedule count is
/// exact and deterministic across runs.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        explore(Config::with_bound(1), || {
            let m = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        *m.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        })
    };
    let a = run();
    let b = run();
    assert!(a.failure.is_none(), "{:?}", a.failure);
    assert_eq!(a.schedules, b.schedules);
    assert!(a.schedules > 1);
}
