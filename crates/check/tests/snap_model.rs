//! Model tests for the serving layer's snapshot-swap protocol
//! (`mixen_core::SnapCell`): under every explored interleaving of `load`
//! and `publish`,
//!
//! * a reader never observes a *torn* pair — the payload it gets always
//!   belongs to the version it gets (each published payload encodes its
//!   version, so `*value == version` is the atomicity oracle);
//! * versions observed by one reader never go backwards (no
//!   stale-then-fresh-then-stale);
//! * concurrent writers serialize: versions end at the publish count.
//!
//! The cell's atomics and slot mutexes route through `mixen-core`'s
//! `msync` facade, so the `model-check` build explores real schedules of
//! the real protocol code, not a re-implementation.

use std::sync::Arc;

use mixen_check::{check, thread, Config};
use mixen_core::SnapCell;

#[test]
fn loads_never_tear_and_never_regress_during_swaps() {
    let report = check(
        "snapcell_load_vs_publish",
        Config {
            preemption_bound: 2,
            max_schedules: 200_000,
            ..Config::default()
        },
        || {
            let cell = Arc::new(SnapCell::new(Arc::new(0u64)));
            let writer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    // Two publishes: version 1 then 2, payload == version.
                    // Two are what make the double-buffer interesting — the
                    // second overwrites the slot the first retired, which is
                    // exactly where a torn read would come from.
                    for v in 1..=2u64 {
                        assert_eq!(cell.publish(Arc::new(v)), v);
                    }
                })
            };
            let reader = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2 {
                        let (version, value) = cell.load();
                        assert_eq!(*value, version, "torn version/payload pair");
                        assert!(version >= last, "version regressed {last} -> {version}");
                        last = version;
                    }
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();
            let (version, value) = cell.load();
            assert_eq!((version, *value), (2, 2));
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

#[test]
fn concurrent_writers_serialize_and_lose_no_publish() {
    let report = check(
        "snapcell_writer_vs_writer",
        Config {
            preemption_bound: 2,
            max_schedules: 200_000,
            ..Config::default()
        },
        || {
            let cell = Arc::new(SnapCell::new(Arc::new(0u64)));
            let writers: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        // Payload mirrors the version the publish got, so
                        // the final read can check the last write won
                        // whole, whatever the serialization order.
                        let (version, _) = cell.load();
                        let published = cell.publish(Arc::new(version + 1));
                        assert!(published >= 1);
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            // Exactly two publishes happened — versions are handed out
            // under the writer mutex, so none can be lost or duplicated.
            assert_eq!(cell.version(), 2);
            let (version, value) = cell.load();
            assert_eq!(version, 2);
            // The payload is whatever the second-serialized writer staged
            // (it read version 0 or 1 before publishing); it must be one of
            // those, intact.
            assert!(*value == 1 || *value == 2, "torn payload {}", *value);
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}
