//! Model tests pinning the workspace's five core concurrency protocols:
//! the pool's LIFO-owner/FIFO-thief deque claim, the injector push vs.
//! park/unpark wakeup window (plus the shutdown handshake), scope panic
//! propagation and result publication, the runner's watchdog stall/deadline
//! handshake, and the SCGA/CSR write-path double-claim detectors.
//!
//! Every protocol is explored exhaustively at 2–3 model threads with a
//! small preemption bound; modeled `wait_timeout` never times out, so the
//! pool's timeout safety nets are stripped and the handshakes themselves
//! must be airtight — a lost wakeup would surface as a deadlock here.

use std::sync::Arc;

use mixen_check::sync::atomic::{AtomicUsize, Ordering};
use mixen_check::{check, Config};
use mixen_pool::ThreadPool;

/// Protocol 1: the work-stealing deque claim race. A task running on a
/// worker opens a nested scope, which pushes two jobs onto that worker's
/// *own* deque: the owner pops LIFO from the back while the other worker
/// steals FIFO from the front (and the main lane may help via the
/// injector). Under every interleaving each job must run exactly once and
/// the nested scope must not return before both did.
#[test]
fn deque_claim_race_runs_every_job_exactly_once() {
    let report = check(
        "deque_claim_race",
        Config {
            preemption_bound: 1,
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let counter = Arc::new(AtomicUsize::new(0));
            let pool = ThreadPool::new(3);
            let pool_ref = &pool;
            pool.scope(|s| {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    // On a worker lane this nested scope spawns onto the
                    // worker's own deque; on the main lane (helping) it goes
                    // through the injector. Both routes are explored.
                    pool_ref.scope(|inner| {
                        for _ in 0..2 {
                            let c = Arc::clone(&counter);
                            inner.spawn(move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    // The nested scope has waited for both jobs.
                    assert_eq!(counter.load(Ordering::Acquire), 2);
                });
            });
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Protocol 2: injector push vs. park/unpark. With one worker and no work,
/// the worker parks on the wakeup condvar; the main lane pushes a job into
/// the injector and notifies under the sleep lock. The worker's
/// check-then-wait is closed by re-checking under that same lock — if the
/// window existed, the modeled no-timeout `wait` would deadlock. The pool
/// drop at the end also explores the shutdown-flag/notify/join handshake.
#[test]
fn injector_push_never_loses_the_wakeup() {
    let report = check(
        "injector_push_vs_park",
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let ran = Arc::new(AtomicUsize::new(0));
            let pool = ThreadPool::new(2);
            pool.scope(|s| {
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(ran.load(Ordering::Relaxed), 1);
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Protocol 2 (fuzz tail): the same handshake under seeded random
/// schedules that ignore the preemption bound entirely.
#[test]
fn injector_push_survives_random_schedules() {
    let report = check(
        "injector_push_fuzz",
        Config {
            preemption_bound: 0,
            random_schedules: 64,
            seed: Some(0x504F_4F4C),
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let ran = Arc::new(AtomicUsize::new(0));
            let pool = ThreadPool::new(2);
            pool.scope(|s| {
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(ran.load(Ordering::Relaxed), 1);
        },
    );
    assert_eq!(report.random_schedules, 64);
}

/// Protocol 3a: a panicking task must propagate its payload out of
/// `scope()` on every schedule — never a lost panic, never a deadlocked
/// scope waiter.
#[test]
fn scope_propagates_the_task_panic_on_every_schedule() {
    let report = check(
        "scope_panic_propagation",
        Config {
            preemption_bound: 1,
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let pool = ThreadPool::new(2);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.scope(|s| {
                    s.spawn(|| {
                        // lint: allow(panic) reason=model test deliberately panicking a pool task
                        panic!("task boom");
                    });
                });
            }));
            let payload = caught.expect_err("the task panic must propagate");
            assert_eq!(payload.downcast_ref::<&str>(), Some(&"task boom"));
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Protocol 3b: scope completion publishes task results. The task writes a
/// plain (vector-clock-tracked) cell; the only thing ordering the main
/// lane's read after that write is the scope protocol itself — the task's
/// Release decrement of `pending` paired with the waiter's Acquire load.
/// If that pair were downgraded, this test would report a data race.
#[test]
fn scope_completion_publishes_task_writes() {
    let report = check(
        "scope_publication",
        Config {
            preemption_bound: 1,
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let cell = Arc::new(mixen_check::cell::RaceCell::new(0u32));
            let pool = ThreadPool::new(2);
            pool.scope(|s| {
                let cell = Arc::clone(&cell);
                s.spawn(move || cell.store(42));
            });
            assert_eq!(cell.load(), 42);
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Protocol 4: the runner/watchdog handshake from the deadline-supervision
/// work, driven with synthetic timestamps. A concurrent beat may or may not
/// be observed — both verdicts are legal — but the deadline flag is
/// unconditional, the stall flag is consume-once, and the heartbeat
/// Release/Acquire pair must keep the protocol race-free under every
/// interleaving.
#[test]
fn watchdog_handshake_is_race_free_and_flags_are_sticky() {
    let report = check(
        "watchdog_handshake",
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let probe = mixen_core::mc::WatchdogProbe::new();
            let w = probe.clone();
            let watchdog = mixen_check::thread::spawn(move || {
                // One tick at t=100ms against deadline 50ms / stall 10ms:
                // past the deadline for sure; stalled unless the beat below
                // was already observed.
                w.observe(100, Some(50), Some(10));
            });
            probe.beat_at(95);
            watchdog.join().unwrap();
            assert!(probe.deadline_hit(), "t=100 is past the 50ms deadline");
            let stalled = probe.take_stall();
            // Consume-once: whatever the first answer, the flag is clear now.
            assert!(!probe.take_stall(), "stall flag must be consumed");
            // If the observation saw the beat, 100 - 95 <= 10 is in budget.
            // Either way a second observation after the beat must be clean.
            probe.observe(101, None, Some(10));
            let _ = stalled;
            assert!(!probe.take_stall(), "beat at 95 keeps t=101 in budget");
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}

/// Protocol 5: the SCGA write-path double-claim detectors. Two model
/// threads race the same scatter segment (`SegPtr`) and the same CSR
/// construction slot (`SliceWriter`): under every schedule exactly one
/// claimer may win, and disjoint slots must both succeed.
#[test]
fn write_path_claims_are_exclusive_under_every_schedule() {
    let report = check(
        "segptr_and_slicewriter_double_claim",
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            ..Config::default()
        },
        || {
            let seg = mixen_core::mc::SegProbe::new(4);
            let writer = mixen_graph::mc::SliceWriterProbe::new(4);

            let t = mixen_check::thread::spawn(move || {
                let seg_won = seg.try_claim();
                let slot_won = writer.try_write(0, 7);
                let disjoint = writer.try_write(1, 8);
                (seg_won, slot_won, disjoint)
            });
            let seg_won = seg.try_claim();
            let slot_won = writer.try_write(0, 9);
            let disjoint = writer.try_write(2, 10);
            let (other_seg, other_slot, other_disjoint) = t.join().unwrap();

            assert!(
                seg_won ^ other_seg,
                "exactly one thread may materialize the segment"
            );
            assert!(slot_won ^ other_slot, "exactly one thread may write slot 0");
            assert!(disjoint && other_disjoint, "disjoint slots never collide");
        },
    );
    assert!(report.schedules > 1, "explored {}", report.schedules);
}
