//! Negative control for the whole approach: a deliberately broken variant
//! of the pool's park/push protocol — the worker checks for work *before*
//! taking the sleep lock and then parks without re-checking — must be
//! caught by the explorer at a small bound, with a replayable schedule.
//!
//! This is the exact bug the re-check loop in the real `worker_main` (and
//! the push-notify-under-lock in `PoolCore::push`) exists to prevent; if
//! someone ever "simplifies" that code, the model suite in `pool_model.rs`
//! deadlocks the same way this fixture does.

use std::collections::VecDeque;
use std::sync::Arc;

use mixen_check::sync::{Condvar, Mutex};
use mixen_check::{check, explore, replay, thread, Config, FailureKind};

/// A minimal injector + parking lot, shaped like `PoolCore`'s.
struct MiniPool {
    injector: Mutex<VecDeque<u32>>,
    sleep: Mutex<()>,
    wakeup: Condvar,
}

impl MiniPool {
    fn new() -> Arc<MiniPool> {
        Arc::new(MiniPool {
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            wakeup: Condvar::new(),
        })
    }

    /// The producer side, exactly as the real pool does it: enqueue, then
    /// notify while holding the sleep lock.
    fn push(&self, job: u32) {
        self.injector.lock().unwrap().push_back(job);
        let _park = self.sleep.lock().unwrap();
        self.wakeup.notify_all();
    }

    fn has_work(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
    }

    /// The consumer side. `broken` checks for work *outside* the sleep lock
    /// and parks unconditionally — the push/notify can land in the window
    /// between the check and the wait, and the modeled no-timeout `wait`
    /// then sleeps forever. The fixed variant re-checks under the lock in a
    /// loop, exactly like `worker_main`.
    fn consume_one(&self, broken: bool) -> u32 {
        if broken {
            if !self.has_work() {
                let guard = self.sleep.lock().unwrap();
                // BUG: no re-check of the injector under the lock.
                let _ = self.wakeup.wait(guard).unwrap();
            }
        } else {
            let mut guard = self.sleep.lock().unwrap();
            while !self.has_work() {
                guard = self.wakeup.wait(guard).unwrap();
            }
            drop(guard);
        }
        self.injector
            .lock()
            .unwrap()
            .pop_front()
            .expect("woken with an empty injector")
    }
}

fn protocol(broken: bool) -> impl Fn() {
    move || {
        let pool = MiniPool::new();
        let consumer = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.consume_one(broken))
        };
        pool.push(7);
        assert_eq!(consumer.join().unwrap(), 7);
    }
}

/// The broken variant is caught as a deadlock (lost wakeup) at bound 2,
/// the failure prints a replayable schedule, and `replay` reproduces it.
#[test]
fn park_without_recheck_is_caught_and_replayable() {
    let report = explore(Config::default(), protocol(true));
    let failure = report
        .failure
        .expect("the missed-wakeup window must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(!failure.schedule.is_empty(), "schedule must be replayable");
    assert!(
        !failure.trace.is_empty(),
        "trace must name the yield points"
    );

    // The printed report carries both; show it, as a real run would.
    println!("{failure}");

    let replayed = replay(&failure.schedule, protocol(true))
        .expect("replaying the printed schedule must reproduce the deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}

/// The fixed variant — the real pool's shape — explores cleanly.
#[test]
fn recheck_under_the_lock_is_clean() {
    let report = check("fixed_park_protocol", Config::default(), protocol(false));
    assert!(report.schedules > 1, "explored {}", report.schedules);
    assert!(!report.capped);
}
