//! The cooperative scheduler and schedule explorer behind the `sync` facade.
//!
//! Model threads are real OS threads, but a baton (the `running` field of
//! [`SchedState`]) ensures exactly one executes between yield points. Every
//! instrumented operation (atomic access, mutex lock, condvar wait, spawn,
//! join, [`RaceCell`](crate::cell::RaceCell) access) is a *yield point*: the
//! running thread asks the scheduler which thread runs next. Each such choice
//! is a node in the schedule tree; the explorer enumerates the tree
//! depth-first with a CHESS-style preemption bound, or samples it with a
//! seeded RNG in fuzz mode.
//!
//! Happens-before is tracked with one vector clock per thread plus one per
//! mutex (release→acquire), per atomic location (release-store → acquire-load,
//! with relaxed stores breaking the release sequence) and per
//! [`RaceCell`](crate::cell::RaceCell) (FastTrack-style epochs); unordered
//! cell accesses are reported as data races with a replayable schedule.

use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::Arc;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::{Failure, FailureKind};

/// Panic payload used to tear down model threads once a failure has been
/// recorded (or the explorer is resetting). Spawn wrappers swallow it.
pub(crate) struct ModelAbort;

/// Cap on recorded trace events per execution; failures past this point
/// still report, but the printed trace is truncated at the front.
const TRACE_CAP: usize = 2048;

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

/// Identity of a model thread: the runtime it belongs to and its thread id.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) rt: Arc<Runtime>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// True when the calling OS thread is participating in a model execution.
/// Used by the panic-hook guard to silence expected per-schedule panics.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Process-wide id well for facade objects (mutexes, condvars, atomics,
/// cells). Ids are assigned lazily on first instrumented use, so `const fn
/// new` stays possible; 0 means "not yet assigned".
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, StdOrdering::Relaxed)
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model-thread ids. Component `t` counts thread `t`'s
/// release-class events (unlocks, release stores, tracked cell accesses).
#[derive(Clone, Default, Debug)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn tick(&mut self, t: usize) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    fn join(&mut self, other: &VClock) {
        for (t, &v) in other.0.iter().enumerate() {
            if v > self.get(t) {
                self.set(t, v);
            }
        }
    }

    fn clear(&mut self) {
        self.0.clear();
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedMutex(u64),
    /// Waiting on condvar `.0`, will reacquire mutex `.1` once notified.
    BlockedCondvar(u64, u64),
    BlockedJoin(usize),
    Finished,
}

struct ThreadRec {
    status: Status,
    clock: VClock,
    name: String,
}

#[derive(Default)]
struct MutexState {
    locked: bool,
    /// Joined clocks of all past unlockers; acquirers join this.
    clock: VClock,
}

#[derive(Default)]
struct AtomicState {
    /// Clock an acquire load of the current value synchronizes with.
    /// Release stores set it, relaxed stores clear it (broken release
    /// sequence), RMWs preserve or extend it.
    release: VClock,
}

#[derive(Default)]
struct CellState {
    /// FastTrack-style epoch of the last write: (writer tid, writer tick).
    write_tid: usize,
    write_tick: u64,
    has_write: bool,
    /// Per-thread epoch of each thread's last read.
    reads: VClock,
}

/// How the explorer picks a branch when the recorded path runs out.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Depth-first: always take branch 0, extend the path.
    Dfs,
    /// Seeded xorshift choice at every fresh branch.
    Random,
    /// Follow a user-provided decision string; branch 0 past its end.
    Replay,
}

/// One branch point: how many options existed and which index was taken.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub(crate) options: usize,
    pub(crate) idx: usize,
}

pub(crate) struct SchedState {
    threads: Vec<ThreadRec>,
    /// Thread id holding the baton. `usize::MAX` once the execution is done.
    running: usize,
    /// Spawned model OS threads that have not yet exited their wrapper.
    live_os: usize,
    mutexes: HashMap<u64, MutexState>,
    atomics: HashMap<u64, AtomicState>,
    cells: HashMap<u64, CellState>,
    mode: Mode,
    path: Vec<Decision>,
    pos: usize,
    preemptions: usize,
    bound: usize,
    steps: usize,
    max_steps: usize,
    rng: u64,
    trace: Vec<String>,
    dropped_trace: usize,
    failure: Option<Failure>,
    aborting: bool,
}

impl SchedState {
    fn trace(&mut self, tid: usize, what: &str) {
        if self.trace.len() >= TRACE_CAP {
            self.trace.remove(0);
            self.dropped_trace += 1;
        }
        let name = &self.threads[tid].name;
        self.trace.push(format!("t{tid} ({name}): {what}"));
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    /// Picks an index in `0..options_len`, replaying the recorded path
    /// prefix and extending it per the exploration mode past its end.
    fn choose(&mut self, options_len: usize) -> usize {
        if options_len <= 1 {
            return 0;
        }
        let idx = if self.pos < self.path.len() {
            let d = &mut self.path[self.pos];
            d.options = options_len;
            d.idx.min(options_len - 1)
        } else {
            let idx = match self.mode {
                Mode::Dfs | Mode::Replay => 0,
                Mode::Random => (xorshift(&mut self.rng) % options_len as u64) as usize,
            };
            self.path.push(Decision {
                options: options_len,
                idx,
            });
            idx
        };
        self.pos += 1;
        idx
    }

    /// Chooses the next thread to run. `me_runnable` distinguishes a
    /// voluntary yield (branch, possibly a preemption) from a forced switch
    /// (the current thread just blocked or finished). `None` means no thread
    /// can run — deadlock unless everything has finished.
    fn schedule_next(&mut self, me: usize, me_runnable: bool) -> Option<usize> {
        let mut options: Vec<usize> = Vec::new();
        if me_runnable {
            options.push(me);
        }
        for (t, rec) in self.threads.iter().enumerate() {
            if t != me && rec.status == Status::Runnable {
                options.push(t);
            }
        }
        if options.is_empty() {
            return None;
        }
        let len = if me_runnable && self.preemptions >= self.bound {
            1 // budget exhausted: forced to continue the current thread
        } else {
            options.len()
        };
        let next = options[self.choose(len)];
        if me_runnable && next != me {
            self.preemptions += 1;
        }
        Some(next)
    }

    fn describe_stuck(&self) -> String {
        let mut lines = Vec::new();
        for (t, rec) in self.threads.iter().enumerate() {
            let s = match rec.status {
                Status::Runnable => "runnable".to_string(),
                Status::BlockedMutex(m) => format!("blocked locking m{m}"),
                Status::BlockedCondvar(c, m) => {
                    format!("waiting on cv{c} (to reacquire m{m})")
                }
                Status::BlockedJoin(j) => format!("joining t{j}"),
                Status::Finished => "finished".to_string(),
            };
            lines.push(format!("t{t} ({}): {s}", rec.name));
        }
        lines.join("; ")
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

pub(crate) fn decision_string(path: &[Decision]) -> String {
    path.iter()
        .map(|d| d.idx.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Advances the DFS odometer: bumps the deepest unexhausted decision and
/// truncates everything below it. Returns false when the tree is exhausted.
pub(crate) fn advance(path: &mut Vec<Decision>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.idx + 1 < last.options {
            last.idx += 1;
            return true;
        }
        path.pop();
    }
    false
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// What an atomic operation does, for happens-before purposes.
#[derive(Clone, Copy)]
pub(crate) enum AtomicAccess {
    Load,
    Store,
    Rmw,
}

/// One model execution's shared scheduler; lives for a whole `explore` call
/// and is reset between schedules.
pub(crate) struct Runtime {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

impl Runtime {
    pub(crate) fn new() -> Runtime {
        Runtime {
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                running: 0,
                live_os: 0,
                mutexes: HashMap::new(),
                atomics: HashMap::new(),
                cells: HashMap::new(),
                mode: Mode::Dfs,
                path: Vec::new(),
                pos: 0,
                preemptions: 0,
                bound: usize::MAX,
                steps: 0,
                max_steps: usize::MAX,
                rng: 1,
                trace: Vec::new(),
                dropped_trace: 0,
                failure: None,
                aborting: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// A panicking model thread may poison the state mutex; the state is
    /// only ever mutated under serialization, so recovery is always sound.
    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms the runtime for one execution with the given decision-path
    /// prefix. Thread 0 (the test closure) is registered and running.
    pub(crate) fn reset(
        &self,
        path: Vec<Decision>,
        mode: Mode,
        bound: usize,
        max_steps: usize,
        rng: u64,
    ) {
        let mut st = self.lock_state();
        st.threads.clear();
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            clock: VClock::default(),
            name: "main".to_string(),
        });
        st.running = 0;
        st.live_os = 0;
        st.mutexes.clear();
        st.atomics.clear();
        st.cells.clear();
        st.mode = mode;
        st.path = path;
        st.pos = 0;
        st.preemptions = 0;
        st.bound = bound;
        st.steps = 0;
        st.max_steps = max_steps;
        st.rng = if rng == 0 { 0x9E37_79B9_7F4A_7C15 } else { rng };
        st.trace.clear();
        st.dropped_trace = 0;
        st.failure = None;
        st.aborting = false;
    }

    /// Harvests the outcome of the last execution: the (possibly extended)
    /// decision path and the failure, if any.
    pub(crate) fn take_outcome(&self) -> (Vec<Decision>, Option<Failure>, u64) {
        let mut st = self.lock_state();
        (std::mem::take(&mut st.path), st.failure.take(), st.rng)
    }

    pub(crate) fn is_aborting(&self) -> bool {
        self.lock_state().aborting
    }

    fn fail(&self, st: &mut SchedState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            let mut trace = st.trace.clone();
            if st.dropped_trace > 0 {
                trace.insert(
                    0,
                    format!("... {} earlier events dropped", st.dropped_trace),
                );
            }
            st.failure = Some(Failure {
                kind,
                message,
                schedule: decision_string(&st.path),
                trace,
            });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Waits until this thread holds the baton again; panics with
    /// [`ModelAbort`] if the execution is being torn down.
    fn wait_for_baton<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        loop {
            if st.aborting {
                drop(st);
                panic_any(ModelAbort);
            }
            if st.running == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The current thread blocks (its status is already set); hands the
    /// baton to some runnable thread or reports a deadlock.
    fn block_and_wait<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        match st.schedule_next(me, false) {
            Some(next) => {
                st.running = next;
                self.cv.notify_all();
            }
            None => {
                let msg = format!("deadlock: no runnable thread — {}", st.describe_stuck());
                self.fail(&mut st, FailureKind::Deadlock, msg);
                drop(st);
                panic_any(ModelAbort);
            }
        }
        self.wait_for_baton(st, me)
    }

    /// Voluntary yield point ahead of an instrumented operation. Returns
    /// false when the model run is aborting and the caller should fall
    /// through to plain `std` behaviour.
    pub(crate) fn yield_op(&self, me: usize, what: &str) -> bool {
        let mut st = self.lock_state();
        if st.aborting {
            return false;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let max = st.max_steps;
            let msg = format!("exceeded {max} yield points in one schedule — livelock?");
            self.fail(&mut st, FailureKind::StepLimit, msg);
            drop(st);
            panic_any(ModelAbort);
        }
        st.trace(me, what);
        // `me` is running, hence runnable: schedule_next cannot return None.
        if let Some(next) = st.schedule_next(me, true) {
            if next != me {
                st.running = next;
                self.cv.notify_all();
                let st = self.wait_for_baton(st, me);
                drop(st);
            }
        }
        true
    }

    // -- mutexes ----------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, oid: u64) -> bool {
        if !self.yield_op(me, &format!("lock m{oid}")) {
            return false;
        }
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                return false;
            }
            if !st.mutexes.entry(oid).or_default().locked {
                let m = st.mutexes.get_mut(&oid).expect("mutex state just inserted");
                m.locked = true;
                let clock = m.clock.clone();
                st.threads[me].clock.join(&clock);
                st.trace(me, &format!("acquired m{oid}"));
                return true;
            }
            st.threads[me].status = Status::BlockedMutex(oid);
            st.trace(me, &format!("blocked on m{oid}"));
            st = self.block_and_wait(st, me);
        }
    }

    fn unlock_locked(st: &mut SchedState, me: usize, oid: u64) {
        let clock = st.threads[me].clock.clone();
        st.threads[me].clock.tick(me);
        let m = st.mutexes.entry(oid).or_default();
        m.locked = false;
        m.clock.join(&clock);
        for rec in st.threads.iter_mut() {
            if rec.status == Status::BlockedMutex(oid) {
                rec.status = Status::Runnable;
            }
        }
        st.trace(me, &format!("released m{oid}"));
    }

    /// Unlock is deliberately *not* a yield point: between the release and
    /// the unlocker's next instrumented access no shared state is touched,
    /// so exploring the switch adds schedules without adding behaviours.
    pub(crate) fn mutex_unlock(&self, me: usize, oid: u64) {
        let mut st = self.lock_state();
        if st.aborting {
            return;
        }
        Self::unlock_locked(&mut st, me, oid);
    }

    // -- condvars ---------------------------------------------------------

    /// Models `Condvar::wait` (and `wait_timeout`, whose timeout never fires
    /// in the model: a lost wakeup must surface as a deadlock, not be papered
    /// over by a timeout). Releases `mid`, blocks until notified, reacquires.
    pub(crate) fn condvar_wait(&self, me: usize, cvid: u64, mid: u64) -> bool {
        let mut st = self.lock_state();
        if st.aborting {
            return false;
        }
        Self::unlock_locked(&mut st, me, mid);
        st.threads[me].status = Status::BlockedCondvar(cvid, mid);
        st.trace(me, &format!("waiting on cv{cvid} (released m{mid})"));
        st = self.block_and_wait(st, me);
        // Notified; reacquire the mutex like any other contender.
        loop {
            if st.aborting {
                return false;
            }
            if !st.mutexes.entry(mid).or_default().locked {
                let m = st.mutexes.get_mut(&mid).expect("mutex state just inserted");
                m.locked = true;
                let clock = m.clock.clone();
                st.threads[me].clock.join(&clock);
                st.trace(me, &format!("woke on cv{cvid}, reacquired m{mid}"));
                return true;
            }
            st.threads[me].status = Status::BlockedMutex(mid);
            st = self.block_and_wait(st, me);
        }
    }

    /// Condvars carry no happens-before of their own (the mutex does), so
    /// notify only flips waiter statuses; it is not a yield point.
    pub(crate) fn condvar_notify(&self, me: usize, cvid: u64, all: bool) {
        let mut st = self.lock_state();
        if st.aborting {
            return;
        }
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.status, Status::BlockedCondvar(c, _) if c == cvid))
            .map(|(t, _)| t)
            .collect();
        if waiters.is_empty() {
            st.trace(me, &format!("notify cv{cvid} (no waiters)"));
            return;
        }
        if all {
            for &t in &waiters {
                st.threads[t].status = Status::Runnable;
            }
            st.trace(me, &format!("notify_all cv{cvid} woke {waiters:?}"));
        } else {
            // Which waiter receives a notify_one is a genuine branch.
            let victim = waiters[st.choose(waiters.len())];
            st.threads[victim].status = Status::Runnable;
            st.trace(me, &format!("notify_one cv{cvid} woke t{victim}"));
        }
    }

    // -- atomics ----------------------------------------------------------

    /// Applies the happens-before effect of an atomic access that the facade
    /// has just performed on the real value. Not a yield point: the caller
    /// already passed through [`Runtime::yield_op`] for this access.
    pub(crate) fn atomic_effect(
        &self,
        me: usize,
        oid: u64,
        access: AtomicAccess,
        ord: std::sync::atomic::Ordering,
    ) {
        let mut st = self.lock_state();
        if st.aborting {
            return;
        }
        let acquire = matches!(
            ord,
            StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
        );
        let release = matches!(
            ord,
            StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
        );
        match access {
            AtomicAccess::Load => {
                if acquire {
                    let clock = st.atomics.entry(oid).or_default().release.clone();
                    st.threads[me].clock.join(&clock);
                }
            }
            AtomicAccess::Store => {
                if release {
                    let clock = st.threads[me].clock.clone();
                    st.threads[me].clock.tick(me);
                    st.atomics.entry(oid).or_default().release = clock;
                } else {
                    // A relaxed store breaks the release sequence: a later
                    // acquire load of this value synchronizes with nothing.
                    st.atomics.entry(oid).or_default().release.clear();
                }
            }
            AtomicAccess::Rmw => {
                if acquire {
                    let clock = st.atomics.entry(oid).or_default().release.clone();
                    st.threads[me].clock.join(&clock);
                }
                if release {
                    let clock = st.threads[me].clock.clone();
                    st.threads[me].clock.tick(me);
                    st.atomics.entry(oid).or_default().release.join(&clock);
                }
                // A relaxed RMW leaves the release clock intact: RMWs
                // continue an existing release sequence.
            }
        }
    }

    // -- race cells -------------------------------------------------------

    pub(crate) fn cell_access(&self, me: usize, oid: u64, write: bool) -> bool {
        let what = if write { "cell write" } else { "cell read" };
        if !self.yield_op(me, &format!("{what} c{oid}")) {
            return false;
        }
        let mut st = self.lock_state();
        if st.aborting {
            return false;
        }
        // Every tracked access gets a fresh epoch so "synchronized at the
        // same tick" can never be confused with "concurrent".
        st.threads[me].clock.tick(me);
        let my_clock = st.threads[me].clock.clone();
        let cell = st.cells.entry(oid).or_default();
        let racy_write = cell.has_write && my_clock.get(cell.write_tid) < cell.write_tick;
        if racy_write {
            let (wt, wk) = (cell.write_tid, cell.write_tick);
            let msg = format!(
                "data race on cell c{oid}: {what} by t{me} is concurrent with write by t{wt} (epoch {wk})",
            );
            self.fail(&mut st, FailureKind::DataRace, msg);
            drop(st);
            panic_any(ModelAbort);
        }
        if write {
            let racy_read = cell
                .reads
                .0
                .iter()
                .enumerate()
                .any(|(t, &k)| k > 0 && my_clock.get(t) < k);
            if racy_read {
                let msg = format!(
                    "data race on cell c{oid}: write by t{me} is concurrent with an earlier read",
                );
                self.fail(&mut st, FailureKind::DataRace, msg);
                drop(st);
                panic_any(ModelAbort);
            }
            cell.write_tid = me;
            cell.write_tick = my_clock.get(me);
            cell.has_write = true;
            cell.reads.clear();
        } else {
            let k = my_clock.get(me);
            cell.reads.set(me, k);
        }
        true
    }

    // -- threads ----------------------------------------------------------

    /// Registers a child thread (runnable, clock inherited from the parent).
    pub(crate) fn register_thread(&self, parent: usize, name: String) -> usize {
        let mut st = self.lock_state();
        st.threads[parent].clock.tick(parent);
        let clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            clock,
            name,
        });
        st.live_os += 1;
        st.trace(parent, &format!("spawned t{tid}"));
        tid
    }

    /// Called by a child wrapper before running its closure: waits until the
    /// scheduler hands it the baton for the first time.
    pub(crate) fn child_enter(&self, me: usize) {
        let st = self.lock_state();
        let st = self.wait_for_baton(st, me);
        drop(st);
    }

    /// Called by a child wrapper on the way out (normal return, test panic
    /// or [`ModelAbort`]); `panic_msg` carries a non-abort panic message.
    pub(crate) fn child_exit(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        st.live_os -= 1;
        st.threads[me].status = Status::Finished;
        for rec in st.threads.iter_mut() {
            if rec.status == Status::BlockedJoin(me) {
                rec.status = Status::Runnable;
            }
        }
        st.trace(me, "exited");
        if let Some(msg) = panic_msg {
            self.fail(
                &mut st,
                FailureKind::Panic,
                format!("model thread t{me} panicked: {msg}"),
            );
            return;
        }
        if st.aborting {
            self.cv.notify_all(); // let the explorer observe live_os
            return;
        }
        if st.running == me {
            match st.schedule_next(me, false) {
                Some(next) => {
                    st.running = next;
                    self.cv.notify_all();
                }
                None => {
                    if st.all_finished() {
                        st.running = usize::MAX;
                        self.cv.notify_all();
                    } else {
                        let msg = format!(
                            "deadlock: no runnable thread after t{me} exited — {}",
                            st.describe_stuck()
                        );
                        self.fail(&mut st, FailureKind::Deadlock, msg);
                    }
                }
            }
        } else {
            self.cv.notify_all();
        }
    }

    pub(crate) fn join_thread(&self, me: usize, target: usize) -> bool {
        if !self.yield_op(me, &format!("join t{target}")) {
            return false;
        }
        let mut st = self.lock_state();
        if st.aborting {
            return false;
        }
        if st.threads[target].status != Status::Finished {
            st.threads[me].status = Status::BlockedJoin(target);
            st.trace(me, &format!("blocked joining t{target}"));
            st = self.block_and_wait(st, me);
            if st.aborting {
                return false;
            }
        }
        let clock = st.threads[target].clock.clone();
        st.threads[me].clock.join(&clock);
        st.trace(me, &format!("joined t{target}"));
        true
    }

    // -- execution boundary ----------------------------------------------

    /// Thread 0's closure returned normally: mark it finished, let any
    /// still-runnable threads drain, then wait for all model OS threads to
    /// exit. Threads still *blocked* at this point are a lost wakeup /
    /// leaked-thread failure.
    pub(crate) fn finish_main(&self) {
        let mut st = self.lock_state();
        if !st.aborting {
            st.threads[0].status = Status::Finished;
            for rec in st.threads.iter_mut() {
                if rec.status == Status::BlockedJoin(0) {
                    rec.status = Status::Runnable;
                }
            }
            if st.running == 0 {
                match st.schedule_next(0, false) {
                    Some(next) => {
                        st.running = next;
                        self.cv.notify_all();
                    }
                    None => {
                        if !st.all_finished() {
                            let msg = format!(
                                "threads still blocked when the test body returned \
                                 (lost wakeup or leaked thread) — {}",
                                st.describe_stuck()
                            );
                            self.fail(&mut st, FailureKind::Deadlock, msg);
                        } else {
                            st.running = usize::MAX;
                        }
                    }
                }
            }
        }
        self.drain_os_threads(st);
    }

    /// Tears down a failed or panicked execution: wake everything with
    /// [`ModelAbort`] and wait for the model OS threads to exit.
    pub(crate) fn abort_and_drain(&self) {
        let mut st = self.lock_state();
        st.aborting = true;
        self.cv.notify_all();
        self.drain_os_threads(st);
    }

    /// Records a panic that unwound out of the thread-0 closure.
    pub(crate) fn record_main_panic(&self, msg: String) {
        let mut st = self.lock_state();
        self.fail(
            &mut st,
            FailureKind::Panic,
            format!("test body panicked: {msg}"),
        );
    }

    fn drain_os_threads(&self, mut st: StdMutexGuard<'_, SchedState>) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while st.live_os > 0 {
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero() {
                panic!(
                    "mixen-check: model OS threads failed to exit within 30s — {}",
                    st.describe_stuck()
                );
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, timeout)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}
