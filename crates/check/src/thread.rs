//! Instrumented thread spawn/join, mirroring the subset of [`std::thread`]
//! the Mixen crates use (`Builder::new().name(..).spawn(..)`, `spawn`,
//! `JoinHandle::join`).
//!
//! Inside a model execution, spawned closures become model threads: they
//! run under the cooperative scheduler, their panics (other than the
//! model's own teardown signal) are recorded as failures, and `join` is a
//! yield point that blocks until the target finishes. Outside a model
//! execution everything passes straight through to `std::thread`.

use std::any::Any;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::runtime::{current_ctx, set_ctx, Ctx, ModelAbort};

/// Renders a panic payload for failure messages.
pub(crate) fn payload_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Instrumented [`std::thread::Builder`].
pub struct Builder {
    inner: std::thread::Builder,
}

impl Builder {
    /// Creates a builder with default settings.
    pub fn new() -> Builder {
        Builder {
            inner: std::thread::Builder::new(),
        }
    }

    /// Names the thread-to-be (also used in model failure reports).
    pub fn name(self, name: String) -> Builder {
        Builder {
            inner: self.inner.name(name),
        }
    }

    /// See [`std::thread::Builder::spawn`].
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current_ctx() {
            Some(ctx) if !ctx.rt.is_aborting() => {
                let rt = Arc::clone(&ctx.rt);
                let name = thread_name(&self.inner);
                let tid = rt.register_thread(ctx.tid, name);
                let child_rt = Arc::clone(&rt);
                let inner = self.inner.spawn(move || {
                    set_ctx(Some(Ctx {
                        rt: Arc::clone(&child_rt),
                        tid,
                    }));
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        child_rt.child_enter(tid);
                        f()
                    }));
                    let panic_msg = match &result {
                        Ok(_) => None,
                        Err(p) if p.downcast_ref::<ModelAbort>().is_some() => None,
                        Err(p) => Some(payload_msg(p.as_ref())),
                    };
                    child_rt.child_exit(tid, panic_msg);
                    set_ctx(None);
                    result
                })?;
                // Spawn is a branch point: the child is runnable from here.
                rt.yield_op(ctx.tid, "spawn handoff");
                Ok(JoinHandle {
                    inner,
                    model: Some((ctx, tid)),
                })
            }
            _ => {
                let inner = self.inner.spawn(move || Ok(f()))?;
                Ok(JoinHandle { inner, model: None })
            }
        }
    }
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

fn thread_name(builder: &std::thread::Builder) -> String {
    // std::thread::Builder does not expose its name; format the builder's
    // Debug output instead of threading the name through separately.
    let dbg = format!("{builder:?}");
    dbg.split('"').nth(1).unwrap_or("thread").to_string()
}

/// Spawns an (optionally model-scheduled) thread with default settings.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Instrumented [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<ThreadResult<T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> JoinHandle<T> {
    /// See [`std::thread::JoinHandle::join`]. In a model execution this is
    /// a yield point; the joiner synchronizes with everything the joined
    /// thread did.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((ctx, tid)) = &self.model {
            ctx.rt.join_thread(ctx.tid, *tid);
        }
        match self.inner.join() {
            Ok(result) => result,
            Err(payload) => Err(payload),
        }
    }

    /// See [`std::thread::JoinHandle::is_finished`].
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}
