//! `mixen-check` — a dependency-free, loom-style model checker for the
//! Mixen concurrency primitives.
//!
//! The [`sync`], [`thread`] and [`cell`] modules are drop-in facades over
//! `std::sync` / `std::thread` that `mixen-pool`, `mixen-core` and
//! `mixen-graph` adopt behind their `model-check` features (compiling to
//! plain `std` re-exports otherwise). Under [`explore`], the facade turns
//! every synchronization operation into a yield point of a cooperative
//! scheduler that runs model threads one at a time, and a DFS explorer with
//! a CHESS-style bounded number of *preemptions* (involuntary context
//! switches) enumerates the schedule tree:
//!
//! ```
//! use std::sync::Arc;
//! use mixen_check::{explore, Config};
//! use mixen_check::sync::Mutex;
//! use mixen_check::{cell::RaceCell, thread};
//!
//! let report = explore(Config::default(), || {
//!     let shared = Arc::new((Mutex::new(()), RaceCell::new(0u32)));
//!     let t = {
//!         let shared = Arc::clone(&shared);
//!         thread::spawn(move || {
//!             let _g = shared.0.lock().unwrap();
//!             shared.1.store(1);
//!         })
//!     };
//!     {
//!         let _g = shared.0.lock().unwrap();
//!         shared.1.store(2);
//!     }
//!     t.join().unwrap();
//! });
//! assert!(report.failure.is_none(), "{:?}", report.failure);
//! assert!(report.schedules > 1); // both lock orders were explored
//! ```
//!
//! Failures — deadlocks (including lost wakeups: modeled `wait_timeout`
//! never times out), data races on [`cell::RaceCell`], panics in model
//! threads, livelock step-limit overruns — abort the exploration and carry
//! a *decision string*, the comma-separated branch choices of the failing
//! schedule. [`replay`] (or [`Config::replay`]) re-runs exactly that
//! schedule, turning any reported bug into a deterministic unit test.

#![warn(missing_docs)]

pub mod cell;
mod runtime;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use runtime::{advance, Ctx, Decision, Mode, ModelAbort, Runtime};

// ---------------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------------

/// The class of failure a schedule exhibited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread, or threads still blocked when the test body
    /// returned (lost wakeup / leaked thread).
    Deadlock,
    /// A model thread (or the test body) panicked.
    Panic,
    /// Two [`cell::RaceCell`] accesses were not ordered by happens-before.
    DataRace,
    /// A single schedule exceeded the yield-point step limit (livelock).
    StepLimit,
}

/// A failing schedule: what went wrong, where, and how to re-run it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable description.
    pub message: String,
    /// Decision string of the failing schedule; feed it to [`replay`] or
    /// [`Config::replay`] to reproduce deterministically.
    pub schedule: String,
    /// Per-thread event trace of the failing schedule, oldest first.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model failure ({:?}): {}", self.kind, self.message)?;
        writeln!(f, "replayable schedule: \"{}\"", self.schedule)?;
        writeln!(f, "trace ({} events):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Outcome of an [`explore`] call.
#[derive(Debug)]
pub struct Report {
    /// Schedules explored by the bounded DFS phase.
    pub schedules: usize,
    /// Additional seeded random schedules executed (fuzz phase).
    pub random_schedules: usize,
    /// True when DFS stopped at [`Config::max_schedules`] before
    /// exhausting the (bounded) schedule tree.
    pub capped: bool,
    /// The first failure found, if any; exploration stops at the first.
    pub failure: Option<Failure>,
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// CHESS-style bound on involuntary context switches per schedule
    /// (switches while the current thread could have continued). Voluntary
    /// switches at blocking points are always free. Most real concurrency
    /// bugs manifest within 2 preemptions.
    pub preemption_bound: usize,
    /// Safety cap on DFS schedules; hitting it sets [`Report::capped`].
    pub max_schedules: usize,
    /// Per-schedule yield-point cap; exceeding it fails as a livelock.
    pub max_steps: usize,
    /// Random schedules to run after DFS, with *unbounded* preemptions —
    /// a seeded fuzz pass beyond the DFS bound. 0 disables.
    pub random_schedules: usize,
    /// Seed for the fuzz pass; defaults to `MIXEN_CHECK_SEED` (env) or a
    /// fixed constant, so runs are reproducible either way.
    pub seed: Option<u64>,
    /// When set, runs exactly this decision string once instead of
    /// exploring (see [`Failure::schedule`]).
    pub replay: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 100_000,
            max_steps: 100_000,
            random_schedules: 0,
            seed: None,
            replay: None,
        }
    }
}

impl Config {
    /// A config with the given preemption bound and defaults otherwise.
    pub fn with_bound(preemption_bound: usize) -> Config {
        Config {
            preemption_bound,
            ..Config::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Panic-hook guard
// ---------------------------------------------------------------------------
//
// Model executions panic on purpose (teardown, expected task panics, failing
// schedules explored thousands of times); without a guard every one of them
// would spray a backtrace. While at least one explore() is active anywhere
// in the process, panics on model threads are silenced; all other threads
// keep the previous hook behaviour.

type PrevHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

static HOOK_DEPTH: StdMutex<usize> = StdMutex::new(0);
static PREV_HOOK: StdMutex<Option<PrevHook>> = StdMutex::new(None);

struct HookGuard;

impl HookGuard {
    fn install() -> HookGuard {
        let mut depth = HOOK_DEPTH.lock().unwrap_or_else(|e| e.into_inner());
        *depth += 1;
        if *depth == 1 {
            let prev = std::panic::take_hook();
            *PREV_HOOK.lock().unwrap_or_else(|e| e.into_inner()) = Some(prev);
            std::panic::set_hook(Box::new(|info| {
                if runtime::in_model() {
                    return;
                }
                let prev = PREV_HOOK.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(prev) = prev.as_ref() {
                    prev(info);
                }
            }));
        }
        HookGuard
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let mut depth = HOOK_DEPTH.lock().unwrap_or_else(|e| e.into_inner());
        *depth -= 1;
        if *depth == 0 {
            let prev = PREV_HOOK.lock().unwrap_or_else(|e| e.into_inner()).take();
            match prev {
                Some(prev) => std::panic::set_hook(prev),
                None => {
                    let _ = std::panic::take_hook();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

fn seed_from_env() -> u64 {
    std::env::var("MIXEN_CHECK_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0x4D49_5845_4E43_4B21) // "MIXENCK!"
}

fn parse_schedule(s: &str) -> Vec<Decision> {
    s.split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| Decision {
            options: 0, // filled in during the run
            idx: part.trim().parse::<usize>().unwrap_or(0),
        })
        .collect()
}

/// Runs one schedule to completion; returns the failure, the (extended)
/// decision path, and the evolved RNG state.
fn run_once(
    rt: &Arc<Runtime>,
    path: Vec<Decision>,
    mode: Mode,
    cfg: &Config,
    rng: u64,
    f: &dyn Fn(),
) -> (Vec<Decision>, Option<Failure>, u64) {
    let bound = match mode {
        Mode::Dfs => cfg.preemption_bound,
        // Fuzz and replay run past the DFS bound by design.
        Mode::Random | Mode::Replay => usize::MAX,
    };
    rt.reset(path, mode, bound, cfg.max_steps, rng);
    runtime::set_ctx(Some(Ctx {
        rt: Arc::clone(rt),
        tid: 0,
    }));
    let body = catch_unwind(AssertUnwindSafe(f));
    match body {
        Ok(()) => rt.finish_main(),
        Err(payload) => {
            if payload.downcast_ref::<ModelAbort>().is_none() {
                rt.record_main_panic(thread::payload_msg(payload.as_ref()));
            }
            rt.abort_and_drain();
        }
    }
    runtime::set_ctx(None);
    rt.take_outcome()
}

/// Explores the schedules of `f` and returns a [`Report`].
///
/// `f` is run once per schedule; it must be deterministic apart from the
/// scheduling the model controls, and should create all shared state inside
/// the closure. The first failing schedule stops the exploration.
pub fn explore(cfg: Config, f: impl Fn()) -> Report {
    let _hook = HookGuard::install();
    let rt = Arc::new(Runtime::new());
    let f: &dyn Fn() = &f;

    if let Some(schedule) = &cfg.replay {
        let path = parse_schedule(schedule);
        let (_, failure, _) = run_once(&rt, path, Mode::Replay, &cfg, 1, f);
        return Report {
            schedules: 1,
            random_schedules: 0,
            capped: false,
            failure,
        };
    }

    let mut path: Vec<Decision> = Vec::new();
    let mut schedules = 0;
    let mut capped = false;
    loop {
        if schedules >= cfg.max_schedules {
            capped = true;
            break;
        }
        let (out_path, failure, _) = run_once(&rt, path, Mode::Dfs, &cfg, 1, f);
        path = out_path;
        schedules += 1;
        if failure.is_some() {
            return Report {
                schedules,
                random_schedules: 0,
                capped,
                failure,
            };
        }
        if !advance(&mut path) {
            break;
        }
    }

    let mut rng = cfg.seed.unwrap_or_else(seed_from_env);
    let mut random_done = 0;
    for _ in 0..cfg.random_schedules {
        let (_, failure, next_rng) = run_once(&rt, Vec::new(), Mode::Random, &cfg, rng, f);
        rng = next_rng;
        random_done += 1;
        if failure.is_some() {
            return Report {
                schedules,
                random_schedules: random_done,
                capped,
                failure,
            };
        }
    }

    Report {
        schedules,
        random_schedules: random_done,
        capped,
        failure: None,
    }
}

/// Like [`explore`], but panics with the full failure report (message,
/// replayable decision string, event trace) if any schedule fails, and
/// returns the [`Report`] otherwise. The standard entry point for tests.
pub fn check(name: &str, cfg: Config, f: impl Fn()) -> Report {
    let report = explore(cfg, f);
    if let Some(failure) = &report.failure {
        panic!(
            "mixen-check: model \"{name}\" failed after {} DFS + {} random schedule(s)\n{failure}",
            report.schedules, report.random_schedules
        );
    }
    report
}

/// Re-runs exactly one schedule of `f` from a decision string (see
/// [`Failure::schedule`]) and returns its failure, if it still fails.
pub fn replay(schedule: &str, f: impl Fn()) -> Option<Failure> {
    let cfg = Config {
        replay: Some(schedule.to_string()),
        ..Config::default()
    };
    explore(cfg, f).failure
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::decision_string;

    #[test]
    fn parse_schedule_roundtrip() {
        let path = parse_schedule("0,2,1");
        assert_eq!(path.len(), 3);
        assert_eq!(path[1].idx, 2);
        assert_eq!(decision_string(&path), "0,2,1");
        assert!(parse_schedule("").is_empty());
    }

    #[test]
    fn advance_walks_the_odometer() {
        let mut path = vec![
            Decision { options: 2, idx: 0 },
            Decision { options: 3, idx: 2 },
        ];
        assert!(advance(&mut path)); // deepest exhausted -> bump shallower
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].idx, 1);
        assert!(!advance(&mut vec![Decision { options: 2, idx: 1 }]));
    }
}
