//! Instrumented drop-in replacements for the `std::sync` primitives the
//! Mixen crates use.
//!
//! Outside a model execution (no [`explore`](crate::explore) on the calling
//! thread's stack) every type delegates straight to its `std` counterpart,
//! so a crate compiled with its `model-check` feature but running normal
//! tests behaves exactly like `std`. Inside a model execution each operation
//! is a scheduler yield point and feeds the vector-clock machinery.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64 as IdCell;
use std::sync::atomic::Ordering as IdOrd;
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    TryLockError,
};
use std::time::Duration;

use crate::runtime::{current_ctx, fresh_object_id, AtomicAccess, Ctx};

/// Lazily assigns a process-unique object id (0 = unassigned) so facade
/// types keep `const fn new`.
fn assign_oid(slot: &IdCell) -> u64 {
    let id = slot.load(IdOrd::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = fresh_object_id();
    match slot.compare_exchange(0, fresh, IdOrd::Relaxed, IdOrd::Relaxed) {
        Ok(_) => fresh,
        Err(raced) => raced,
    }
}

/// The model-active context, if the calling thread is a model thread.
fn model_ctx() -> Option<Ctx> {
    current_ctx()
}

/// Locks a real mutex, ignoring poisoning (model panics poison freely).
fn real_lock<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Takes a real mutex the model has just granted to this thread. The model
/// serializes execution, so the inner lock must be free; poisoning from an
/// earlier model panic is tolerated.
fn real_lock_granted<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => {
            unreachable!("mixen-check: inner mutex contended under model serialization")
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented [`std::sync::Mutex`]. Lock acquisition is a yield point and
/// a release→acquire edge in the vector-clock order.
pub struct Mutex<T> {
    id: IdCell,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new instrumented mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            id: IdCell::new(0),
            inner: StdMutex::new(value),
        }
    }

    fn oid(&self) -> u64 {
        assign_oid(&self.id)
    }

    /// See [`std::sync::Mutex::lock`].
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match model_ctx() {
            Some(ctx) => {
                let modeled = ctx.rt.mutex_lock(ctx.tid, self.oid());
                let inner = if modeled {
                    real_lock_granted(&self.inner)
                } else {
                    real_lock(&self.inner)
                };
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: modeled.then_some(ctx),
                })
            }
            None => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// See [`std::sync::Mutex::into_inner`].
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    /// See [`std::sync::Mutex::get_mut`].
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`]; releasing it is the model's
/// release-edge (not a yield point).
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// `Some` when the lock was acquired through the model scheduler.
    model: Option<Ctx>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after teardown")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after teardown")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the "model says free ⇒ real lock
        // free" invariant holds when the next model thread acquires.
        drop(self.inner.take());
        if let Some(ctx) = self.model.take() {
            ctx.rt.mutex_unlock(ctx.tid, self.lock.oid());
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`]; in a model execution the timeout
/// never fires (lost wakeups must surface as deadlocks).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented [`std::sync::Condvar`]. `wait` blocks until an explicit
/// notify; `notify_one` explores the choice of which waiter wakes.
pub struct Condvar {
    id: IdCell,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new instrumented condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            id: IdCell::new(0),
            inner: StdCondvar::new(),
        }
    }

    fn oid(&self) -> u64 {
        assign_oid(&self.id)
    }

    fn wait_model<'a, T>(&self, mut guard: MutexGuard<'a, T>, ctx: Ctx) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        // Disarm the guard: the model wait releases/reacquires explicitly.
        guard.model = None;
        drop(guard.inner.take());
        drop(guard);
        let modeled = self.wait_model_inner(&ctx, lock.oid());
        let inner = if modeled {
            real_lock_granted(&lock.inner)
        } else {
            real_lock(&lock.inner)
        };
        MutexGuard {
            lock,
            inner: Some(inner),
            model: modeled.then_some(ctx),
        }
    }

    fn wait_model_inner(&self, ctx: &Ctx, mid: u64) -> bool {
        ctx.rt.condvar_wait(ctx.tid, self.oid(), mid)
    }

    /// See [`std::sync::Condvar::wait`].
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.clone() {
            Some(ctx) => Ok(self.wait_model(guard, ctx)),
            None => {
                let lock = guard.lock;
                let inner = guard.inner.take().expect("guard accessed after teardown");
                drop(guard);
                match self.inner.wait(inner) {
                    Ok(inner) => Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poisoned.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    /// See [`std::sync::Condvar::wait_timeout`]. Under the model the
    /// duration is ignored and the wait never times out: a protocol that
    /// needs the timeout to make progress has a lost-wakeup bug, and the
    /// model reports it as a deadlock instead of masking it.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match guard.model.clone() {
            Some(ctx) => Ok((self.wait_model(guard, ctx), WaitTimeoutResult(false))),
            None => {
                let lock = guard.lock;
                let inner = guard.inner.take().expect("guard accessed after teardown");
                drop(guard);
                match self.inner.wait_timeout(inner, dur) {
                    Ok((inner, timeout)) => Ok((
                        MutexGuard {
                            lock,
                            inner: Some(inner),
                            model: None,
                        },
                        WaitTimeoutResult(timeout.timed_out()),
                    )),
                    Err(poisoned) => {
                        let (inner, timeout) = poisoned.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                inner: Some(inner),
                                model: None,
                            },
                            WaitTimeoutResult(timeout.timed_out()),
                        )))
                    }
                }
            }
        }
    }

    /// See [`std::sync::Condvar::notify_all`].
    pub fn notify_all(&self) {
        if let Some(ctx) = model_ctx() {
            ctx.rt.condvar_notify(ctx.tid, self.oid(), true);
        }
        self.inner.notify_all();
    }

    /// See [`std::sync::Condvar::notify_one`].
    pub fn notify_one(&self) {
        if let Some(ctx) = model_ctx() {
            ctx.rt.condvar_notify(ctx.tid, self.oid(), false);
        }
        self.inner.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomic integer and boolean types.
///
/// Each operation is a scheduler yield point; the claimed [`Ordering`]
/// drives the vector-clock happens-before edges (relaxed stores break the
/// release sequence, acquire loads join the location's release clock).
///
/// [`Ordering`]: std::sync::atomic::Ordering
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::{assign_oid, model_ctx, AtomicAccess, IdCell};

    macro_rules! instrumented_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty, extras = [$($extra:ident),*]) => {
            $(#[$doc])*
            pub struct $name {
                id: IdCell,
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new instrumented atomic.
                pub const fn new(value: $ty) -> $name {
                    $name {
                        id: IdCell::new(0),
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                fn note(&self, access: AtomicAccess, ord: Ordering, what: &str) {
                    if let Some(ctx) = model_ctx() {
                        let oid = assign_oid(&self.id);
                        if ctx.rt.yield_op(ctx.tid, what) {
                            ctx.rt.atomic_effect(ctx.tid, oid, access, ord);
                        }
                    }
                }

                /// See the `std` atomic `load`.
                pub fn load(&self, ord: Ordering) -> $ty {
                    self.note(AtomicAccess::Load, ord, concat!(stringify!($std), " load"));
                    self.inner.load(ord)
                }

                /// See the `std` atomic `store`.
                pub fn store(&self, value: $ty, ord: Ordering) {
                    self.note(AtomicAccess::Store, ord, concat!(stringify!($std), " store"));
                    self.inner.store(value, ord);
                }

                /// See the `std` atomic `swap`.
                pub fn swap(&self, value: $ty, ord: Ordering) -> $ty {
                    self.note(AtomicAccess::Rmw, ord, concat!(stringify!($std), " swap"));
                    self.inner.swap(value, ord)
                }

                /// See the `std` atomic `compare_exchange`. The success
                /// ordering applies as an RMW on success, the failure
                /// ordering as a load on failure.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    let ctx = model_ctx();
                    let yielded = match &ctx {
                        Some(c) => c
                            .rt
                            .yield_op(c.tid, concat!(stringify!($std), " compare_exchange")),
                        None => false,
                    };
                    let result = self.inner.compare_exchange(current, new, success, failure);
                    if yielded {
                        if let Some(c) = &ctx {
                            let oid = assign_oid(&self.id);
                            match &result {
                                Ok(_) => c.rt.atomic_effect(c.tid, oid, AtomicAccess::Rmw, success),
                                Err(_) => {
                                    c.rt.atomic_effect(c.tid, oid, AtomicAccess::Load, failure)
                                }
                            }
                        }
                    }
                    result
                }

                /// See the `std` atomic `compare_exchange_weak`. The model
                /// never fails spuriously (it uses the strong variant), which
                /// only prunes retry-loop schedules, never adds behaviours.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// See the `std` atomic `into_inner`.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }

                $(instrumented_atomic!(@extra $extra, $std, $ty);)*
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
        (@extra fetch_add, $std:ident, $ty:ty) => {
            /// See the `std` atomic `fetch_add`.
            pub fn fetch_add(&self, value: $ty, ord: Ordering) -> $ty {
                self.note(AtomicAccess::Rmw, ord, concat!(stringify!($std), " fetch_add"));
                self.inner.fetch_add(value, ord)
            }
        };
        (@extra fetch_sub, $std:ident, $ty:ty) => {
            /// See the `std` atomic `fetch_sub`.
            pub fn fetch_sub(&self, value: $ty, ord: Ordering) -> $ty {
                self.note(AtomicAccess::Rmw, ord, concat!(stringify!($std), " fetch_sub"));
                self.inner.fetch_sub(value, ord)
            }
        };
    }

    instrumented_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicBool`].
        AtomicBool, AtomicBool, bool, extras = []
    );
    instrumented_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicU8`].
        AtomicU8, AtomicU8, u8, extras = [fetch_add, fetch_sub]
    );
    instrumented_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicU64`].
        AtomicU64, AtomicU64, u64, extras = [fetch_add, fetch_sub]
    );
    instrumented_atomic!(
        /// Instrumented [`std::sync::atomic::AtomicUsize`].
        AtomicUsize, AtomicUsize, usize, extras = [fetch_add, fetch_sub]
    );
}
