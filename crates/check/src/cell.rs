//! A race-detecting cell for plain (non-atomic) shared data, analogous to
//! `loom::cell::UnsafeCell`.

use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64 as IdCell;

use crate::runtime::{current_ctx, fresh_object_id};

/// Shared data whose accesses the model checker verifies are ordered by
/// happens-before.
///
/// Inside a model execution, every access is a scheduler yield point and is
/// checked against all other accesses with FastTrack-style epochs: a
/// write concurrent with any other access (or a read concurrent with a
/// write) fails the schedule with a data-race report. This is how the model
/// suite proves that a protocol's *synchronization* — not luck — orders its
/// payload data: publish via a relaxed store instead of a release store and
/// the consumer's read is flagged.
///
/// Outside a model execution accesses are unchecked and unsynchronized, so
/// a `RaceCell` must only be shared across threads under `explore`; it is a
/// modelling tool, not a general-purpose concurrency primitive.
pub struct RaceCell<T> {
    id: IdCell,
    inner: UnsafeCell<T>,
}

// SAFETY: cross-thread access is only meaningful under the model scheduler,
// which serializes all model threads (one runs at a time), so the unchecked
// interior accesses below can never physically overlap in a model run.
unsafe impl<T: Send> Sync for RaceCell<T> {}
// SAFETY: owning a RaceCell is owning its `T`; sending the cell moves the
// value exactly as sending a `T: Send` directly would.
unsafe impl<T: Send> Send for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Creates a cell holding `value`.
    pub const fn new(value: T) -> RaceCell<T> {
        RaceCell {
            id: IdCell::new(0),
            inner: UnsafeCell::new(value),
        }
    }

    fn track(&self, write: bool) {
        if let Some(ctx) = current_ctx() {
            let id = self.id.load(std::sync::atomic::Ordering::Relaxed);
            let oid = if id != 0 {
                id
            } else {
                let fresh = fresh_object_id();
                match self.id.compare_exchange(
                    0,
                    fresh,
                    std::sync::atomic::Ordering::Relaxed,
                    std::sync::atomic::Ordering::Relaxed,
                ) {
                    Ok(_) => fresh,
                    Err(raced) => raced,
                }
            };
            ctx.rt.cell_access(ctx.tid, oid, write);
        }
    }

    /// Read access: calls `f` with a shared reference to the contents.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.track(false);
        // SAFETY: model threads are serialized (see the `Sync` impl); the
        // checker reports — before this access proceeds — any concurrent
        // write that would make it a data race.
        f(unsafe { &*self.inner.get() })
    }

    /// Write access: calls `f` with an exclusive reference to the contents.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.track(true);
        // SAFETY: as in `with`, plus the checker flags concurrent reads.
        f(unsafe { &mut *self.inner.get() })
    }

    /// Reads the value (for `Copy` contents).
    pub fn load(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Replaces the value.
    pub fn store(&self, value: T) {
        self.with_mut(|slot| *slot = value);
    }

    /// Consumes the cell, returning the contents.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RaceCell<T> {
    fn default() -> RaceCell<T> {
        RaceCell::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceCell").finish_non_exhaustive()
    }
}
