//! Property-based tests of the cache simulator: LRU/working-set laws that
//! must hold for arbitrary access sequences.

use mixen_cachesim::{CacheConfig, CacheSim};
use proptest::prelude::*;

fn single_level(capacity: usize, ways: usize, line: usize) -> CacheConfig {
    CacheConfig {
        line,
        levels: vec![mixen_cachesim::cache::LevelConfig { capacity, ways }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counters are always consistent: refs = hits + misses at each level,
    /// and a lower level's references equal the upper level's misses.
    #[test]
    fn counter_identities(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut sim = CacheSim::new(&CacheConfig::tiny_for_tests());
        for (i, &a) in addrs.iter().enumerate() {
            if i % 3 == 0 {
                sim.write(a, 4);
            } else {
                sim.read(a, 4);
            }
        }
        for s in &sim.level_stats {
            prop_assert_eq!(s.references, s.hits + s.misses);
        }
        for w in sim.level_stats.windows(2) {
            prop_assert_eq!(w[0].misses, w[1].references);
        }
        // DRAM reads = last-level miss fills.
        let llc = sim.level_stats.last().unwrap();
        prop_assert_eq!(sim.dram_read_bytes, llc.misses * 16);
    }

    /// Immediately repeating an access always hits L1.
    #[test]
    fn repeat_access_hits(addrs in proptest::collection::vec(0u64..100_000, 1..100)) {
        let mut sim = CacheSim::new(&CacheConfig::tiny_for_tests());
        for &a in &addrs {
            sim.read(a, 1);
            let misses_before = sim.level_stats[0].misses;
            sim.read(a, 1);
            prop_assert_eq!(sim.level_stats[0].misses, misses_before, "repeat of {} missed", a);
        }
    }

    /// A fully-associative cache obeys the LRU stack property: any address
    /// re-accessed after at most `ways - 1` distinct other lines must hit.
    #[test]
    fn lru_stack_property(
        others in proptest::collection::vec(1u64..1000, 0..3),
    ) {
        // 4-way fully associative (capacity 64, line 16 -> 4 lines, 1 set).
        let mut sim = CacheSim::new(&single_level(64, 4, 16));
        sim.read(0, 1);
        for &o in &others {
            sim.read(o * 16, 1); // distinct lines, same single set
        }
        let misses_before = sim.level_stats[0].misses;
        sim.read(0, 1);
        prop_assert_eq!(
            sim.level_stats[0].misses, misses_before,
            "line 0 evicted after only {} intervening lines", others.len()
        );
    }

    /// Traffic is monotone: adding accesses never decreases any counter.
    #[test]
    fn counters_are_monotone(addrs in proptest::collection::vec(0u64..50_000, 2..100)) {
        let mut sim = CacheSim::new(&CacheConfig::tiny_for_tests());
        let mut last = (0u64, 0u64, 0u64);
        for &a in &addrs {
            sim.write(a, 4);
            let now = (
                sim.level_stats[0].references,
                sim.dram_read_bytes + sim.dram_write_bytes,
                sim.logical_bytes,
            );
            prop_assert!(now.0 >= last.0 && now.1 >= last.1 && now.2 > last.2);
            last = now;
        }
    }

    /// Jump counting never exceeds the access count and resets cleanly.
    #[test]
    fn jumps_bounded_by_accesses(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut sim = CacheSim::new(&CacheConfig::tiny_for_tests());
        for &a in &addrs {
            sim.read(a, 1);
        }
        prop_assert!(sim.random_jumps < addrs.len() as u64);
        sim.reset_stats();
        prop_assert_eq!(sim.random_jumps, 0);
    }
}
