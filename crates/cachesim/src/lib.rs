//! Software cache-hierarchy and memory-traffic simulator.
//!
//! The paper measures cache references with Linux `perf` and memory traffic
//! with likwid on a two-socket Xeon (§6.1: L1 64 KB, L2 1 MB, LLC 27.5 MB).
//! Those counters are unavailable here, so this crate simulates the
//! hierarchy directly:
//!
//! * [`cache::CacheSim`] — set-associative LRU levels with write-back /
//!   write-allocate semantics and DRAM-traffic accounting.
//! * [`layout::MemLayout`] — a synthetic address space assigning each data
//!   array a disjoint range, so traces model the real arrays' spatial
//!   locality.
//! * [`traced`] — *instrumented twins* of the Pull, Block and Mixen
//!   per-iteration kernels: they replay the exact access streams of the real
//!   implementations into the simulator. The hit/miss/traffic *ratios*
//!   between variants — which is what Figs. 4, 5 and 7 plot — are determined
//!   by those streams.

#![forbid(unsafe_code)]

pub mod cache;
pub mod layout;
pub mod traced;

pub use cache::{CacheConfig, CacheSim, LevelStats};
pub use layout::MemLayout;
pub use traced::{trace_block, trace_mixen, trace_pull, trace_push, TraceReport};
