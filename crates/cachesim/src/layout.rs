//! Synthetic address space for traced kernels.
//!
//! Each logical array gets a disjoint, page-aligned address range so traces
//! reproduce the spatial locality of the real data structures (sequential
//! scans share cache lines; different arrays never alias).

/// A named array placed in the synthetic address space.
#[derive(Clone, Copy, Debug)]
pub struct ArrayRef {
    base: u64,
    elem: u64,
}

impl ArrayRef {
    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + i as u64 * self.elem
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_bytes(&self) -> usize {
        self.elem as usize
    }
}

/// Bump allocator for the synthetic address space.
#[derive(Debug, Default)]
pub struct MemLayout {
    cursor: u64,
    bases: Vec<u64>,
}

impl MemLayout {
    /// Starts an empty layout.
    pub fn new() -> Self {
        Self {
            cursor: 0x1000,
            bases: Vec::new(),
        }
    }

    /// Base addresses of every reserved array, ascending — feed these to
    /// [`crate::CacheSim::set_regions`] so random-jump counting is
    /// per-array.
    pub fn region_bases(&self) -> &[u64] {
        &self.bases
    }

    /// Reserves an array of `len` elements of `elem_bytes` each, aligned to
    /// 4 KiB pages with a guard page between arrays.
    pub fn array(&mut self, len: usize, elem_bytes: usize) -> ArrayRef {
        const PAGE: u64 = 4096;
        let base = self.cursor.div_ceil(PAGE) * PAGE;
        let size = (len.max(1) * elem_bytes) as u64;
        self.cursor = base + size + PAGE;
        self.bases.push(base);
        ArrayRef {
            base,
            elem: elem_bytes as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_disjoint_and_aligned() {
        let mut l = MemLayout::new();
        let a = l.array(100, 4);
        let b = l.array(50, 8);
        assert_eq!(a.addr(0) % 4096, 0);
        assert_eq!(b.addr(0) % 4096, 0);
        assert!(a.addr(99) + 4 <= b.addr(0), "arrays overlap");
    }

    #[test]
    fn addressing_is_strided() {
        let mut l = MemLayout::new();
        let a = l.array(10, 4);
        assert_eq!(a.addr(3) - a.addr(0), 12);
        assert_eq!(a.elem_bytes(), 4);
    }

    #[test]
    fn zero_length_array_is_fine() {
        let mut l = MemLayout::new();
        let a = l.array(0, 4);
        let b = l.array(10, 4);
        assert!(a.addr(0) < b.addr(0));
    }
}
