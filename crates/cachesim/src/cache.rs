//! Set-associative LRU cache hierarchy with DRAM traffic accounting.
//!
//! Semantics:
//! * inclusive hierarchy, checked top-down (L1 → L2 → LLC → DRAM),
//! * write-back, write-allocate,
//! * a miss at level `i` is a reference at level `i+1`,
//! * DRAM read traffic = LLC miss fills; DRAM write traffic = dirty lines
//!   evicted from the LLC.

/// One cache level's geometry.
#[derive(Clone, Copy, Debug)]
pub struct LevelConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity.
    pub ways: usize,
}

/// Hierarchy geometry.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Line size in bytes (64 on the paper's machine).
    pub line: usize,
    /// Levels from closest (L1) to farthest (LLC).
    pub levels: Vec<LevelConfig>,
}

impl CacheConfig {
    /// The paper's hierarchy (§6.1): L1 64 KB / L2 1 MB / LLC 27.5 MB,
    /// 64-byte lines, typical Skylake-SP associativities.
    pub fn paper_default() -> Self {
        Self {
            line: 64,
            levels: vec![
                LevelConfig {
                    capacity: 64 * 1024,
                    ways: 8,
                },
                LevelConfig {
                    capacity: 1024 * 1024,
                    ways: 16,
                },
                LevelConfig {
                    capacity: 27 * 1024 * 1024 + 512 * 1024,
                    ways: 11,
                },
            ],
        }
    }

    /// The paper hierarchy with every capacity divided by `divisor` —
    /// matching the scaled-down stand-in datasets, so that cache pressure
    /// (working set ÷ capacity) is shape-preserving. Floors keep each level
    /// meaningful: L1 ≥ 1 KB, L2 ≥ 4 KB, LLC ≥ 16 KB.
    pub fn scaled_paper(divisor: usize) -> Self {
        let d = divisor.max(1);
        Self {
            line: 64,
            levels: vec![
                LevelConfig {
                    capacity: (64 * 1024 / d).max(1024),
                    ways: 8,
                },
                LevelConfig {
                    capacity: (1024 * 1024 / d).max(4 * 1024),
                    ways: 16,
                },
                LevelConfig {
                    capacity: ((27 * 1024 * 1024 + 512 * 1024) / d).max(16 * 1024),
                    ways: 11,
                },
            ],
        }
    }

    /// Like [`CacheConfig::scaled_paper`], but with the *aggregate* private
    /// capacities of the paper's 20-core run: the hardware counters the
    /// paper reports (perf/likwid) sum over all cores, and each core's
    /// private L1/L2 holds a distinct slice of the working set, so a
    /// single-stream simulation should see 20 x L1 and 20 x L2 (the LLC is
    /// already shared). Used by the Fig. 4/5 twins.
    pub fn scaled_paper_aggregate(divisor: usize, cores: usize) -> Self {
        let d = divisor.max(1);
        let k = cores.max(1);
        Self {
            line: 64,
            levels: vec![
                LevelConfig {
                    capacity: (64 * 1024 * k / d).max(1024),
                    ways: 8,
                },
                LevelConfig {
                    capacity: (1024 * 1024 * k / d).max(4 * 1024),
                    ways: 16,
                },
                LevelConfig {
                    capacity: ((27 * 1024 * 1024 + 512 * 1024) / d).max(16 * 1024),
                    ways: 11,
                },
            ],
        }
    }

    /// A tiny hierarchy for unit tests (1 line set geometry is easy to
    /// reason about by hand).
    pub fn tiny_for_tests() -> Self {
        Self {
            line: 16,
            levels: vec![
                LevelConfig {
                    capacity: 64,
                    ways: 2,
                },
                LevelConfig {
                    capacity: 256,
                    ways: 4,
                },
            ],
        }
    }
}

/// Reference/hit/miss counters of one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Total lookups (hits + misses).
    pub references: u64,
    /// Lookups served by this level.
    pub hits: u64,
    /// Lookups passed to the next level.
    pub misses: u64,
}

impl LevelStats {
    /// Miss ratio (0 when never referenced).
    pub fn miss_ratio(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.misses as f64 / self.references as f64
        }
    }
}

struct Way {
    tag: u64,
    dirty: bool,
    stamp: u64,
    valid: bool,
}

struct Level {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
}

impl Level {
    fn new(cfg: LevelConfig, line: usize) -> Self {
        let lines = (cfg.capacity / line).max(1);
        let ways = cfg.ways.min(lines).max(1);
        let mut n_sets = (lines / ways).max(1);
        // Round down to a power of two so the set index is a mask.
        n_sets = 1 << (usize::BITS - 1 - n_sets.leading_zeros());
        let sets = (0..n_sets).map(|_| Vec::with_capacity(ways)).collect();
        Self {
            sets,
            ways,
            set_mask: n_sets as u64 - 1,
        }
    }

    /// Looks up a line; on hit refreshes LRU. Returns whether it hit.
    fn lookup(&mut self, line_addr: u64, write: bool, clock: u64) -> bool {
        let set = &mut self.sets[(line_addr & self.set_mask) as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line_addr) {
            w.stamp = clock;
            w.dirty |= write;
            return true;
        }
        false
    }

    /// Inserts a line, evicting LRU if needed. Returns the evicted dirty
    /// line address, if any.
    fn fill(&mut self, line_addr: u64, write: bool, clock: u64) -> Option<u64> {
        let ways = self.ways;
        let set = &mut self.sets[(line_addr & self.set_mask) as usize];
        if set.len() < ways {
            set.push(Way {
                tag: line_addr,
                dirty: write,
                stamp: clock,
                valid: true,
            });
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.stamp } else { 0 })
            .expect("non-empty set");
        let evicted = (victim.valid && victim.dirty).then_some(victim.tag);
        *victim = Way {
            tag: line_addr,
            dirty: write,
            stamp: clock,
            valid: true,
        };
        evicted
    }
}

/// The simulator: feed it reads/writes, read the counters.
pub struct CacheSim {
    levels: Vec<Level>,
    line: usize,
    clock: u64,
    /// Per-level counters, L1 first.
    pub level_stats: Vec<LevelStats>,
    /// Bytes read from DRAM (LLC miss fills).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (dirty LLC evictions).
    pub dram_write_bytes: u64,
    /// Total bytes the program touched (CPU-side logical traffic).
    pub logical_bytes: u64,
    /// Non-sequential address jumps, counted per registered region (see
    /// [`CacheSim::set_regions`]): an access whose line is neither the same
    /// as nor adjacent to the previous access *to the same array*. This is
    /// the "random memory access" count of the paper's §3/§5 analysis —
    /// sequential scans of ptr/idx/value arrays contribute ~0, random
    /// lookups contribute ~1 each.
    pub random_jumps: u64,
    region_bases: Vec<u64>,
    last_line_per_region: Vec<Option<u64>>,
}

impl CacheSim {
    /// Builds a simulator from a configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        Self {
            levels: cfg
                .levels
                .iter()
                .map(|&l| Level::new(l, cfg.line))
                .collect(),
            line: cfg.line,
            clock: 0,
            level_stats: vec![LevelStats::default(); cfg.levels.len()],
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            logical_bytes: 0,
            random_jumps: 0,
            region_bases: Vec::new(),
            last_line_per_region: vec![None],
        }
    }

    /// Registers the base addresses of the arrays in the traced address
    /// space (ascending), so random-jump counting is per-array. Without
    /// registration the whole address space is one region and interleaved
    /// array scans pollute the count.
    pub fn set_regions(&mut self, bases: &[u64]) {
        debug_assert!(bases.windows(2).all(|w| w[0] <= w[1]));
        self.region_bases = bases.to_vec();
        self.last_line_per_region = vec![None; bases.len() + 1];
    }

    /// Simulates a read of `bytes` at `addr` (split across lines).
    pub fn read(&mut self, addr: u64, bytes: usize) {
        self.access(addr, bytes, false);
    }

    /// Simulates a write of `bytes` at `addr` (write-allocate).
    pub fn write(&mut self, addr: u64, bytes: usize) {
        self.access(addr, bytes, true);
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Clears all counters but keeps cache contents — call after a warm-up
    /// pass so steady-state iterations are measured without cold misses.
    pub fn reset_stats(&mut self) {
        self.level_stats = vec![LevelStats::default(); self.levels.len()];
        self.dram_read_bytes = 0;
        self.dram_write_bytes = 0;
        self.logical_bytes = 0;
        self.random_jumps = 0;
        self.last_line_per_region = vec![None; self.region_bases.len() + 1];
    }

    fn access(&mut self, addr: u64, bytes: usize, write: bool) {
        self.logical_bytes += bytes as u64;
        let first = addr / self.line as u64;
        let region = self.region_bases.partition_point(|&b| b <= addr);
        match self.last_line_per_region[region] {
            Some(prev) if first == prev || first == prev + 1 => {}
            Some(_) => self.random_jumps += 1,
            None => {}
        }
        let last = (addr + bytes.max(1) as u64 - 1) / self.line as u64;
        for line_addr in first..=last {
            self.access_line(line_addr, write);
        }
        self.last_line_per_region[region] = Some(last);
    }

    fn access_line(&mut self, line_addr: u64, write: bool) {
        self.clock += 1;
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            self.level_stats[i].references += 1;
            if level.lookup(line_addr, write, self.clock) {
                self.level_stats[i].hits += 1;
                hit_level = Some(i);
                break;
            }
            self.level_stats[i].misses += 1;
        }
        let fill_upto = match hit_level {
            Some(0) => return,
            Some(i) => i,
            None => {
                self.dram_read_bytes += self.line as u64;
                self.levels.len()
            }
        };
        // Fill all levels above the hit (inclusive hierarchy). Dirty
        // evictions from the last level go to DRAM; dirty evictions from
        // inner levels write back into the level below (already present in
        // an inclusive hierarchy, so just mark dirty).
        let clock = self.clock;
        for i in (0..fill_upto).rev() {
            if let Some(evicted) = self.levels[i].fill(line_addr, write, clock) {
                if i + 1 == self.levels.len() {
                    self.dram_write_bytes += self.line as u64;
                } else {
                    self.levels[i + 1].lookup(evicted, true, clock);
                }
            }
        }
        // An LLC-level dirty eviction when the hit was in LLC itself cannot
        // happen (no fill at that level), which matches inclusion.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CacheSim {
        CacheSim::new(&CacheConfig::tiny_for_tests())
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits() {
        let mut s = sim();
        s.read(0, 4);
        assert_eq!(s.level_stats[0].misses, 1);
        assert_eq!(s.level_stats[1].misses, 1);
        assert_eq!(s.dram_read_bytes, 16);
        s.read(4, 4); // same 16-byte line
        assert_eq!(s.level_stats[0].hits, 1);
        assert_eq!(s.dram_read_bytes, 16);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut s = sim();
        s.read(12, 8); // crosses the line boundary at 16
        assert_eq!(s.level_stats[0].references, 2);
        assert_eq!(s.dram_read_bytes, 32);
        assert_eq!(s.logical_bytes, 8);
    }

    #[test]
    fn lru_eviction_order() {
        // L1: 64 B, 2-way, 16 B lines => 2 sets. Lines 0,2,4 map to set 0.
        let mut s = sim();
        s.read(0, 1); // line 0 -> set 0
        s.read(32, 1); // line 2 -> set 0
        s.read(0, 1); // refresh line 0
        s.read(64, 1); // line 4 -> set 0, evicts line 2 (LRU)
        s.read(0, 1); // still resident
        assert_eq!(s.level_stats[0].hits, 2);
        s.read(32, 1); // line 2 was evicted from L1, but hits L2
        assert_eq!(s.level_stats[0].misses, 4);
        assert_eq!(s.level_stats[1].hits, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_to_dram() {
        // Write enough distinct lines to evict dirty data out of both
        // levels. L2 = 256 B = 16 lines; write 64 lines.
        let mut s = sim();
        for i in 0..64u64 {
            s.write(i * 16, 4);
        }
        assert!(s.dram_write_bytes > 0, "dirty evictions must reach DRAM");
        assert_eq!(s.dram_read_bytes, 64 * 16); // write-allocate fills
    }

    #[test]
    fn sequential_scan_has_high_hit_ratio() {
        let mut s = CacheSim::new(&CacheConfig::paper_default());
        for i in 0..100_000u64 {
            s.read(i * 4, 4);
        }
        // 16 accesses per 64-byte line -> ~93.75 % L1 hits.
        let l1 = s.level_stats[0];
        assert!(l1.miss_ratio() < 0.07, "miss ratio {}", l1.miss_ratio());
    }

    #[test]
    fn random_scan_has_low_hit_ratio() {
        let mut s = CacheSim::new(&CacheConfig::paper_default());
        // Touch a 400 MB range pseudo-randomly: way beyond LLC.
        let mut x = 0x12345678u64;
        for _ in 0..100_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.read((x >> 16) % (400 << 20), 4);
        }
        let l1 = s.level_stats[0];
        assert!(l1.miss_ratio() > 0.9, "miss ratio {}", l1.miss_ratio());
        assert!(s.dram_read_bytes > 90_000 * 64);
    }

    #[test]
    fn llc_capacity_respected() {
        // A working set fitting in LLC but not L2: second pass must hit LLC.
        let mut s = CacheSim::new(&CacheConfig::paper_default());
        let lines = (4 << 20) / 64; // 4 MB
        for pass in 0..2 {
            for i in 0..lines as u64 {
                s.read(i * 64, 1);
            }
            if pass == 1 {
                let llc = s.level_stats[2];
                assert!(llc.hits >= lines as u64, "LLC hits {}", llc.hits);
            }
        }
        // No extra DRAM reads in the second pass.
        assert_eq!(s.dram_read_bytes, lines as u64 * 64);
    }

    #[test]
    fn miss_ratio_of_empty_stats() {
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn sequential_scan_has_zero_jumps() {
        let mut s = sim();
        for i in 0..1000u64 {
            s.read(i * 4, 4);
        }
        assert_eq!(s.random_jumps, 0);
    }

    #[test]
    fn random_pattern_counts_jumps() {
        let mut s = sim();
        // Alternate between two far-apart addresses within one region.
        for i in 0..100u64 {
            s.read((i % 2) * 100_000, 4);
        }
        assert_eq!(s.random_jumps, 99);
    }

    #[test]
    fn interleaved_sequential_arrays_are_not_jumps_with_regions() {
        let mut a = sim();
        a.set_regions(&[0, 1_000_000]);
        // Interleave two sequential scans, one per region.
        for i in 0..500u64 {
            a.read(i * 4, 4);
            a.read(1_000_000 + i * 4, 4);
        }
        assert_eq!(a.random_jumps, 0);
        // Without regions the same pattern is all jumps.
        let mut b = sim();
        for i in 0..500u64 {
            b.read(i * 4, 4);
            b.read(1_000_000 + i * 4, 4);
        }
        assert!(b.random_jumps > 900);
    }

    #[test]
    fn reset_stats_clears_jump_state() {
        let mut s = sim();
        s.read(0, 4);
        s.read(100_000, 4);
        assert_eq!(s.random_jumps, 1);
        s.reset_stats();
        assert_eq!(s.random_jumps, 0);
        // First access after reset is never a jump.
        s.read(500_000, 4);
        assert_eq!(s.random_jumps, 0);
    }
}
