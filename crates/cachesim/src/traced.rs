//! Instrumented twins of the per-iteration kernels.
//!
//! Each `trace_*` function replays the exact memory-access stream of one
//! steady-state iteration of the corresponding engine into a [`CacheSim`]:
//! a warm-up iteration fills the caches, counters are reset, and one
//! measured iteration produces the report. The *real* graph/block
//! structures drive the addresses, so skew and locality are genuine.
//!
//! These twins are what regenerate the paper's hardware-counter figures:
//! Fig. 4 (memory traffic), Fig. 5 (L2 references split hit/miss) and
//! Fig. 7 (LLC hits and traffic vs block size).

use mixen_core::{BlockedSubgraph, MixenEngine};
use mixen_graph::{Csr, Graph};

use crate::cache::{CacheConfig, CacheSim, LevelStats};
use crate::layout::MemLayout;

/// Counter snapshot of one measured iteration.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Per-level reference/hit/miss counters (L1 first).
    pub levels: Vec<LevelStats>,
    /// DRAM read traffic in bytes.
    pub dram_read_bytes: u64,
    /// DRAM write traffic in bytes.
    pub dram_write_bytes: u64,
    /// CPU-side logical bytes touched.
    pub logical_bytes: u64,
    /// Per-array non-sequential jumps (the §3/§5 "random memory accesses").
    pub random_jumps: u64,
}

impl TraceReport {
    fn from_sim(sim: &CacheSim) -> Self {
        Self {
            levels: sim.level_stats.clone(),
            dram_read_bytes: sim.dram_read_bytes,
            dram_write_bytes: sim.dram_write_bytes,
            logical_bytes: sim.logical_bytes,
            random_jumps: sim.random_jumps,
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// L2 statistics (index 1), if the hierarchy has an L2.
    pub fn l2(&self) -> LevelStats {
        self.levels.get(1).copied().unwrap_or_default()
    }

    /// Last-level-cache statistics.
    pub fn llc(&self) -> LevelStats {
        self.levels.last().copied().unwrap_or_default()
    }
}

/// One steady-state iteration of the pulling flow (GraphMat-like):
/// sequential `cscPtr`/`cscIdx`/`y`, random reads of `x` (Algorithm 1,
/// lines 5–7).
pub fn trace_pull(g: &Graph, cfg: &CacheConfig) -> TraceReport {
    let n = g.n();
    let m = g.m();
    let mut layout = MemLayout::new();
    let ptr = layout.array(n + 1, 8);
    let idx = layout.array(m, 4);
    let x = layout.array(n, 4);
    let y = layout.array(n, 4);
    let mut sim = CacheSim::new(cfg);
    sim.set_regions(layout.region_bases());
    for pass in 0..2 {
        if pass == 1 {
            sim.reset_stats();
        }
        let mut edge = 0usize;
        for v in 0..n as u32 {
            sim.read(ptr.addr(v as usize), 8);
            for &u in g.in_neighbors(v) {
                sim.read(idx.addr(edge), 4);
                sim.read(x.addr(u as usize), 4);
                edge += 1;
            }
            sim.write(y.addr(v as usize), 4);
        }
    }
    TraceReport::from_sim(&sim)
}

/// One steady-state iteration of the pushing flow (Ligra-like): sequential
/// `csrPtr`/`csrIdx`/`x`, random atomic read-modify-writes into `y`
/// (Algorithm 1, lines 1–3).
pub fn trace_push(g: &Graph, cfg: &CacheConfig) -> TraceReport {
    let n = g.n();
    let m = g.m();
    let mut layout = MemLayout::new();
    let ptr = layout.array(n + 1, 8);
    let idx = layout.array(m, 4);
    let x = layout.array(n, 4);
    let y = layout.array(n, 4);
    let mut sim = CacheSim::new(cfg);
    sim.set_regions(layout.region_bases());
    for pass in 0..2 {
        if pass == 1 {
            sim.reset_stats();
        }
        let mut edge = 0usize;
        for u in 0..n as u32 {
            sim.read(ptr.addr(u as usize), 8);
            sim.read(x.addr(u as usize), 4);
            for &v in g.out_neighbors(u) {
                sim.read(idx.addr(edge), 4);
                // Atomic add: read-modify-write of the destination.
                sim.read(y.addr(v as usize), 4);
                sim.write(y.addr(v as usize), 4);
                edge += 1;
            }
        }
        // Apply pass: transform sums into next values.
        for v in 0..n {
            sim.read(y.addr(v), 4);
            sim.write(y.addr(v), 4);
        }
    }
    TraceReport::from_sim(&sim)
}

/// One steady-state Scatter+Gather+Apply iteration over a blocked
/// structure. `x_len` is the property-vector length (all nodes for the GPOP
/// variant, regular nodes for Mixen), and `cache_step` adds Mixen's
/// static-bin re-priming stream.
fn trace_blocked(
    blocked: &BlockedSubgraph,
    x_len: usize,
    cache_step: bool,
    seed_push: Option<&Csr>,
    cfg: &CacheConfig,
) -> TraceReport {
    let mut layout = MemLayout::new();
    // Concatenated per-bin arrays, with running offsets mirroring the real
    // allocation (one Vec per (task, col) pair, contiguous).
    let total_slots: usize = blocked.total_msg_slots();
    let total_edges: usize = blocked.nnz();
    let src_ids = layout.array(total_slots, 4);
    let dest_ptr = layout.array(total_slots + blocked.rows().len(), 4);
    let dests = layout.array(total_edges, 4);
    let vals = layout.array(total_slots, 4);
    let x = layout.array(x_len, 4);
    let y = layout.array(x_len, 4);
    let sta = layout.array(if cache_step { x_len } else { 0 }, 4);
    let (seed_vals, seed_idx) = match seed_push {
        Some(csr) => (layout.array(csr.n_rows(), 4), layout.array(csr.nnz(), 4)),
        None => (layout.array(0, 4), layout.array(0, 4)),
    };

    let mut sim = CacheSim::new(cfg);
    sim.set_regions(layout.region_bases());
    for pass in 0..2 {
        if pass == 1 {
            sim.reset_stats();
        }
        // Without the Cache step (ablation), seed contributions are
        // re-pushed every iteration: read each seed's value and index list,
        // read-modify-write the destination properties.
        if let Some(csr) = seed_push {
            let mut e = 0usize;
            for srow in 0..csr.n_rows() as u32 {
                sim.read(seed_vals.addr(srow as usize), 4);
                for &dst in csr.neighbors(srow) {
                    sim.read(seed_idx.addr(e), 4);
                    sim.read(x.addr(dst as usize), 4);
                    sim.write(x.addr(dst as usize), 4);
                    e += 1;
                }
            }
        }
        // Scatter (row-major over tasks).
        let mut slot_off = 0usize;
        for row in blocked.rows() {
            for blk in &row.blocks {
                for (k, &src) in blk.src_ids.iter().enumerate() {
                    sim.read(src_ids.addr(slot_off + k), 4);
                    sim.read(x.addr((row.src_start + src) as usize), 4);
                    sim.write(vals.addr(slot_off + k), 4);
                }
                slot_off += blk.src_ids.len();
            }
            if cache_step {
                // Cache step: re-prime the dead x segment from the static bin.
                for v in row.src_start..row.src_end {
                    sim.read(sta.addr(v as usize), 4);
                    sim.write(x.addr(v as usize), 4);
                }
            }
        }
        // Gather (column-major). Per-bin value offsets must be recomputed in
        // column order.
        let row_slot_offsets: Vec<Vec<usize>> = {
            let mut offs = Vec::with_capacity(blocked.rows().len());
            let mut acc = 0usize;
            for row in blocked.rows() {
                let mut per_col = Vec::with_capacity(row.blocks.len());
                for blk in &row.blocks {
                    per_col.push(acc);
                    acc += blk.src_ids.len();
                }
                offs.push(per_col);
            }
            offs
        };
        let mut edge_off_per_block: Vec<Vec<usize>> = Vec::new();
        {
            let mut acc = 0usize;
            for row in blocked.rows() {
                let mut per_col = Vec::with_capacity(row.blocks.len());
                for blk in &row.blocks {
                    per_col.push(acc);
                    acc += blk.dests.len();
                }
                edge_off_per_block.push(per_col);
            }
        }
        for j in 0..blocked.n_col_blocks() {
            let col_base = j * blocked.block_side();
            for (i, row) in blocked.rows().iter().enumerate() {
                let blk = &row.blocks[j];
                let base_slot = row_slot_offsets[i][j];
                let base_edge = edge_off_per_block[i][j];
                let mut e = 0usize;
                for (k, _) in blk.src_ids.iter().enumerate() {
                    sim.read(vals.addr(base_slot + k), 4);
                    sim.read(dest_ptr.addr(base_slot + k), 4);
                    for &d in blk.dests_of(k) {
                        sim.read(dests.addr(base_edge + e), 4);
                        // y[d] += val: read-modify-write.
                        sim.read(y.addr(col_base + d as usize), 4);
                        sim.write(y.addr(col_base + d as usize), 4);
                        e += 1;
                    }
                }
            }
            // Apply over the column segment.
            for v in blocked.col_range(j) {
                sim.read(y.addr(v), 4);
                sim.write(y.addr(v), 4);
            }
        }
    }
    TraceReport::from_sim(&sim)
}

/// One steady-state iteration of whole-graph blocking (GPOP-like): the full
/// adjacency flows through the bins, `x`/`y` span all `n` nodes, no Cache
/// step.
pub fn trace_block(g: &Graph, blocked: &BlockedSubgraph, cfg: &CacheConfig) -> TraceReport {
    trace_blocked(blocked, g.n(), false, None, cfg)
}

/// One steady-state Main-Phase iteration of Mixen: only the regular
/// subgraph flows through the bins, property vectors span `r` nodes, and the
/// Cache step re-primes each source segment from the static bin. (Pre- and
/// Post-Phase run once per execution and amortize to ~0 over the paper's
/// 100 timed iterations.)
pub fn trace_mixen(engine: &MixenEngine, cfg: &CacheConfig) -> TraceReport {
    let cache_step = engine.opts().cache_step;
    trace_blocked(
        engine.blocked(),
        engine.filtered().num_regular(),
        cache_step,
        // With the Cache step ablated away, the seed push recurs each
        // iteration and its traffic must be charged per iteration.
        (!cache_step).then(|| engine.filtered().seed_csr()),
        cfg,
    )
}

/// One steady-state Main-Phase iteration of Mixen under a specific
/// reordering policy: builds a fresh engine with `ordering` applied and
/// replays its memory stream. This is the per-policy probe behind the
/// EXPERIMENTS.md reordering shoot-out — the relabel permutation changes
/// which rows land in which blocks (and, for the hub-domain policies, the
/// block sizing itself), so the miss-rate differences are structural, not
/// synthetic.
pub fn trace_mixen_with_ordering(
    g: &Graph,
    ordering: mixen_core::RegularOrdering,
    cfg: &CacheConfig,
) -> TraceReport {
    let opts = mixen_core::MixenOpts {
        ordering,
        ..Default::default()
    };
    let engine = MixenEngine::new(g, opts);
    trace_mixen(&engine, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_core::{MixenOpts, RegularOrdering};
    use mixen_graph::{Dataset, Scale};

    fn cfg() -> CacheConfig {
        // Tiny datasets are 1/1024 of the paper's; scale the hierarchy to
        // match so cache pressure is realistic.
        CacheConfig::scaled_paper(1024)
    }

    #[test]
    fn pull_logical_traffic_matches_model() {
        // 2m + 2n elements (4 B) plus the 8 B pointer scan.
        let g = Dataset::Rmat.generate(Scale::Tiny, 1);
        let rep = trace_pull(&g, &cfg());
        let expected = (2 * g.m() + g.n()) as u64 * 4 + (g.n() as u64) * 8;
        assert_eq!(rep.logical_bytes, expected);
    }

    #[test]
    fn mixen_dram_traffic_below_pull_on_skewed_graph() {
        let g = Dataset::Wiki.generate(Scale::Tiny, 2);
        let pull = trace_pull(&g, &cfg());
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let mixen = trace_mixen(&engine, &cfg());
        assert!(
            mixen.dram_bytes() < pull.dram_bytes(),
            "mixen {} vs pull {}",
            mixen.dram_bytes(),
            pull.dram_bytes()
        );
    }

    #[test]
    fn blocked_l2_miss_ratio_below_pull_on_skewed_graph() {
        use mixen_baselines::BlockEngine;
        let g = Dataset::Rmat.generate(Scale::Tiny, 3);
        let pull = trace_pull(&g, &cfg());
        let be = BlockEngine::with_default_blocks(&g);
        let block = trace_block(&g, be.blocked(), &cfg());
        assert!(
            block.l2().miss_ratio() < pull.l2().miss_ratio(),
            "block {} vs pull {}",
            block.l2().miss_ratio(),
            pull.l2().miss_ratio()
        );
    }

    #[test]
    fn push_random_writes_dominate() {
        // Push's random RMWs into y make its L2 behaviour at least as bad
        // as pull's random reads of x on a skewed graph.
        let g = Dataset::Wiki.generate(Scale::Tiny, 5);
        let push = trace_push(&g, &cfg());
        let pull = trace_pull(&g, &cfg());
        assert!(
            push.l2().miss_ratio() > 0.8 * pull.l2().miss_ratio(),
            "push {} vs pull {}",
            push.l2().miss_ratio(),
            pull.l2().miss_ratio()
        );
        // Random jumps track m (one per edge-destination write).
        assert!(push.random_jumps as f64 > 0.5 * g.m() as f64);
    }

    #[test]
    fn every_policy_traces_the_same_edge_set() {
        // The relabel permutation moves rows between blocks but never adds
        // or drops edges, so per-policy traces agree on the regular-region
        // edge count (dests array length) and all produce live hierarchies.
        let g = Dataset::Rmat.generate(Scale::Tiny, 6);
        let base = MixenEngine::new(&g, MixenOpts::default());
        let nnz = base.blocked().nnz();
        for ordering in RegularOrdering::ALL {
            let engine = MixenEngine::new(
                &g,
                MixenOpts {
                    ordering,
                    ..Default::default()
                },
            );
            assert_eq!(engine.blocked().nnz(), nnz, "{}", ordering.name());
            let rep = trace_mixen_with_ordering(&g, ordering, &cfg());
            assert!(rep.llc().references > 0, "{}", ordering.name());
            assert!(rep.dram_bytes() > 0, "{}", ordering.name());
        }
    }

    #[test]
    fn reports_expose_levels() {
        let g = Dataset::Urand.generate(Scale::Tiny, 4);
        let rep = trace_pull(&g, &cfg());
        assert_eq!(rep.levels.len(), 3);
        assert!(rep.l2().references > 0);
        assert!(rep.llc().references > 0);
    }
}
