//! End-to-end tests of the CLI subcommands through their library entry
//! points (no process spawning): generate → stats → rank → bfs → convert
//! over temp files, plus error paths.

use mixen_cli::args::Args;
use mixen_cli::commands;

fn args(s: &str) -> Args {
    Args::parse(s.split_whitespace().map(String::from)).unwrap()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mixen_cli_test_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_stats_rank_bfs_pipeline() {
    let dir = tmpdir("pipeline");
    let mxg = dir.join("g.mxg");
    let scores = dir.join("scores.tsv");
    let mxg_s = mxg.to_str().unwrap();

    commands::gen::run(&args(&format!(
        "--dataset track --scale tiny --seed 5 --out {mxg_s}"
    )))
    .unwrap();
    assert!(mxg.exists());

    commands::stats::run(&args(mxg_s)).unwrap();

    commands::rank::run(&args(&format!(
        "{mxg_s} --algo pagerank --engine gpop --iters 5 --top 3 --out {}",
        scores.to_str().unwrap()
    )))
    .unwrap();
    let body = std::fs::read_to_string(&scores).unwrap();
    assert!(body.starts_with("# node\tpagerank"));
    // One line per node plus header.
    let g = mixen_graph::io::load(&mxg).unwrap();
    assert_eq!(body.lines().count(), g.n() + 1);

    commands::bfs::run(&args(&format!("{mxg_s} --engine ligra"))).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_roundtrip_is_identical() {
    let dir = tmpdir("convert");
    let mxg = dir.join("a.mxg");
    let txt = dir.join("a.txt");
    let back = dir.join("b.mxg");
    commands::gen::run(&args(&format!(
        "--dataset rmat --scale tiny --seed 2 --out {}",
        mxg.to_str().unwrap()
    )))
    .unwrap();
    commands::convert::run(&args(&format!(
        "{} {}",
        mxg.to_str().unwrap(),
        txt.to_str().unwrap()
    )))
    .unwrap();
    commands::convert::run(&args(&format!(
        "{} {}",
        txt.to_str().unwrap(),
        back.to_str().unwrap()
    )))
    .unwrap();
    let a = std::fs::read(&mxg).unwrap();
    let b = std::fs::read(&back).unwrap();
    assert_eq!(a, b, "binary -> text -> binary must be lossless");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_algo_and_engine_combination_runs() {
    let dir = tmpdir("matrix");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset wiki --scale tiny --seed 8 --out {mxg_s}"
    )))
    .unwrap();
    for algo in ["indegree", "pagerank", "hits", "salsa", "cf"] {
        for engine in ["mixen", "gpop", "ligra", "polymer", "graphmat"] {
            commands::rank::run(&args(&format!(
                "{mxg_s} --algo {algo} --engine {engine} --iters 2 --top 1"
            )))
            .unwrap_or_else(|e| panic!("{algo}/{engine}: {e}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_paths_are_reported() {
    assert!(commands::gen::run(&args("--dataset nope --out /tmp/x.mxg")).is_err());
    assert!(commands::gen::run(&args("--dataset wiki")).is_err(), "--out required");
    assert!(commands::stats::run(&args("/nonexistent/file.mxg")).is_err());
    assert!(commands::rank::run(&args("/nonexistent.mxg")).is_err());
    assert!(commands::convert::run(&args("only_one_arg")).is_err());

    let dir = tmpdir("errors");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset urand --scale tiny --out {mxg_s}"
    )))
    .unwrap();
    assert!(commands::rank::run(&args(&format!("{mxg_s} --algo nope"))).is_err());
    assert!(commands::rank::run(&args(&format!("{mxg_s} --engine nope"))).is_err());
    assert!(commands::bfs::run(&args(&format!("{mxg_s} --root 999999999"))).is_err());
    assert!(
        commands::rank::run(&args(&format!("{mxg_s} --bogus 1"))).is_err(),
        "unknown flags must be rejected"
    );
    std::fs::remove_dir_all(&dir).ok();
}
