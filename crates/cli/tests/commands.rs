//! End-to-end tests of the CLI subcommands through their library entry
//! points (no process spawning): generate → stats → rank → bfs → convert
//! over temp files, plus error paths. A final section spawns the real
//! `mixen` binary to pin down the exit-code contract (0/1/2).

use mixen_cli::args::Args;
use mixen_cli::commands;
use mixen_cli::error::CliError;

fn args(s: &str) -> Args {
    Args::parse(s.split_whitespace().map(String::from)).unwrap()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mixen_cli_test_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_stats_rank_bfs_pipeline() {
    let dir = tmpdir("pipeline");
    let mxg = dir.join("g.mxg");
    let scores = dir.join("scores.tsv");
    let mxg_s = mxg.to_str().unwrap();

    commands::gen::run(&args(&format!(
        "--dataset track --scale tiny --seed 5 --out {mxg_s}"
    )))
    .unwrap();
    assert!(mxg.exists());

    commands::stats::run(&args(mxg_s)).unwrap();

    commands::rank::run(&args(&format!(
        "{mxg_s} --algo pagerank --engine gpop --iters 5 --top 3 --out {}",
        scores.to_str().unwrap()
    )))
    .unwrap();
    let body = std::fs::read_to_string(&scores).unwrap();
    assert!(body.starts_with("# node\tpagerank"));
    // One line per node plus header.
    let g = mixen_graph::io::load(&mxg).unwrap();
    assert_eq!(body.lines().count(), g.n() + 1);

    commands::bfs::run(&args(&format!("{mxg_s} --engine ligra"))).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_roundtrip_is_identical() {
    let dir = tmpdir("convert");
    let mxg = dir.join("a.mxg");
    let txt = dir.join("a.txt");
    let back = dir.join("b.mxg");
    commands::gen::run(&args(&format!(
        "--dataset rmat --scale tiny --seed 2 --out {}",
        mxg.to_str().unwrap()
    )))
    .unwrap();
    commands::convert::run(&args(&format!(
        "{} {}",
        mxg.to_str().unwrap(),
        txt.to_str().unwrap()
    )))
    .unwrap();
    commands::convert::run(&args(&format!(
        "{} {}",
        txt.to_str().unwrap(),
        back.to_str().unwrap()
    )))
    .unwrap();
    let a = std::fs::read(&mxg).unwrap();
    let b = std::fs::read(&back).unwrap();
    assert_eq!(a, b, "binary -> text -> binary must be lossless");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_algo_and_engine_combination_runs() {
    let dir = tmpdir("matrix");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset wiki --scale tiny --seed 8 --out {mxg_s}"
    )))
    .unwrap();
    for algo in ["indegree", "pagerank", "hits", "salsa", "cf"] {
        for engine in ["mixen", "gpop", "ligra", "polymer", "graphmat"] {
            commands::rank::run(&args(&format!(
                "{mxg_s} --algo {algo} --engine {engine} --iters 2 --top 1"
            )))
            .unwrap_or_else(|e| panic!("{algo}/{engine}: {e}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_paths_are_reported() {
    assert!(commands::gen::run(&args("--dataset nope --out /tmp/x.mxg")).is_err());
    assert!(
        commands::gen::run(&args("--dataset wiki")).is_err(),
        "--out required"
    );
    assert!(commands::stats::run(&args("/nonexistent/file.mxg")).is_err());
    assert!(commands::rank::run(&args("/nonexistent.mxg")).is_err());
    assert!(commands::convert::run(&args("only_one_arg")).is_err());

    let dir = tmpdir("errors");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset urand --scale tiny --out {mxg_s}"
    )))
    .unwrap();
    assert!(commands::rank::run(&args(&format!("{mxg_s} --algo nope"))).is_err());
    assert!(commands::rank::run(&args(&format!("{mxg_s} --engine nope"))).is_err());
    assert!(commands::bfs::run(&args(&format!("{mxg_s} --root 999999999"))).is_err());
    assert!(
        commands::rank::run(&args(&format!("{mxg_s} --bogus 1"))).is_err(),
        "unknown flags must be rejected"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_pick_the_right_channel() {
    // Bad command lines are usage errors; broken inputs are runtime errors.
    assert!(matches!(
        commands::gen::run(&args("--dataset nope --out /tmp/x.mxg")),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        commands::convert::run(&args("only_one_arg")),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        commands::stats::run(&args("/nonexistent/file.mxg")),
        Err(CliError::Runtime(_))
    ));

    let dir = tmpdir("channels");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset urand --scale tiny --out {mxg_s}"
    )))
    .unwrap();
    assert!(matches!(
        commands::rank::run(&args(&format!("{mxg_s} --algo nope"))),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        commands::rank::run(&args(&format!("{mxg_s} --supervised true --algo hits"))),
        Err(CliError::Usage(_))
    ));
    // A corrupt graph file is a runtime error.
    std::fs::write(&mxg, b"MXG2 this is not a graph").unwrap();
    assert!(matches!(
        commands::stats::run(&args(mxg_s)),
        Err(CliError::Runtime(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervised_rank_matches_plain_rank() {
    let dir = tmpdir("supervised");
    let mxg = dir.join("g.mxg");
    let plain = dir.join("plain.tsv");
    let sup = dir.join("sup.tsv");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset wiki --scale tiny --seed 3 --out {mxg_s}"
    )))
    .unwrap();
    commands::rank::run(&args(&format!(
        "{mxg_s} --algo pagerank --iters 5 --out {}",
        plain.to_str().unwrap()
    )))
    .unwrap();
    commands::rank::run(&args(&format!(
        "{mxg_s} --algo pagerank --iters 5 --supervised true --out {}",
        sup.to_str().unwrap()
    )))
    .unwrap();
    let a = std::fs::read_to_string(&plain).unwrap();
    let b = std::fs::read_to_string(&sup).unwrap();
    assert_eq!(a, b, "supervision must not change the scores");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_json_sidecar_is_written_and_valid() {
    let dir = tmpdir("metrics_json");
    let mxg = dir.join("g.mxg");
    let json = dir.join("report.json");
    let mxg_s = mxg.to_str().unwrap();
    let json_s = json.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset wiki --scale tiny --seed 3 --out {mxg_s}"
    )))
    .unwrap();

    // Without --supervised the flag is a usage error.
    assert!(matches!(
        commands::rank::run(&args(&format!("{mxg_s} --metrics-json {json_s}"))),
        Err(CliError::Usage(_))
    ));
    assert!(!json.exists());

    commands::rank::run(&args(&format!(
        "{mxg_s} --algo pagerank --iters 5 --supervised true --metrics-json {json_s}"
    )))
    .unwrap();
    let body = std::fs::read_to_string(&json).unwrap();
    let report = mixen_core::Json::parse(&body).expect("sidecar must be valid JSON");
    assert_eq!(report.get("engine").unwrap().as_str(), Some("mixen"));
    assert_eq!(report.get("iterations").unwrap().as_u64(), Some(5));
    assert!(report.get("residual").unwrap().as_f64().is_some());
    let phases = report.get("phases").unwrap();
    assert!(phases.get("pre_seconds").unwrap().as_f64().is_some());
    let counters = report.get("counters").unwrap();
    assert!(counters.get("edges_scattered").unwrap().as_u64().unwrap() > 0);
    assert!(matches!(
        report.get("degradations"),
        Some(mixen_core::Json::Arr(_))
    ));

    // A faulted supervised run still writes the report.
    let fault_json = dir.join("fault.json");
    let fault_json_s = fault_json.to_str().unwrap();
    let r = commands::rank::run(&args(&format!(
        "{mxg_s} --algo pagerank --damping NaN --iters 3 --supervised true --metrics-json {fault_json_s}"
    )));
    assert!(matches!(r, Err(CliError::Runtime(_))));
    let body = std::fs::read_to_string(&fault_json).unwrap();
    let report = mixen_core::Json::parse(&body).unwrap();
    assert!(report.get("counters").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nan_damping_is_a_runtime_error_not_a_panic() {
    let dir = tmpdir("nan_rank");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    commands::gen::run(&args(&format!(
        "--dataset urand --scale tiny --out {mxg_s}"
    )))
    .unwrap();
    for extra in ["--supervised true", ""] {
        let r = commands::rank::run(&args(&format!(
            "{mxg_s} --algo pagerank --damping NaN --iters 3 {extra}"
        )));
        assert!(
            matches!(r, Err(CliError::Runtime(_))),
            "NaN damping ({extra:?}) must be a runtime error, got {r:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Exit-code contract of the real binary.
// ---------------------------------------------------------------------------

fn run_bin(cli_args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_mixen"))
        .args(cli_args)
        .output()
        .expect("failed to spawn mixen binary")
}

#[test]
fn binary_exit_codes_follow_the_contract() {
    let dir = tmpdir("exit_codes");
    let good = dir.join("good.mxg");
    let good_s = good.to_str().unwrap();

    // 0: success and help.
    assert_eq!(
        run_bin(&[
            "gen",
            "--dataset",
            "road",
            "--scale",
            "tiny",
            "--out",
            good_s
        ])
        .status
        .code(),
        Some(0)
    );
    assert_eq!(run_bin(&["stats", good_s]).status.code(), Some(0));
    assert_eq!(run_bin(&["help"]).status.code(), Some(0));

    // 2: usage errors.
    assert_eq!(run_bin(&[]).status.code(), Some(2), "no subcommand");
    assert_eq!(
        run_bin(&["frobnicate"]).status.code(),
        Some(2),
        "unknown subcommand"
    );
    assert_eq!(
        run_bin(&["rank", good_s, "--algo", "nope"]).status.code(),
        Some(2),
        "unknown algorithm"
    );
    assert_eq!(
        run_bin(&["stats", good_s, "--bogus", "1"]).status.code(),
        Some(2),
        "unknown flag"
    );

    // 1: runtime errors.
    assert_eq!(
        run_bin(&["stats", "/nonexistent/graph.mxg"]).status.code(),
        Some(1),
        "missing file"
    );
    let corrupt = dir.join("corrupt.mxg");
    let mut bytes = std::fs::read(&good).unwrap();
    let flip = bytes.len() - 3;
    bytes[flip] ^= 0x40;
    std::fs::write(&corrupt, &bytes).unwrap();
    let out = run_bin(&["stats", corrupt.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "corrupt graph");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");

    let truncated = dir.join("truncated.mxg");
    std::fs::write(&truncated, &std::fs::read(&good).unwrap()[..21]).unwrap();
    assert_eq!(
        run_bin(&["rank", truncated.to_str().unwrap()])
            .status
            .code(),
        Some(1),
        "truncated graph"
    );

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Durability: crash/recovery through the real binary.
// ---------------------------------------------------------------------------

/// Kill-at-checkpoint recovery: the binary is crashed (hard process exit,
/// code 86) right after its first snapshot, resumed with `--resume true`,
/// and the recovered scores must be byte-identical to an uninterrupted run
/// at the same thread count.
#[test]
fn crashed_run_resumes_bit_identical() {
    let dir = tmpdir("crash_recovery");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    let ckpt = dir.join("run.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let ref_tsv = dir.join("ref.tsv");
    let res_tsv = dir.join("res.tsv");
    assert_eq!(
        run_bin(&[
            "gen",
            "--dataset",
            "wiki",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out",
            mxg_s
        ])
        .status
        .code(),
        Some(0)
    );

    // Uninterrupted reference at 2 threads.
    let common = [
        "rank",
        mxg_s,
        "--supervised",
        "true",
        "--iters",
        "12",
        "--threads",
        "2",
    ];
    let out = run_bin(&[&common[..], &["--out", ref_tsv.to_str().unwrap()]].concat());
    assert_eq!(out.status.code(), Some(0));

    // Interrupted run: crash right after the first snapshot (iteration 4).
    let out = run_bin(
        &[
            &common[..],
            &[
                "--checkpoint",
                ckpt_s,
                "--checkpoint-every",
                "4",
                "--exit-after-checkpoints",
                "1",
            ],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(86), "injected crash exit");
    assert!(ckpt.exists(), "snapshot must survive the crash");

    // Resume to completion; scores must match the reference byte-for-byte.
    let json = dir.join("recovery.json");
    let out = run_bin(
        &[
            &common[..],
            &[
                "--checkpoint",
                ckpt_s,
                "--resume",
                "true",
                "--out",
                res_tsv.to_str().unwrap(),
                "--metrics-json",
                json.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = std::fs::read(&ref_tsv).unwrap();
    let b = std::fs::read(&res_tsv).unwrap();
    assert_eq!(a, b, "resumed scores must be bit-identical");

    // The sidecar records the recovery.
    let report = mixen_core::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let counters = report.get("counters").unwrap();
    assert_eq!(counters.get("resumes").unwrap().as_u64(), Some(1));
    assert!(
        counters
            .get("checkpoints_written")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    assert!(report.get("provenance").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

/// Deadline contract: `--deadline-ms 0` exits with code 3 (not 1), writes a
/// final checkpoint, and the run resumes cleanly afterwards.
#[test]
fn deadline_exit_is_code_3_and_resumable() {
    let dir = tmpdir("deadline_exit");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    let ckpt = dir.join("run.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    assert_eq!(
        run_bin(&[
            "gen",
            "--dataset",
            "road",
            "--scale",
            "tiny",
            "--out",
            mxg_s
        ])
        .status
        .code(),
        Some(0)
    );
    let out = run_bin(&[
        "rank",
        mxg_s,
        "--supervised",
        "true",
        "--iters",
        "8",
        "--deadline-ms",
        "0",
        "--checkpoint",
        ckpt_s,
    ]);
    assert_eq!(out.status.code(), Some(3), "deadline exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "stderr: {stderr}");
    assert!(ckpt.exists(), "deadline stop must leave a snapshot");
    let out = run_bin(&[
        "rank",
        mxg_s,
        "--supervised",
        "true",
        "--iters",
        "8",
        "--checkpoint",
        ckpt_s,
        "--resume",
        "true",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Supervised-only flags without `--supervised true` are usage errors.
#[test]
fn durability_flags_require_supervised() {
    let dir = tmpdir("flags_supervised");
    let mxg = dir.join("g.mxg");
    let mxg_s = mxg.to_str().unwrap();
    assert_eq!(
        run_bin(&[
            "gen",
            "--dataset",
            "road",
            "--scale",
            "tiny",
            "--out",
            mxg_s
        ])
        .status
        .code(),
        Some(0)
    );
    for flags in [
        &["--checkpoint", "/tmp/x.ckpt"][..],
        &["--deadline-ms", "100"][..],
        &["--resume", "true"][..],
    ] {
        let out = run_bin(&[&["rank", mxg_s][..], flags].concat());
        assert_eq!(out.status.code(), Some(2), "flags {flags:?}");
    }
    // --resume without --checkpoint is a usage error even when supervised.
    let out = run_bin(&["rank", mxg_s, "--supervised", "true", "--resume", "true"]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
