//! Pins the strict unknown-flag contract: *every* subcommand rejects a
//! flag it does not know with exit code 2 and an error naming the flag —
//! before touching any input file, so a typo can never silently run with
//! the option dropped.

use std::process::Command;

fn run_bin(cli_args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mixen"))
        .args(cli_args)
        .output()
        .expect("failed to spawn mixen binary")
}

const SUBCOMMANDS: &[&str] = &["gen", "convert", "stats", "rank", "bfs", "serve"];

#[test]
fn every_subcommand_rejects_unknown_flags_by_name() {
    for sub in SUBCOMMANDS {
        // The graph path deliberately does not exist: the flag check must
        // fire first, so the error is the named flag — not a missing file.
        let out = run_bin(&[sub, "does-not-exist.mxg", "--bogus-flag", "1"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{sub}: expected usage exit, got {:?}",
            out.status.code()
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error: unknown flag --bogus-flag"),
            "{sub}: stderr was:\n{stderr}"
        );
    }
}

#[test]
fn close_typos_get_a_did_you_mean_hint() {
    // The motivating bug: `--dedline-ms` used to run the rank without any
    // deadline at all.
    let out = run_bin(&["rank", "does-not-exist.mxg", "--dedline-ms", "500"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: unknown flag --dedline-ms (did you mean --deadline-ms?)"),
        "stderr was:\n{stderr}"
    );

    let out = run_bin(&["serve", "does-not-exist.mxg", "--worker", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: unknown flag --worker (did you mean --workers?)"),
        "stderr was:\n{stderr}"
    );
}

#[test]
fn known_flags_still_pass_the_gate() {
    // Same commands with the flag spelled right get past the parser (and
    // then fail on the missing file with a *runtime* exit, code 1).
    let out = run_bin(&[
        "rank",
        "does-not-exist.mxg",
        "--supervised",
        "true",
        "--deadline-ms",
        "500",
    ]);
    assert_eq!(out.status.code(), Some(1), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read graph"),
        "stderr was:\n{stderr}"
    );
}
