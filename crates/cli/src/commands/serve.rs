//! `mixen serve` — run the online ranking service on a graph.
//!
//! Loads the graph, starts `mixen-serve` (resident engine, atomic rank
//! snapshots, admission control), prints the bound address, and blocks
//! until a drain: SIGINT/SIGTERM or `POST /admin/shutdown`. In-flight
//! requests are answered before exit; a clean drain exits 0.
//!
//! `--addr host:0` picks an ephemeral port — combine with `--port-file` so
//! scripts can discover it (the file holds the resolved `host:port`).

use std::sync::Arc;

use crate::args::Args;
use crate::commands::load_graph;
use crate::error::CliError;
use mixen_serve::{signal, ServeOpts, Server};

/// Flags this subcommand accepts; anything else is a usage error.
pub const FLAGS: &[&str] = &[
    "addr",
    "workers",
    "queue-cap",
    "batch-cap",
    "deadline-ms",
    "refresh-every",
    "iters",
    "tol",
    "damping",
    "port-file",
    "threads",
    "affinity",
    "reorder",
];

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(FLAGS)?;
    let path = args.positional(0, "graph.mxg")?;
    let reorder = crate::commands::parse_reorder(args)?;
    let g = load_graph(path)?;
    let opts = ServeOpts {
        addr: args.opt("addr").unwrap_or("127.0.0.1:7464").to_string(),
        workers: args.opt_or("workers", 4)?,
        queue_cap: args.opt_or("queue-cap", 128)?,
        batch_cap: args.opt_or("batch-cap", 16)?,
        default_deadline_ms: args.opt_or("deadline-ms", 2_000)?,
        refresh_iters: args.opt_or("refresh-every", 4)?,
        max_iters: args.opt_or("iters", 200)?,
        tol: args.opt_or("tol", 1e-7)?,
        damping: args.opt_or("damping", 0.85)?,
        honor_signals: true,
        // `auto` resolves against the loaded graph, so the resident engine
        // preprocesses with the model-selected relabel policy.
        mixen: match reorder {
            Some(choice) => mixen_core::MixenOpts {
                ordering: choice.resolve(&g),
                ..mixen_core::MixenOpts::default()
            },
            None => mixen_core::MixenOpts::default(),
        },
    };
    if opts.workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }
    eprintln!(
        "preparing resident engine over {path}: n = {}, m = {}...",
        g.n(),
        g.m()
    );

    signal::install_handlers();
    let handle = Server::start(Arc::new(g), opts)
        .map_err(|e| CliError::runtime(format!("cannot start server: {e}")))?;
    let addr = handle.addr();
    if let Some(port_file) = args.opt("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))
            .map_err(|e| CliError::runtime(format!("cannot write '{port_file}': {e}")))?;
    }
    println!("serving on http://{addr} (SIGINT/SIGTERM to drain)");

    let (served, rejected) = handle.join_and_report();
    println!("drained cleanly: {served} requests served, {rejected} rejected");
    Ok(())
}
