//! `mixen stats` — structural report for a graph: the paper's Table 1/2
//! attributes, degree-distribution skew and component structure.

use crate::args::Args;
use crate::commands::load_graph;
use crate::error::CliError;
use mixen_graph::{weakly_connected_components, DegreeDistribution, Direction, StructuralStats};

/// Flags this subcommand accepts; anything else is a usage error.
pub const FLAGS: &[&str] = &["threads", "affinity"];

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(FLAGS)?;
    let path = args.positional(0, "graph.mxg")?;
    let g = load_graph(path)?;

    let s = StructuralStats::of(&g);
    println!("{path}");
    println!("  nodes            {:>12}", s.n);
    println!("  edges            {:>12}", s.m);
    println!("  avg degree       {:>12.2}", g.avg_degree());
    println!("  symmetric        {:>12}", s.symmetric);
    println!("  skewed           {:>12}", s.is_skewed());
    println!();
    println!("connectivity classes (the paper's Table 1):");
    println!(
        "  regular          {:>11.1}%   alpha = {:.3}",
        s.frac_regular * 100.0,
        s.alpha
    );
    println!("  seed (out-only)  {:>11.1}%", s.frac_seed * 100.0);
    println!("  sink (in-only)   {:>11.1}%", s.frac_sink * 100.0);
    println!("  isolated         {:>11.1}%", s.frac_isolated * 100.0);
    println!(
        "  hubs             {:>11.1}%   owning {:.1}% of in-edges",
        s.v_hub * 100.0,
        s.e_hub * 100.0
    );
    println!("  beta (reg-reg edges) {:>8.3}", s.beta);
    println!();

    let din = DegreeDistribution::of(&g, Direction::In, g.avg_degree().ceil() as u32);
    println!("in-degree distribution:");
    println!("  max              {:>12}", din.max);
    println!("  gini             {:>12.3}", din.gini);
    println!("  top 1% share     {:>11.1}%", din.top_share(0.01) * 100.0);
    if let Some(alpha) = din.powerlaw_alpha {
        println!("  power-law alpha  {:>12.2}", alpha);
    }
    print!("  log2 histogram  ");
    for (i, &c) in din.bins.iter().enumerate() {
        if c > 0 {
            print!(" 2^{i}:{c}");
        }
    }
    println!();
    println!();

    let comps = weakly_connected_components(&g);
    println!("weak components:");
    println!("  count            {:>12}", comps.count);
    println!(
        "  largest          {:>12} ({:.1}% of nodes)",
        comps.largest,
        comps.largest_fraction() * 100.0
    );
    Ok(())
}
