//! `mixen convert` — convert between the text edge-list format and the
//! binary MXG2 CSR format (either direction, inferred from extensions).
//! Legacy MXG1 inputs are read transparently.

use std::io::BufReader;

use crate::args::Args;
use crate::error::CliError;

/// Flags this subcommand accepts; anything else is a usage error.
pub const FLAGS: &[&str] = &["min-nodes", "max-nodes", "threads", "affinity"];

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(FLAGS)?;
    if args.positional_len() != 2 {
        return Err(CliError::usage(
            "convert takes exactly <input> and <output>",
        ));
    }
    let input = args.positional(0, "input")?;
    let output = args.positional(1, "output")?;
    let min_n: usize = args.opt_or("min-nodes", 0)?;
    let max_nodes: u64 = args.opt_or("max-nodes", mixen_graph::io::MAX_NODES)?;

    let g = if input.ends_with(".mxg") {
        mixen_graph::io::load(input)
            .map_err(|e| CliError::runtime(format!("cannot read '{input}': {e}")))?
    } else {
        let file = std::fs::File::open(input)
            .map_err(|e| CliError::runtime(format!("cannot open '{input}': {e}")))?;
        mixen_graph::io::read_edge_list_capped(BufReader::new(file), min_n, max_nodes)
            .map_err(|e| CliError::runtime(format!("cannot parse '{input}': {e}")))?
    };

    if output.ends_with(".mxg") {
        mixen_graph::io::save(&g, output)
            .map_err(|e| CliError::runtime(format!("cannot write '{output}': {e}")))?;
    } else {
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(output)
                .map_err(|e| CliError::runtime(format!("cannot create '{output}': {e}")))?,
        );
        mixen_graph::io::write_edge_list(&g, &mut file)
            .map_err(|e| CliError::runtime(format!("cannot write '{output}': {e}")))?;
    }
    println!(
        "converted {input} -> {output} (n = {}, m = {})",
        g.n(),
        g.m()
    );
    Ok(())
}
