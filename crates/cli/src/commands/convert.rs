//! `mixen convert` — convert between the text edge-list format and the
//! binary MXG1 CSR format (either direction, inferred from extensions).

use std::io::BufReader;

use crate::args::{ArgError, Args};

pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["min-nodes"])?;
    if args.positional_len() != 2 {
        return Err("convert takes exactly <input> and <output>".into());
    }
    let input = args.positional(0, "input")?;
    let output = args.positional(1, "output")?;
    let min_n: usize = args.opt_or("min-nodes", 0)?;

    let g = if input.ends_with(".mxg") {
        mixen_graph::io::load(input).map_err(|e| format!("cannot read '{input}': {e}"))?
    } else {
        let file =
            std::fs::File::open(input).map_err(|e| format!("cannot open '{input}': {e}"))?;
        mixen_graph::io::read_edge_list(BufReader::new(file), min_n)
            .map_err(|e| format!("cannot parse '{input}': {e}"))?
    };

    if output.ends_with(".mxg") {
        mixen_graph::io::save(&g, output).map_err(|e| format!("cannot write '{output}': {e}"))?;
    } else {
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(output).map_err(|e| format!("cannot create '{output}': {e}"))?,
        );
        mixen_graph::io::write_edge_list(&g, &mut file)
            .map_err(|e| format!("cannot write '{output}': {e}"))?;
    }
    println!("converted {input} -> {output} (n = {}, m = {})", g.n(), g.m());
    Ok(())
}
