//! `mixen bfs` — breadth-first search with reachability summary.

use crate::args::Args;
use crate::commands::{build_engine, load_graph};
use crate::error::CliError;
use mixen_algos::{bfs, default_root, summarize};

/// Flags this subcommand accepts; anything else is a usage error.
pub const FLAGS: &[&str] = &["root", "engine", "out", "threads", "affinity"];

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(FLAGS)?;
    let path = args.positional(0, "graph.mxg")?;
    let g = load_graph(path)?;
    let engine = build_engine(args.opt("engine"), None, None, &g)?;
    let root: u32 = match args.opt_parse("root")? {
        Some(r) => {
            if (r as usize) >= g.n() {
                return Err(CliError::usage(format!(
                    "--root {r} out of range (n = {})",
                    g.n()
                )));
            }
            r
        }
        None => default_root(&g),
    };

    let t = std::time::Instant::now();
    let depths = bfs(&engine, root);
    let secs = t.elapsed().as_secs_f64();
    let (reached, max_depth) = summarize(&depths);
    println!(
        "bfs from {root}: reached {reached}/{} nodes, max depth {max_depth}, {secs:.3}s",
        g.n()
    );

    if let Some(out) = args.opt("out") {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(
            std::fs::File::create(out)
                .map_err(|e| CliError::runtime(format!("cannot create '{out}': {e}")))?,
        );
        writeln!(w, "# node\tdepth").map_err(|e| CliError::runtime(e.to_string()))?;
        for (v, d) in depths.iter().enumerate() {
            writeln!(w, "{v}\t{d}").map_err(|e| CliError::runtime(e.to_string()))?;
        }
        println!("wrote depths to {out}");
    }
    Ok(())
}
