//! `mixen rank` — run a link-analysis algorithm and print/save the scores.

use std::io::Write;

use crate::args::{ArgError, Args};
use crate::commands::{build_engine, load_graph};
use mixen_algos::{
    collaborative_filtering, hits, indegree, pagerank, salsa, CfOpts, PageRankOpts,
};

pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["algo", "engine", "iters", "top", "out", "damping"])?;
    let path = args.positional(0, "graph.mxg")?;
    let g = load_graph(path)?;
    let engine = build_engine(args.opt("engine"), &g)?;
    let iters: usize = args.opt_or("iters", 20)?;
    let top: usize = args.opt_or("top", 10)?;
    let algo = args.opt("algo").unwrap_or("pagerank");

    let (label, scores): (&str, Vec<f32>) = match algo {
        "indegree" => ("indegree", indegree(&engine)),
        "pagerank" => {
            let damping: f32 = args.opt_or("damping", 0.85)?;
            (
                "pagerank",
                pagerank(
                    &g,
                    &engine,
                    PageRankOpts {
                        damping,
                        ..PageRankOpts::default()
                    },
                    iters,
                ),
            )
        }
        "hits" => {
            let rev = g.reversed();
            let engine_rev = build_engine(args.opt("engine"), &rev)?;
            ("hits-authority", hits(g.n(), &engine, &engine_rev, iters).authority)
        }
        "salsa" => {
            let rev = g.reversed();
            let engine_rev = build_engine(args.opt("engine"), &rev)?;
            ("salsa-authority", salsa(&g, &engine, &engine_rev, iters).authority)
        }
        "cf" => {
            let vecs = collaborative_filtering(
                &g,
                &engine,
                CfOpts {
                    blend: 0.5,
                    iters,
                },
            );
            // Report the L2 norm of each latent vector as a scalar score.
            (
                "cf-norm",
                vecs.iter()
                    .map(|v| v.iter().map(|x| x * x).sum::<f32>().sqrt())
                    .collect(),
            )
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };

    if let Some(out) = args.opt("out") {
        let mut w = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("cannot create '{out}': {e}"))?,
        );
        writeln!(w, "# node\t{label}").map_err(|e| e.to_string())?;
        for (v, s) in scores.iter().enumerate() {
            writeln!(w, "{v}\t{s}").map_err(|e| e.to_string())?;
        }
        println!("wrote {} scores to {out}", scores.len());
    }

    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top {top} nodes by {label}:");
    for (v, s) in ranked.iter().take(top) {
        println!("  {v:>10}  {s:.6}");
    }
    Ok(())
}
