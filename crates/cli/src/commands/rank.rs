//! `mixen rank` — run a link-analysis algorithm and print/save the scores.
//!
//! `--supervised true` (PageRank only) routes the computation through
//! [`mixen_core::RobustRunner`]: preprocessing is validated (degrading to the
//! pull baseline if it fails), values are health-checked every iteration, and
//! a NaN/Inf/divergence fault exits with code 1 and a typed error. All other
//! algorithm/engine combinations get a final non-finite score scan.
//!
//! Durability and supervision (all supervised-only):
//!
//! * `--checkpoint PATH [--checkpoint-every N]` snapshots the value vector
//!   atomically every N iterations (`CKPT1`, see `mixen_graph::ckpt`).
//! * `--resume true` warm-starts from that snapshot and continues to
//!   `--iters` total iterations; at a fixed `--threads` the scores are
//!   bit-identical to an uninterrupted run.
//! * `--deadline-ms N` stops the run at the next batch boundary once the
//!   wall-clock budget expires — exit code 3, with a final checkpoint when
//!   `--checkpoint` is set, so a scheduler can resume instead of restart.
//! * `--stall-ms N` arms the watchdog's per-batch stall budget; stalled
//!   batches walk the lane-degradation ladder instead of hanging.
//!
//! `--metrics-json PATH` (supervised only) writes the full machine-readable
//! [`mixen_core::RunReport`] — phase timings, counters, degradations — as
//! pretty-printed JSON. The file is written on failed runs too, so a faulted
//! run still leaves its diagnostic trail behind.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use crate::args::Args;
use crate::commands::{build_engine, load_graph, parse_bin_encoding, parse_reorder};
use crate::error::CliError;
use mixen_algos::{
    collaborative_filtering, hits, indegree, pagerank, pagerank_fingerprint_extra,
    pagerank_supervised, pagerank_supervised_resume, salsa, CfOpts, PageRankOpts,
};
use mixen_core::{DegradationEvent, EngineUsed, MixenOpts, RobustRunner, RunReport, RunnerOpts};
use mixen_graph::GraphError;

/// Writes a supervised run's report as pretty-printed JSON.
fn write_metrics_json(path: &str, report: &RunReport) -> Result<(), CliError> {
    std::fs::write(path, report.to_json().render_pretty())
        .map_err(|e| CliError::runtime(format!("cannot write metrics to '{path}': {e}")))?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Flags this subcommand accepts; anything else is a usage error.
pub const FLAGS: &[&str] = &[
    "algo",
    "engine",
    "iters",
    "top",
    "out",
    "damping",
    "supervised",
    "metrics-json",
    "threads",
    "affinity",
    "reorder",
    "bin-encoding",
    "checkpoint",
    "checkpoint-every",
    "resume",
    "deadline-ms",
    "stall-ms",
    "inject-stall-ms",
    "exit-after-checkpoints",
];

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(FLAGS)?;
    let path = args.positional(0, "graph.mxg")?;
    let g = load_graph(path)?;
    let iters: usize = args.opt_or("iters", 20)?;
    let top: usize = args.opt_or("top", 10)?;
    let algo = args.opt("algo").unwrap_or("pagerank");
    let supervised: bool = args.opt_or("supervised", false)?;
    let metrics_json = args.opt("metrics-json");
    if supervised && algo != "pagerank" {
        return Err(CliError::usage(format!(
            "--supervised only applies to --algo pagerank, not '{algo}'"
        )));
    }
    if supervised && args.opt("engine").is_some_and(|e| e != "mixen") {
        return Err(CliError::usage(
            "--supervised runs on the mixen engine; drop --engine",
        ));
    }
    if metrics_json.is_some() && !supervised {
        return Err(CliError::usage(
            "--metrics-json requires --supervised true (the report is produced by the supervised runner)",
        ));
    }
    let reorder = parse_reorder(args)?;
    let bin_encoding = parse_bin_encoding(args)?;
    let checkpoint = args.opt("checkpoint").map(PathBuf::from);
    let resume: bool = args.opt_or("resume", false)?;
    let deadline_ms: Option<u64> = args.opt_parse("deadline-ms")?;
    let stall_ms: Option<u64> = args.opt_parse("stall-ms")?;
    if !supervised {
        for flag in [
            "checkpoint",
            "checkpoint-every",
            "resume",
            "deadline-ms",
            "stall-ms",
            "inject-stall-ms",
            "exit-after-checkpoints",
        ] {
            if args.opt(flag).is_some() {
                return Err(CliError::usage(format!(
                    "--{flag} requires --supervised true (it is a supervised-runner feature)"
                )));
            }
        }
    }
    if resume && checkpoint.is_none() {
        return Err(CliError::usage(
            "--resume true requires --checkpoint PATH (the snapshot to warm-start from)",
        ));
    }

    let (label, scores): (&str, Vec<f32>) = if supervised {
        let damping: f32 = args.opt_or("damping", 0.85)?;
        let pr_opts = PageRankOpts {
            damping,
            ..PageRankOpts::default()
        };
        let runner_opts = RunnerOpts {
            checkpoint_path: checkpoint,
            checkpoint_every: args.opt_or("checkpoint-every", 5usize)?.max(1),
            deadline: deadline_ms.map(Duration::from_millis),
            stall_budget: stall_ms.map(Duration::from_millis),
            fingerprint_extra: pagerank_fingerprint_extra(&pr_opts),
            inject_stall: args
                .opt_parse::<u64>("inject-stall-ms")?
                .map(Duration::from_millis),
            inject_exit_after_checkpoints: args.opt_parse("exit-after-checkpoints")?,
            mixen: {
                let mut m = MixenOpts::default();
                // `auto` resolves against the loaded graph before the
                // runner builds its engine, so the fingerprint (which
                // folds the policy id) stays stable across resumes.
                if let Some(choice) = reorder {
                    m.ordering = choice.resolve(&g);
                }
                // Folded into the fingerprint too: resuming under a
                // different stream encoding changes the numerics.
                if let Some(enc) = bin_encoding {
                    m.bin_encoding = enc;
                }
                m
            },
            ..RunnerOpts::default()
        };
        let runner = RobustRunner::new(runner_opts);
        let result = if resume {
            pagerank_supervised_resume(&g, &runner, pr_opts, iters)
        } else {
            pagerank_supervised(&g, &runner, pr_opts, iters)
        };
        let (scores, report) = match result {
            Ok(ok) => ok,
            Err(f) => {
                // A faulted run still leaves its report behind.
                if let Some(path) = metrics_json {
                    write_metrics_json(path, &f.report)?;
                }
                let msg = format!(
                    "supervised pagerank failed at iteration {}: {}",
                    f.report.iterations, f.error
                );
                return Err(if matches!(f.error, GraphError::Deadline { .. }) {
                    CliError::deadline(msg)
                } else {
                    CliError::runtime(msg)
                });
            }
        };
        if let Some(path) = metrics_json {
            write_metrics_json(path, &report)?;
        }
        for d in &report.degradations {
            match d {
                DegradationEvent::LoadRetry { attempt, error } => {
                    eprintln!("warning: load retry {attempt}: {error}")
                }
                DegradationEvent::EngineFallback { reason } => {
                    eprintln!("warning: degraded to pull baseline: {reason}")
                }
                DegradationEvent::WorkerPanic { stage, message } => {
                    eprintln!("warning: worker panic at stage {stage}: {message}")
                }
                DegradationEvent::Stall {
                    elapsed_ms,
                    budget_ms,
                } => eprintln!(
                    "warning: batch stalled ({elapsed_ms} ms against a {budget_ms} ms budget)"
                ),
                DegradationEvent::LaneDegraded {
                    from_lanes,
                    to_lanes,
                    reason,
                } => eprintln!("warning: degraded {from_lanes} -> {to_lanes} lanes: {reason}"),
            }
        }
        let engine_name = match report.engine {
            EngineUsed::Mixen => "mixen",
            EngineUsed::PullFallback => "pull-fallback",
        };
        eprintln!(
            "supervised: engine {engine_name}, {} iterations, residual {:.3e}",
            report.iterations, report.residual
        );
        let ckpts = report.metrics.get("checkpoints_written");
        if ckpts > 0 || report.metrics.get("resumes") > 0 {
            eprintln!(
                "durability: {ckpts} checkpoint(s) written ({} bytes), resumed {} time(s)",
                report.metrics.get("checkpoint_bytes"),
                report.metrics.get("resumes")
            );
        }
        ("pagerank", scores)
    } else {
        let engine = build_engine(args.opt("engine"), reorder, bin_encoding, &g)?;
        match algo {
            "indegree" => ("indegree", indegree(&engine)),
            "pagerank" => {
                let damping: f32 = args.opt_or("damping", 0.85)?;
                (
                    "pagerank",
                    pagerank(
                        &g,
                        &engine,
                        PageRankOpts {
                            damping,
                            ..PageRankOpts::default()
                        },
                        iters,
                    ),
                )
            }
            "hits" => {
                let rev = g.reversed();
                let engine_rev = build_engine(args.opt("engine"), reorder, bin_encoding, &rev)?;
                (
                    "hits-authority",
                    hits(g.n(), &engine, &engine_rev, iters).authority,
                )
            }
            "salsa" => {
                let rev = g.reversed();
                let engine_rev = build_engine(args.opt("engine"), reorder, bin_encoding, &rev)?;
                (
                    "salsa-authority",
                    salsa(&g, &engine, &engine_rev, iters).authority,
                )
            }
            "cf" => {
                let vecs = collaborative_filtering(&g, &engine, CfOpts { blend: 0.5, iters });
                // Report the L2 norm of each latent vector as a scalar score.
                (
                    "cf-norm",
                    vecs.iter()
                        .map(|v| v.iter().map(|x| x * x).sum::<f32>().sqrt())
                        .collect(),
                )
            }
            other => return Err(CliError::usage(format!("unknown algorithm '{other}'"))),
        }
    };

    if let Some(bad) = scores.iter().position(|s| !s.is_finite()) {
        return Err(CliError::runtime(format!(
            "{label} produced a non-finite score at node {bad} — refusing to report"
        )));
    }

    if let Some(out) = args.opt("out") {
        let mut w = std::io::BufWriter::new(
            std::fs::File::create(out)
                .map_err(|e| CliError::runtime(format!("cannot create '{out}': {e}")))?,
        );
        writeln!(w, "# node\t{label}").map_err(|e| CliError::runtime(e.to_string()))?;
        for (v, s) in scores.iter().enumerate() {
            writeln!(w, "{v}\t{s}").map_err(|e| CliError::runtime(e.to_string()))?;
        }
        println!("wrote {} scores to {out}", scores.len());
    }

    // The shared top-k: partial selection, NaN-last — the same ordering the
    // serving layer exposes (a poisoned score can no longer claim rank 1).
    let ranked = mixen_algos::top_k(&scores, top);
    println!("top {top} nodes by {label}:");
    for &v in &ranked {
        println!("  {v:>10}  {s:.6}", s = scores[v]);
    }
    Ok(())
}
