//! `mixen rank` — run a link-analysis algorithm and print/save the scores.
//!
//! `--supervised true` (PageRank only) routes the computation through
//! [`mixen_core::RobustRunner`]: preprocessing is validated (degrading to the
//! pull baseline if it fails), values are health-checked every iteration, and
//! a NaN/Inf/divergence fault exits with code 1 and a typed error. All other
//! algorithm/engine combinations get a final non-finite score scan.
//!
//! `--metrics-json PATH` (supervised only) writes the full machine-readable
//! [`mixen_core::RunReport`] — phase timings, counters, degradations — as
//! pretty-printed JSON. The file is written on failed runs too, so a faulted
//! run still leaves its diagnostic trail behind.

use std::io::Write;

use crate::args::Args;
use crate::commands::{build_engine, load_graph};
use crate::error::CliError;
use mixen_algos::{
    collaborative_filtering, hits, indegree, pagerank, pagerank_supervised, salsa, CfOpts,
    PageRankOpts,
};
use mixen_core::{DegradationEvent, EngineUsed, RobustRunner, RunReport, RunnerOpts};

/// Writes a supervised run's report as pretty-printed JSON.
fn write_metrics_json(path: &str, report: &RunReport) -> Result<(), CliError> {
    std::fs::write(path, report.to_json().render_pretty())
        .map_err(|e| CliError::runtime(format!("cannot write metrics to '{path}': {e}")))?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(&[
        "algo",
        "engine",
        "iters",
        "top",
        "out",
        "damping",
        "supervised",
        "metrics-json",
        "threads",
    ])?;
    let path = args.positional(0, "graph.mxg")?;
    let g = load_graph(path)?;
    let iters: usize = args.opt_or("iters", 20)?;
    let top: usize = args.opt_or("top", 10)?;
    let algo = args.opt("algo").unwrap_or("pagerank");
    let supervised: bool = args.opt_or("supervised", false)?;
    let metrics_json = args.opt("metrics-json");
    if supervised && algo != "pagerank" {
        return Err(CliError::usage(format!(
            "--supervised only applies to --algo pagerank, not '{algo}'"
        )));
    }
    if supervised && args.opt("engine").is_some_and(|e| e != "mixen") {
        return Err(CliError::usage(
            "--supervised runs on the mixen engine; drop --engine",
        ));
    }
    if metrics_json.is_some() && !supervised {
        return Err(CliError::usage(
            "--metrics-json requires --supervised true (the report is produced by the supervised runner)",
        ));
    }

    let (label, scores): (&str, Vec<f32>) = if supervised {
        let damping: f32 = args.opt_or("damping", 0.85)?;
        let runner = RobustRunner::new(RunnerOpts::default());
        let (scores, report) = match pagerank_supervised(
            &g,
            &runner,
            PageRankOpts {
                damping,
                ..PageRankOpts::default()
            },
            iters,
        ) {
            Ok(ok) => ok,
            Err(f) => {
                // A faulted run still leaves its report behind.
                if let Some(path) = metrics_json {
                    write_metrics_json(path, &f.report)?;
                }
                return Err(CliError::runtime(format!(
                    "supervised pagerank failed at iteration {}: {}",
                    f.report.iterations, f.error
                )));
            }
        };
        if let Some(path) = metrics_json {
            write_metrics_json(path, &report)?;
        }
        for d in &report.degradations {
            match d {
                DegradationEvent::LoadRetry { attempt, error } => {
                    eprintln!("warning: load retry {attempt}: {error}")
                }
                DegradationEvent::EngineFallback { reason } => {
                    eprintln!("warning: degraded to pull baseline: {reason}")
                }
            }
        }
        let engine_name = match report.engine {
            EngineUsed::Mixen => "mixen",
            EngineUsed::PullFallback => "pull-fallback",
        };
        eprintln!(
            "supervised: engine {engine_name}, {} iterations, residual {:.3e}",
            report.iterations, report.residual
        );
        ("pagerank", scores)
    } else {
        let engine = build_engine(args.opt("engine"), &g)?;
        match algo {
            "indegree" => ("indegree", indegree(&engine)),
            "pagerank" => {
                let damping: f32 = args.opt_or("damping", 0.85)?;
                (
                    "pagerank",
                    pagerank(
                        &g,
                        &engine,
                        PageRankOpts {
                            damping,
                            ..PageRankOpts::default()
                        },
                        iters,
                    ),
                )
            }
            "hits" => {
                let rev = g.reversed();
                let engine_rev = build_engine(args.opt("engine"), &rev)?;
                (
                    "hits-authority",
                    hits(g.n(), &engine, &engine_rev, iters).authority,
                )
            }
            "salsa" => {
                let rev = g.reversed();
                let engine_rev = build_engine(args.opt("engine"), &rev)?;
                (
                    "salsa-authority",
                    salsa(&g, &engine, &engine_rev, iters).authority,
                )
            }
            "cf" => {
                let vecs = collaborative_filtering(&g, &engine, CfOpts { blend: 0.5, iters });
                // Report the L2 norm of each latent vector as a scalar score.
                (
                    "cf-norm",
                    vecs.iter()
                        .map(|v| v.iter().map(|x| x * x).sum::<f32>().sqrt())
                        .collect(),
                )
            }
            other => return Err(CliError::usage(format!("unknown algorithm '{other}'"))),
        }
    };

    if let Some(bad) = scores.iter().position(|s| !s.is_finite()) {
        return Err(CliError::runtime(format!(
            "{label} produced a non-finite score at node {bad} — refusing to report"
        )));
    }

    if let Some(out) = args.opt("out") {
        let mut w = std::io::BufWriter::new(
            std::fs::File::create(out)
                .map_err(|e| CliError::runtime(format!("cannot create '{out}': {e}")))?,
        );
        writeln!(w, "# node\t{label}").map_err(|e| CliError::runtime(e.to_string()))?;
        for (v, s) in scores.iter().enumerate() {
            writeln!(w, "{v}\t{s}").map_err(|e| CliError::runtime(e.to_string()))?;
        }
        println!("wrote {} scores to {out}", scores.len());
    }

    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top {top} nodes by {label}:");
    for (v, s) in ranked.iter().take(top) {
        println!("  {v:>10}  {s:.6}");
    }
    Ok(())
}
