//! Subcommand implementations.
//!
//! Every subcommand returns `Result<(), CliError>`: usage errors (bad flags,
//! unknown names) exit with code 2, runtime errors (missing files, corrupt
//! graphs, numeric faults) with code 1 — see [`crate::error`].

pub mod bfs;
pub mod convert;
pub mod gen;
pub mod rank;
pub mod serve;
pub mod stats;

use crate::error::CliError;
use mixen_algos::{AnyEngine, EngineKind};
use mixen_graph::{Dataset, Graph, Scale};

/// Loads a binary `.mxg` graph; failures are runtime errors with the typed
/// [`mixen_graph::GraphError`] rendered for the user.
pub fn load_graph(path: &str) -> Result<Graph, CliError> {
    mixen_graph::io::load(path)
        .map_err(|e| CliError::runtime(format!("cannot read graph '{path}': {e}")))
}

/// Parses `--scale`.
pub fn parse_scale(s: Option<&str>) -> Result<Scale, CliError> {
    Ok(match s.unwrap_or("tiny") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        other => return Err(CliError::usage(format!("unknown scale '{other}'"))),
    })
}

/// Parses `--dataset`.
pub fn parse_dataset(s: &str) -> Result<Dataset, CliError> {
    Dataset::from_name(s).ok_or_else(|| {
        CliError::usage(format!(
            "unknown dataset '{s}' (expected one of: {})",
            Dataset::ALL.map(|d| d.name()).join(" ")
        ))
    })
}

/// Parses `--engine` and builds it over `g`.
pub fn build_engine<'g>(s: Option<&str>, g: &'g Graph) -> Result<AnyEngine<'g>, CliError> {
    let kind = match s.unwrap_or("mixen") {
        "mixen" => EngineKind::Mixen,
        "gpop" => EngineKind::Gpop,
        "ligra" => EngineKind::Ligra,
        "polymer" => EngineKind::Polymer,
        "graphmat" => EngineKind::GraphMat,
        other => return Err(CliError::usage(format!("unknown engine '{other}'"))),
    };
    Ok(AnyEngine::build(kind, g))
}
