//! Subcommand implementations.

pub mod bfs;
pub mod convert;
pub mod gen;
pub mod rank;
pub mod stats;

use crate::args::ArgError;
use mixen_algos::{AnyEngine, EngineKind};
use mixen_graph::{Dataset, Graph, Scale};

/// Loads a binary `.mxg` graph, mapping I/O errors to user-facing text.
pub fn load_graph(path: &str) -> Result<Graph, ArgError> {
    mixen_graph::io::load(path).map_err(|e| format!("cannot read graph '{path}': {e}"))
}

/// Parses `--scale`.
pub fn parse_scale(s: Option<&str>) -> Result<Scale, ArgError> {
    Ok(match s.unwrap_or("tiny") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        other => return Err(format!("unknown scale '{other}'")),
    })
}

/// Parses `--dataset`.
pub fn parse_dataset(s: &str) -> Result<Dataset, ArgError> {
    Dataset::from_name(s).ok_or_else(|| {
        format!(
            "unknown dataset '{s}' (expected one of: {})",
            Dataset::ALL.map(|d| d.name()).join(" ")
        )
    })
}

/// Parses `--engine` and builds it over `g`.
pub fn build_engine<'g>(s: Option<&str>, g: &'g Graph) -> Result<AnyEngine<'g>, ArgError> {
    let kind = match s.unwrap_or("mixen") {
        "mixen" => EngineKind::Mixen,
        "gpop" => EngineKind::Gpop,
        "ligra" => EngineKind::Ligra,
        "polymer" => EngineKind::Polymer,
        "graphmat" => EngineKind::GraphMat,
        other => return Err(format!("unknown engine '{other}'")),
    };
    Ok(AnyEngine::build(kind, g))
}
