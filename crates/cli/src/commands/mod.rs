//! Subcommand implementations.
//!
//! Every subcommand returns `Result<(), CliError>`: usage errors (bad flags,
//! unknown names) exit with code 2, runtime errors (missing files, corrupt
//! graphs, numeric faults) with code 1 — see [`crate::error`].

pub mod bfs;
pub mod convert;
pub mod gen;
pub mod rank;
pub mod serve;
pub mod stats;

use crate::error::CliError;
use mixen_algos::{AnyEngine, EngineKind};
use mixen_core::{BinEncoding, MixenOpts, ReorderChoice};
use mixen_graph::{Dataset, Graph, Scale};

/// Loads a binary `.mxg` graph; failures are runtime errors with the typed
/// [`mixen_graph::GraphError`] rendered for the user.
pub fn load_graph(path: &str) -> Result<Graph, CliError> {
    mixen_graph::io::load(path)
        .map_err(|e| CliError::runtime(format!("cannot read graph '{path}': {e}")))
}

/// Parses `--scale`.
pub fn parse_scale(s: Option<&str>) -> Result<Scale, CliError> {
    Ok(match s.unwrap_or("tiny") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        other => return Err(CliError::usage(format!("unknown scale '{other}'"))),
    })
}

/// Parses `--dataset`.
pub fn parse_dataset(s: &str) -> Result<Dataset, CliError> {
    Dataset::from_name(s).ok_or_else(|| {
        CliError::usage(format!(
            "unknown dataset '{s}' (expected one of: {})",
            Dataset::ALL.map(|d| d.name()).join(" ")
        ))
    })
}

/// Parses `--reorder`: a regular-region relabel policy name, or `auto` to
/// let the §5 performance model pick from (α, β, hub fraction).
pub fn parse_reorder(args: &crate::args::Args) -> Result<Option<ReorderChoice>, CliError> {
    match args.opt("reorder") {
        None => Ok(None),
        Some(s) => ReorderChoice::parse(s).map(Some).ok_or_else(|| {
            CliError::usage(format!(
                "unknown reorder policy '{s}' (expected auto, original, \
                 hubs-first, by-in-degree, dbg or hubsort)"
            ))
        }),
    }
}

/// Parses `--bin-encoding`: the dynamic-bin value encoding (`f32` lossless
/// default, `f16`/`q16` compressed 16-bit streams).
pub fn parse_bin_encoding(args: &crate::args::Args) -> Result<Option<BinEncoding>, CliError> {
    match args.opt("bin-encoding") {
        None => Ok(None),
        Some(s) => BinEncoding::parse(s).map(Some).ok_or_else(|| {
            CliError::usage(format!(
                "unknown bin encoding '{s}' (expected f32, f16 or q16)"
            ))
        }),
    }
}

/// Parses `--engine` and builds it over `g`. `--reorder` and
/// `--bin-encoding` tune the Mixen engine only, so combining either with a
/// baseline engine is a usage error rather than a silent no-op.
pub fn build_engine<'g>(
    s: Option<&str>,
    reorder: Option<ReorderChoice>,
    bin_encoding: Option<BinEncoding>,
    g: &'g Graph,
) -> Result<AnyEngine<'g>, CliError> {
    let kind = match s.unwrap_or("mixen") {
        "mixen" => EngineKind::Mixen,
        "gpop" => EngineKind::Gpop,
        "ligra" => EngineKind::Ligra,
        "polymer" => EngineKind::Polymer,
        "graphmat" => EngineKind::GraphMat,
        other => return Err(CliError::usage(format!("unknown engine '{other}'"))),
    };
    if kind != EngineKind::Mixen {
        if reorder.is_some() {
            return Err(CliError::usage(
                "--reorder applies to the mixen engine only; drop --engine or --reorder",
            ));
        }
        if bin_encoding.is_some() {
            return Err(CliError::usage(
                "--bin-encoding applies to the mixen engine only; drop --engine or --bin-encoding",
            ));
        }
        return Ok(AnyEngine::build(kind, g));
    }
    if reorder.is_none() && bin_encoding.is_none() {
        return Ok(AnyEngine::build(kind, g));
    }
    let mut opts = MixenOpts::default();
    if let Some(choice) = reorder {
        opts.ordering = choice.resolve(g);
    }
    if let Some(enc) = bin_encoding {
        opts.bin_encoding = enc;
    }
    Ok(AnyEngine::build_with_mixen_opts(kind, g, opts))
}
