//! `mixen gen` — generate one of the paper's stand-in datasets to disk.

use crate::args::{ArgError, Args};
use crate::commands::{parse_dataset, parse_scale};

pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["dataset", "scale", "seed", "out"])?;
    let dataset = parse_dataset(args.opt("dataset").ok_or("--dataset is required")?)?;
    let scale = parse_scale(args.opt("scale"))?;
    let seed: u64 = args.opt_or("seed", 42)?;
    let out = args.opt("out").ok_or("--out is required")?;

    eprintln!("generating {name} at {scale:?} scale (seed {seed})...", name = dataset.name());
    let g = dataset.generate(scale, seed);
    mixen_graph::io::save(&g, out).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!("wrote {out}: n = {}, m = {} (MXG1 format)", g.n(), g.m());
    Ok(())
}
