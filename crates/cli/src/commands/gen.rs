//! `mixen gen` — generate one of the paper's stand-in datasets to disk.

use crate::args::Args;
use crate::commands::{parse_dataset, parse_scale};
use crate::error::CliError;

/// Flags this subcommand accepts; anything else is a usage error.
pub const FLAGS: &[&str] = &["dataset", "scale", "seed", "out", "threads", "affinity"];

pub fn run(args: &Args) -> Result<(), CliError> {
    args.expect_only(FLAGS)?;
    let dataset = parse_dataset(
        args.opt("dataset")
            .ok_or_else(|| CliError::usage("--dataset is required"))?,
    )?;
    let scale = parse_scale(args.opt("scale"))?;
    let seed: u64 = args.opt_or("seed", 42)?;
    let out = args
        .opt("out")
        .ok_or_else(|| CliError::usage("--out is required"))?;

    eprintln!(
        "generating {name} at {scale:?} scale (seed {seed})...",
        name = dataset.name()
    );
    let g = dataset.generate(scale, seed);
    mixen_graph::io::save(&g, out)
        .map_err(|e| CliError::runtime(format!("cannot write '{out}': {e}")))?;
    println!("wrote {out}: n = {}, m = {} (MXG2 format)", g.n(), g.m());
    Ok(())
}
