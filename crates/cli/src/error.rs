//! CLI error channel: every failure is either a *usage* error (the command
//! line itself is wrong — exit code 2) or a *runtime* error (the command was
//! well-formed but the work failed — exit code 1).
//!
//! `Result<_, ArgError>` from the flag parser converts into `Usage` via
//! `From<String>`, so `?` on argument accessors picks the right channel
//! automatically; runtime failures are wrapped explicitly.

use std::fmt;

use mixen_graph::GraphError;

/// Exit code for runtime failures (I/O, corrupt graphs, numeric faults).
pub const EXIT_RUNTIME: i32 = 1;
/// Exit code for usage errors (bad flags, unknown subcommands).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for a deadline-exceeded stop: the command was well-formed and
/// the computation healthy, but the wall-clock budget ran out. Distinct from
/// [`EXIT_RUNTIME`] so schedulers can retry/resume instead of failing the
/// job — with `--checkpoint`, progress up to the stop is on disk.
pub const EXIT_DEADLINE: i32 = 3;

/// A failed CLI invocation, tagged with which exit code it deserves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// The command line is wrong; exits with [`EXIT_USAGE`].
    Usage(String),
    /// The work itself failed; exits with [`EXIT_RUNTIME`].
    Runtime(String),
    /// The wall-clock deadline expired; exits with [`EXIT_DEADLINE`].
    Deadline(String),
}

impl CliError {
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    pub fn runtime(msg: impl Into<String>) -> Self {
        CliError::Runtime(msg.into())
    }

    pub fn deadline(msg: impl Into<String>) -> Self {
        CliError::Deadline(msg.into())
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Runtime(_) => EXIT_RUNTIME,
            CliError::Deadline(_) => EXIT_DEADLINE,
        }
    }

    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) | CliError::Deadline(m) => m,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

/// Argument-parser errors are usage errors by construction.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

/// Graph-layer errors are runtime errors (the command line was fine).
impl From<GraphError> for CliError {
    fn from(e: GraphError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        assert_eq!(CliError::usage("x").exit_code(), EXIT_USAGE);
        assert_eq!(CliError::runtime("x").exit_code(), EXIT_RUNTIME);
        assert_eq!(CliError::deadline("x").exit_code(), EXIT_DEADLINE);
        assert_ne!(EXIT_USAGE, EXIT_RUNTIME);
        assert_ne!(EXIT_DEADLINE, EXIT_RUNTIME);
        assert_ne!(EXIT_DEADLINE, EXIT_USAGE);
        assert_ne!(EXIT_USAGE, 0);
        assert_ne!(EXIT_RUNTIME, 0);
        assert_ne!(EXIT_DEADLINE, 0);
    }

    #[test]
    fn arg_errors_become_usage() {
        let e: CliError = String::from("missing <graph.mxg> argument").into();
        assert!(matches!(e, CliError::Usage(_)));
    }

    #[test]
    fn graph_errors_become_runtime() {
        let e: CliError = GraphError::Format("bad magic".into()).into();
        assert_eq!(e.exit_code(), EXIT_RUNTIME);
        assert!(e.to_string().contains("bad magic"));
    }
}
