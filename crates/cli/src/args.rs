//! Minimal flag parser shared by the subcommands.
//!
//! Supports `--flag value` pairs and bare positional arguments, with typed
//! accessors that produce readable errors. Deliberately dependency-free.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals plus `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

/// A user-facing argument error.
pub type ArgError = String;

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                if out.options.insert(key.to_string(), value).is_some() {
                    return Err(format!("--{key} given twice"));
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Number of positional arguments.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// Optional string flag.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed flag.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} has invalid value '{v}'")),
        }
    }

    /// Parsed flag with a default.
    pub fn opt_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        Ok(self.opt_parse(key)?.unwrap_or(default))
    }

    /// Rejects unknown option keys (call after reading the known ones).
    pub fn expect_only(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn mixes_positional_and_flags() {
        let a = parse("input.mxg --iters 10 output.tsv --algo pagerank").unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "input.mxg");
        assert_eq!(a.positional(1, "output").unwrap(), "output.tsv");
        assert_eq!(a.opt("algo"), Some("pagerank"));
        assert_eq!(a.opt_or("iters", 0usize).unwrap(), 10);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse("--iters").is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse("--x 1 --x 2").is_err());
    }

    #[test]
    fn invalid_typed_value() {
        let a = parse("--iters ten").unwrap();
        assert!(a.opt_or("iters", 0usize).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse("--good 1 --bad 2").unwrap();
        assert!(a.expect_only(&["good"]).is_err());
        assert!(a.expect_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn defaults_apply() {
        let a = parse("").unwrap();
        assert_eq!(a.opt_or("seed", 42u64).unwrap(), 42);
        assert!(a.positional(0, "x").is_err());
    }
}
