//! Minimal flag parser shared by the subcommands.
//!
//! Supports `--flag value` pairs and bare positional arguments, with typed
//! accessors that produce readable errors. Deliberately dependency-free.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals plus `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

/// A user-facing argument error.
pub type ArgError = String;

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                if out.options.insert(key.to_string(), value).is_some() {
                    return Err(format!("--{key} given twice"));
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Number of positional arguments.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// Optional string flag.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed flag.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} has invalid value '{v}'")),
        }
    }

    /// Parsed flag with a default.
    pub fn opt_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        Ok(self.opt_parse(key)?.unwrap_or(default))
    }

    /// Rejects unknown option keys. Every subcommand calls this *before*
    /// touching any input, so a typo like `--dedline-ms` is a hard usage
    /// error (exit 2) naming the flag — never a silently ignored option —
    /// and close misses get a did-you-mean hint.
    pub fn expect_only(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(match nearest_flag(key, known) {
                    Some(suggestion) => {
                        format!("unknown flag --{key} (did you mean --{suggestion}?)")
                    }
                    None => format!("unknown flag --{key}"),
                });
            }
        }
        Ok(())
    }
}

/// The closest known flag within edit distance 2, for typo hints.
fn nearest_flag<'a>(key: &str, known: &[&'a str]) -> Option<&'a str> {
    known
        .iter()
        .map(|&k| (edit_distance(key, k), k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, k)| k)
}

/// Levenshtein distance (single-row DP); flags are short so O(|a|·|b|) is
/// nothing.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn mixes_positional_and_flags() {
        let a = parse("input.mxg --iters 10 output.tsv --algo pagerank").unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "input.mxg");
        assert_eq!(a.positional(1, "output").unwrap(), "output.tsv");
        assert_eq!(a.opt("algo"), Some("pagerank"));
        assert_eq!(a.opt_or("iters", 0usize).unwrap(), 10);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse("--iters").is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse("--x 1 --x 2").is_err());
    }

    #[test]
    fn invalid_typed_value() {
        let a = parse("--iters ten").unwrap();
        assert!(a.opt_or("iters", 0usize).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse("--good 1 --bad 2").unwrap();
        assert!(a.expect_only(&["good"]).is_err());
        assert!(a.expect_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn unknown_flag_errors_name_the_flag_and_suggest() {
        let a = parse("--dedline-ms 5").unwrap();
        let err = a.expect_only(&["deadline-ms", "iters"]).unwrap_err();
        assert_eq!(
            err,
            "unknown flag --dedline-ms (did you mean --deadline-ms?)"
        );
        // Nothing close: no suggestion clause.
        let a = parse("--zzz 1").unwrap();
        assert_eq!(
            a.expect_only(&["deadline-ms"]).unwrap_err(),
            "unknown flag --zzz"
        );
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("dedline-ms", "deadline-ms"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("").unwrap();
        assert_eq!(a.opt_or("seed", 42u64).unwrap(), 42);
        assert!(a.positional(0, "x").is_err());
    }
}
