//! Library surface of the `mixen` CLI — exposed so the subcommands are
//! unit-testable without spawning processes.

pub mod args;
pub mod commands;
pub mod error;
