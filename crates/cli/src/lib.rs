//! Library surface of the `mixen` CLI — exposed so the subcommands are
//! unit-testable without spawning processes.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod error;
