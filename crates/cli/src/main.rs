//! `mixen` — command-line interface to the Mixen graph-analytics framework.
//!
//! ```text
//! mixen gen     --dataset wiki --scale tiny --seed 42 --out wiki.mxg
//! mixen convert edges.txt graph.mxg          # text edge list -> binary CSR
//! mixen stats   graph.mxg                    # structure, degrees, components
//! mixen rank    graph.mxg --algo pagerank --engine mixen --iters 100 --top 10
//! mixen bfs     graph.mxg --root 0 --engine mixen
//! mixen serve   graph.mxg --addr 127.0.0.1:7464   # online ranking service
//! ```
//!
//! Exit codes: 0 on success, 1 on runtime failure (missing/corrupt graph,
//! numeric fault), 2 on usage error (bad flags, unknown subcommand).

use mixen_cli::args::Args;
use mixen_cli::commands;
use mixen_cli::error::{CliError, EXIT_USAGE};

fn main() {
    let mut argv = std::env::args().skip(1);
    let sub = argv
        .next()
        .unwrap_or_else(|| usage(Some("missing subcommand")));
    let parsed = Args::parse(argv).unwrap_or_else(|e| usage(Some(&e)));
    configure_affinity(&parsed);
    configure_threads(&parsed);
    let result = match sub.as_str() {
        "gen" => commands::gen::run(&parsed),
        "convert" => commands::convert::run(&parsed),
        "stats" => commands::stats::run(&parsed),
        "rank" => commands::rank::run(&parsed),
        "bfs" => commands::bfs::run(&parsed),
        "serve" => commands::serve::run(&parsed),
        "help" | "--help" | "-h" => usage(None),
        other => usage(Some(&format!("unknown subcommand '{other}'"))),
    };
    if let Err(e) = result {
        if let CliError::Usage(msg) = &e {
            usage(Some(msg));
        }
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

/// Applies a global `--threads N` override before any subcommand touches the
/// pool. The flag beats the `MIXEN_THREADS` environment variable because it
/// is resolved first, while the global pool is still unbuilt; `--threads 1`
/// selects the exact sequential execution order.
fn configure_threads(args: &Args) {
    let threads: Option<usize> = args
        .opt_parse("threads")
        .unwrap_or_else(|e| usage(Some(&e)));
    if let Some(n) = threads {
        if n == 0 {
            usage(Some("--threads must be at least 1"));
        }
        if let Err(e) = mixen_pool::configure_global(n) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Applies a global `--affinity <off|auto|list>` override before any pool
/// worker spawns. Must run before `configure_threads`, which may create the
/// global pool — workers pin themselves at spawn. The flag beats the
/// `MIXEN_AFFINITY` environment variable (the env path is consulted only
/// when no explicit policy was configured).
fn configure_affinity(args: &Args) {
    if let Some(spec) = args.opt("affinity") {
        match mixen_pool::affinity::AffinityPolicy::parse(spec) {
            Some(policy) => {
                mixen_pool::affinity::configure(policy);
            }
            None => usage(Some(&format!(
                "bad --affinity '{spec}' (expected off, auto, or a CPU list like 0,2,4)"
            ))),
        }
    }
}

fn usage(err: Option<&str>) -> ! {
    if let Some(e) = err {
        eprintln!("error: {e}\n");
    }
    eprintln!(
        "mixen — connectivity-aware link analysis for skewed graphs\n\
         \n\
         usage: mixen <subcommand> [args]\n\
         \n\
         subcommands:\n\
         \x20 gen      --dataset <name> [--scale tiny|small|medium|large] [--seed N] --out <file.mxg>\n\
         \x20 convert  <in: .txt edge list | .mxg> <out: .mxg | .txt> [--min-nodes N] [--max-nodes N]\n\
         \x20 stats    <graph.mxg>\n\
         \x20 rank     <graph.mxg> [--algo indegree|pagerank|hits|salsa|cf] [--engine mixen|gpop|ligra|polymer|graphmat]\n\
         \x20          [--iters N] [--top K] [--out scores.tsv] [--supervised true] [--metrics-json report.json]\n\
         \x20          [--reorder auto|original|hubs-first|by-in-degree|dbg|hubsort] [--bin-encoding f32|f16|q16]\n\
         \x20          supervised-only: [--checkpoint snap.ckpt] [--checkpoint-every N] [--resume true]\n\
         \x20          [--deadline-ms N] [--stall-ms N]\n\
         \x20 bfs      <graph.mxg> [--root N] [--engine ...]\n\
         \x20 serve    <graph.mxg> [--addr host:port] [--workers N] [--queue-cap N] [--batch-cap N]\n\
         \x20          [--deadline-ms N] [--refresh-every N] [--iters N] [--damping D] [--port-file PATH]\n\
         \n\
         global flags:\n\
         \x20 --threads N   worker lanes for parallel kernels (default: MIXEN_THREADS env,\n\
         \x20               else the host's available parallelism; 1 = exact sequential order)\n\
         \x20 --affinity S  pin pool lanes to CPUs: off (default), auto (lane i -> CPU i),\n\
         \x20               or a comma list like 0,2,4 (default: MIXEN_AFFINITY env; Linux only)\n\
         \n\
         datasets: weibo track wiki pld rmat kron road urand\n\
         exit codes: 0 ok, 1 runtime failure, 2 usage error,\n\
         \x20           3 deadline exceeded (resume with --resume true from the --checkpoint snapshot)"
    );
    std::process::exit(if err.is_some() { EXIT_USAGE } else { 0 })
}
