//! The real workspace must lint clean — this is the same check CI runs via
//! `cargo run -p mixen-lint -- check`.

use mixen_lint::{check_workspace, LintConfig};
use std::path::PathBuf;

#[test]
fn workspace_has_zero_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf();
    let cfg = LintConfig::new(root);
    let findings = check_workspace(&cfg).expect("workspace walk succeeds");
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        rendered.join("\n")
    );
}
