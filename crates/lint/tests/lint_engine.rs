//! Fixture-driven tests for the lint engine: each known-bad file must
//! produce exactly the expected (rule, line) diagnostics, and the clean
//! fixture must produce none.

use mixen_lint::{check_file_source, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn lint(crate_name: &str, name: &str) -> Vec<(Rule, usize)> {
    check_file_source(crate_name, name, &fixture(name), &Rule::ALL)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn bad_safety_fixture() {
    let got = lint("mixen-graph", "bad_safety.rs");
    assert_eq!(
        got,
        vec![
            (Rule::SafetyComment, 5),
            (Rule::SafetyComment, 8),
            (Rule::SafetyComment, 12),
        ],
    );
}

#[test]
fn bad_panic_fixture() {
    let got = lint("mixen-core", "bad_panic.rs");
    assert_eq!(
        got,
        vec![(Rule::Panic, 5), (Rule::Panic, 9), (Rule::Panic, 13)],
    );
}

#[test]
fn bad_panic_fixture_out_of_scope_crate_is_clean() {
    assert!(lint("mixen-cli", "bad_panic.rs").is_empty());
}

#[test]
fn bad_truncation_fixture() {
    let got = lint("mixen-graph", "bad_truncation.rs");
    assert_eq!(got, vec![(Rule::Truncation, 7), (Rule::Truncation, 11)]);
}

#[test]
fn bad_error_type_fixture() {
    let got = lint("mixen-graph", "bad_error_type.rs");
    assert_eq!(got, vec![(Rule::ErrorType, 4)]);
}

#[test]
fn bad_ordering_fixture() {
    let got = lint("mixen-pool", "bad_ordering.rs");
    assert_eq!(got, vec![(Rule::Ordering, 8), (Rule::Ordering, 12)]);
}

#[test]
fn bad_ordering_fixture_out_of_scope_crate_is_clean() {
    assert!(lint("mixen-check", "bad_ordering.rs").is_empty());
    assert!(lint("mixen-cli", "bad_ordering.rs").is_empty());
}

#[test]
fn bad_width_fixture() {
    let got = lint("mixen-core", "bad_width.rs");
    assert_eq!(got, vec![(Rule::Width, 6), (Rule::Width, 14)]);
}

#[test]
fn bad_width_fixture_out_of_scope_crate_is_clean() {
    assert!(lint("mixen-graph", "bad_width.rs").is_empty());
    assert!(lint("mixen-pool", "bad_width.rs").is_empty());
}

#[test]
fn tricky_lexer_fixture_fires_only_outside_strings_and_comments() {
    // Raw strings (incl. a trailing backslash before the closing quote),
    // byte-string escapes, multi-line strings with `\`-newline continuations
    // and nested block comments all stay inert — and the line number of the
    // one real finding proves the scanner didn't drift past any of them.
    let got = lint("mixen-core", "tricky_lexer.rs");
    assert_eq!(got, vec![(Rule::Panic, 23)]);
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    for krate in ["mixen-graph", "mixen-core", "mixen-algos", "mixen-cli"] {
        let got = lint(krate, "clean.rs");
        assert!(got.is_empty(), "{krate}: {got:?}");
    }
}

#[test]
fn disabling_a_rule_suppresses_its_findings() {
    let enabled: Vec<Rule> = Rule::ALL
        .into_iter()
        .filter(|&r| r != Rule::Panic)
        .collect();
    let got = check_file_source(
        "mixen-core",
        "bad_panic.rs",
        &fixture("bad_panic.rs"),
        &enabled,
    );
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn diagnostics_render_file_line_and_rule_id() {
    let got = check_file_source(
        "mixen-graph",
        "crates/graph/src/x.rs",
        "fn f() { unsafe { g(); } }\n",
        &Rule::ALL,
    );
    assert_eq!(got.len(), 1);
    let rendered = got[0].to_string();
    assert!(
        rendered.starts_with("crates/graph/src/x.rs:1: [safety-comment]"),
        "{rendered}"
    );
}

#[test]
fn rule_ids_round_trip() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
    }
    assert_eq!(Rule::from_id("nonsense"), None);
}
