// Fixture: unchecked indexing without the `// width:` justification.
// Expected findings under mixen-core: width at lines 6 and 14.

pub fn sum2(xs: &[f32]) -> f32 {
    // SAFETY: caller guarantees xs.len() >= 2.
    let a = unsafe { *xs.get_unchecked(0) };
    a
}

pub fn bump(xs: &mut [f32]) {
    // SAFETY: caller guarantees xs is non-empty.
    // width:
    // (an empty why must not justify)
    unsafe { *xs.get_unchecked_mut(0) += 1.0 };
}

pub fn fine(xs: &[f32]) -> f32 {
    // SAFETY: caller guarantees xs is non-empty.
    // width: index 0 in range for any non-empty slice.
    unsafe { *xs.get_unchecked(0) }
}
