// Fixture: unsafe sites with no SAFETY justification. Expected findings:
// safety-comment at lines 5, 8 and 12.

pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}

unsafe impl Send for Holder {}

pub struct Holder(*mut u32);

pub unsafe fn poke(p: *mut u32) {
    *p = 1;
}

// SAFETY: this one is justified and must NOT be flagged.
unsafe impl Sync for Holder {}
