// Fixture: stringly-typed public error APIs. Expected finding (under
// mixen-graph/mixen-core): error-type at line 4.

pub fn validate(n: usize) -> Result<(), String> {
    if n == 0 {
        return Err("empty".to_string());
    }
    Ok(())
}

pub fn good(n: usize) -> Result<usize, GraphError> {
    Ok(n)
}

fn private_helper() -> Result<(), String> {
    Ok(()) // private: not public API, not flagged
}

pub(crate) fn internal() -> Result<(), String> {
    Ok(()) // pub(crate): not public API, not flagged
}

pub struct GraphError;
