// Fixture: exercises every rule's surface without violating any of them.
// Expected findings: none, under any crate name.

pub type NodeId = u32;

pub struct GraphError;

/// Narrowing helper mirroring the one in mixen-graph.
pub fn nid(i: usize) -> NodeId {
    debug_assert!(i <= u32::MAX as usize);
    // lint: allow(truncation) reason=single audited narrowing site
    i as NodeId
}

pub fn fallible(n: usize) -> Result<NodeId, GraphError> {
    if n > u32::MAX as usize {
        return Err(GraphError);
    }
    Ok(nid(n))
}

pub fn read_first(xs: &[u32]) -> u32 {
    // SAFETY: slice is non-empty — guarded by the caller's contract below.
    // width: index 0 is in range for any non-empty slice.
    unsafe { *xs.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_cast() {
        let xs = vec![3u32];
        assert_eq!(xs.first().copied().unwrap(), 3);
        let n = 3usize;
        assert_eq!(n as u32, 3);
    }
}
