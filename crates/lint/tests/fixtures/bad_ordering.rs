// Fixture: atomic-ordering justifications. Expected findings (under an
// atomics-audited crate name): ordering at lines 8 and 12. Everything else
// is justified, annotated, bare-allowed, out of reach, or test code.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bare_relaxed(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

pub fn bare_seqcst(c: &AtomicUsize) {
    c.store(1, Ordering::SeqCst);
}

pub fn trailing_justified(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed) // ordering: stats snapshot read at quiescence
}

pub fn block_justified(c: &AtomicUsize) {
    // ordering: the counter is only read after the join
    // publishes every increment.
    c.store(2, Ordering::Relaxed);
}

pub fn one_block_covers_the_cas_pair(c: &AtomicUsize) {
    let _ = c.compare_exchange(
        0,
        1,
        // ordering: same-slot claim; the join publishes the result.
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}

pub fn acquire_release_bare(c: &AtomicUsize) -> usize {
    c.store(3, Ordering::Release);
    c.fetch_add(1, Ordering::AcqRel);
    c.load(Ordering::Acquire)
}

pub fn allow_annotation(c: &AtomicUsize) {
    // lint: allow(ordering) reason=demonstrating the escape hatch
    c.store(4, Ordering::SeqCst);
}

pub fn other_orderings_are_not_atomics(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b) // Ordering::Less etc. never hold Relaxed/SeqCst
}

pub fn strings_are_inert() -> &'static str {
    "Ordering::SeqCst inside a string literal"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_bare_orderings() {
        let c = AtomicUsize::new(0);
        assert_eq!(c.load(Ordering::Relaxed), 0);
        c.store(1, Ordering::SeqCst);
    }
}
