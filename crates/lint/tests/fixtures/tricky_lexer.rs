// Fixture: lexer stress — raw strings, byte strings, escapes and nested
// block comments. Rule matching must not fire inside any of these regions,
// must not run past them, and line numbers must survive them: the only
// expected finding is the panic at the marked line near the end.

pub fn raw_strings() -> usize {
    let a = r"ends with a backslash \"; // the \ is content, not an escape
    let b = r"unsafe { x.unwrap() } Ordering::SeqCst";
    let c = r#"panic!("untouched") "quoted" i as u32"#;
    let d = br"as NodeId \";
    let e = b"a real \" escaped quote";
    a.len() + b.len() + c.len() + d.len() + e.len()
}

/* nested /* block /* comments */ hide unsafe { x.unwrap() } */ entirely */
pub fn multi_line_constructs() -> &'static str {
    "strings may span
     lines and continue \
     after an escaped newline"
}

pub fn the_one_real_finding(x: Option<u32>) -> u32 {
    x.unwrap()
}
