// Fixture: panic-discipline violations in library code. Expected findings
// (when checked under an id-critical crate name): panic at lines 5, 9, 13.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("needs two elements")
}

pub fn boom() {
    panic!("library code must not panic");
}

pub fn annotated(xs: &[u32]) -> u32 {
    // lint: allow(panic) reason=fixture demonstrates a justified site
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = vec![1u32];
        assert_eq!(xs.first().copied().unwrap(), 1);
    }
}
