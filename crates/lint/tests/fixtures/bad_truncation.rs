// Fixture: bare narrowing id casts. Expected findings (under an id-critical
// crate name): truncation at lines 7 and 11.

pub type NodeId = u32;

pub fn to_node(i: usize) -> NodeId {
    i as NodeId
}

pub fn to_raw(i: usize) -> u32 {
    i as u32
}

pub fn widening(i: u32) -> usize {
    i as usize // widening: not flagged
}

pub fn literal() -> u32 {
    7 as u32 // literal cast: not flagged
}

pub fn annotated(i: usize) -> u32 {
    // lint: allow(truncation) reason=i < block_side <= 2^16 by construction
    i as u32
}
