//! A line-aware token scanner for Rust source.
//!
//! This is not a full Rust lexer — it is exactly enough machinery for the
//! token-level rules in [`crate::rules`]: it separates identifiers,
//! integer-ish literals and punctuation from comments and string/char
//! literals (whose *contents* must never trigger a rule), records the line
//! of every token, and keeps per-line comment text so rules can find
//! `// SAFETY:` justifications and `// lint: allow(...)` annotations.
//!
//! Handled: line comments, nested block comments, doc comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, `br##"…"##`),
//! byte strings, char literals, and the lifetime-vs-char ambiguity
//! (`'a` vs `'a'`).

/// What kind of token was scanned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `as`, `unwrap`, …).
    Ident,
    /// Numeric literal (`0`, `0xFF`, `1_000u32`). Floats lex as several
    /// tokens (`1`, `.`, `5`), which is fine for every rule we run.
    Lit,
    /// Single punctuation character (`.`, `(`, `!`, `<`, …). String and
    /// char literals are swallowed whole and emit no token.
    Punct,
}

/// One scanned token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// Per-line facts the rules consult.
#[derive(Clone, Debug, Default)]
pub struct LineInfo {
    /// Any non-comment token starts on this line.
    pub has_code: bool,
    /// Concatenated comment text appearing on this line (both `//` and the
    /// portion of a `/* */` that crosses it).
    pub comment: String,
    /// The raw source line, trimmed.
    pub raw: String,
}

/// A scanned file: token stream plus per-line metadata.
#[derive(Clone, Debug)]
pub struct Scanned {
    pub toks: Vec<Tok>,
    /// Indexed by `line - 1`.
    pub lines: Vec<LineInfo>,
}

impl Scanned {
    /// Line info for a 1-based line number (empty default out of range).
    pub fn line(&self, line: usize) -> Option<&LineInfo> {
        line.checked_sub(1).and_then(|i| self.lines.get(i))
    }
}

/// Scans `source` into tokens and line metadata.
pub fn scan(source: &str) -> Scanned {
    let mut lines: Vec<LineInfo> = source
        .lines()
        .map(|l| LineInfo {
            raw: l.trim().to_string(),
            ..LineInfo::default()
        })
        .collect();
    if lines.is_empty() {
        lines.push(LineInfo::default());
    }
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let note_comment = |lines: &mut Vec<LineInfo>, line: usize, text: &str| {
        if let Some(info) = lines.get_mut(line - 1) {
            info.comment.push_str(text);
            info.comment.push(' ');
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                note_comment(&mut lines, line, &source[start..i]);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut seg_start = i;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        note_comment(&mut lines, line, &source[seg_start..i]);
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                note_comment(&mut lines, line, &source[seg_start..i.min(bytes.len())]);
            }
            b'"' => {
                mark_code(&mut lines, line);
                i = skip_string(bytes, i, &mut line);
            }
            b'\'' => {
                mark_code(&mut lines, line);
                i = skip_char_or_lifetime(bytes, i);
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let text = &source[start..i];
                // Raw/byte string prefixes: the "identifier" is actually the
                // start of a string literal.
                if matches!(text, "r" | "b" | "br")
                    && i < bytes.len()
                    && (bytes[i] == b'"' || (text != "b" && bytes[i] == b'#'))
                {
                    // `r"…"` / `br"…"` are raw: backslash is plain content.
                    // Only `b"…"` keeps escape processing.
                    let raw = text != "b";
                    if let Some(next) = skip_raw_or_byte_string(bytes, i, raw, &mut line) {
                        mark_code(&mut lines, line);
                        i = next;
                        continue;
                    }
                }
                mark_code(&mut lines, line);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                mark_code(&mut lines, line);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            c => {
                mark_code(&mut lines, line);
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    Scanned { toks, lines }
}

fn mark_code(lines: &mut [LineInfo], line: usize) {
    if let Some(info) = lines.get_mut(line - 1) {
        info.has_code = true;
    }
}

/// Skips a `"…"` literal starting at the opening quote; returns the index
/// past the closing quote. Tracks newlines inside multi-line strings.
fn skip_string(bytes: &[u8], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // A `\`-newline continuation still ends a source line.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw or byte string whose prefix ident has just been consumed and
/// whose next byte is `"` or `#`. `raw` says whether the prefix was `r`/`br`
/// (no escape processing) as opposed to plain `b` (escapes apply). Returns
/// the index past the closing delimiter, or `None` if this is not actually
/// a string start.
fn skip_raw_or_byte_string(
    bytes: &[u8],
    start: usize,
    raw: bool,
    line: &mut usize,
) -> Option<usize> {
    let mut i = start;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None;
    }
    i += 1;
    if hashes == 0 {
        // Plain b"…" (escapes apply) or r"…"/br"…" (no escapes at all: in
        // `r"\"` the backslash is content and the quote closes the string).
        while i < bytes.len() {
            match bytes[i] {
                b'\\' if !raw => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
                        *line += 1;
                    }
                    i += 2;
                }
                b'"' => return Some(i + 1),
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return Some(i);
    }
    // r#"…"# with `hashes` trailing hashes.
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(i)
}

/// Distinguishes `'a'` (char literal) from `'a` (lifetime) and skips either;
/// returns the index past the construct.
fn skip_char_or_lifetime(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if i >= bytes.len() {
        return i;
    }
    if bytes[i] == b'\\' {
        // Escaped char literal: '\n', '\'', '\\', '\u{…}'.
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    if bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric() {
        let mut j = i;
        while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'\'' {
            return j + 1; // 'a'
        }
        return j; // 'lifetime
    }
    // Punctuation char literal like '(' or ' '.
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] != b'\'' {
        j += 1;
    }
    (j + 1).min(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &Scanned) -> Vec<&str> {
        s.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_tokens() {
        let s = scan("let x = \"unsafe unwrap()\"; // unsafe panic!\n");
        assert_eq!(idents(&s), vec!["let", "x"]);
        assert!(s.lines[0].comment.contains("unsafe panic!"));
    }

    #[test]
    fn raw_strings_are_skipped() {
        let s = scan("let r2 = r#\"unsafe \" quote\"#; let b2 = br\"panic!\";");
        assert_eq!(idents(&s), vec!["let", "r2", "let", "b2"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(idents(&s).contains(&"str"));
        assert!(idents(&s).contains(&"char"));
    }

    #[test]
    fn escaped_char_literals() {
        let s = scan("let c = '\\''; let d = '\\n'; let e = unsafe_token;");
        assert!(idents(&s).contains(&"unsafe_token"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner unsafe */ still comment */ fn f() {}");
        assert_eq!(idents(&s), vec!["fn", "f"]);
    }

    #[test]
    fn deeply_nested_block_comments_with_decoys() {
        // Depth 3, an inner `/*/` opener lookalike and a quote that must not
        // start a string; the code after must tokenize on the right line.
        let s = scan("/* a /* b /* c */ \" */ panic! */\nfn g() {}\n");
        assert_eq!(idents(&s), vec!["fn", "g"]);
        let g = s.toks.iter().find(|t| t.text == "g").unwrap();
        assert_eq!(g.line, 2);
    }

    #[test]
    fn raw_string_trailing_backslash_does_not_escape() {
        // In `r"\"` the backslash is content and the quote closes the
        // string; the old escape handling ran past it and swallowed the
        // rest of the file.
        let s = scan("let a = r\"\\\"; let hit = x.unwrap();");
        assert!(idents(&s).contains(&"unwrap"), "{:?}", idents(&s));
        let s = scan("let d = br\"as u32 \\\"; visible_token;");
        assert!(idents(&s).contains(&"visible_token"));
    }

    #[test]
    fn byte_string_keeps_escape_processing() {
        // `b"\""` is an escaped quote inside the literal, not a closer.
        let s = scan("let e = b\"\\\" swallowed\"; tail;");
        assert!(!idents(&s).contains(&"swallowed"));
        assert!(idents(&s).contains(&"tail"));
    }

    #[test]
    fn escaped_newline_in_string_counts_the_line() {
        // A `\`-newline continuation inside a string literal still ends a
        // source line; diagnostics after it must not drift.
        let s = scan("let s = \"a\\\n b\";\nfn late() {}\n");
        let late = s.toks.iter().find(|t| t.text == "late").unwrap();
        assert_eq!(late.line, 3);
    }

    #[test]
    fn hashed_raw_string_with_backslash_before_closer() {
        let s = scan("let a = r#\"\\\"# ; after;");
        assert!(idents(&s).contains(&"after"));
    }

    #[test]
    fn lines_are_tracked() {
        let s = scan("fn a() {}\n\nfn b() {}\n");
        let b_tok = s.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
        assert!(s.lines[0].has_code);
        assert!(!s.lines[1].has_code);
    }

    #[test]
    fn numeric_literals_keep_suffix() {
        let s = scan("let x = 0xFFu32 as u32;");
        let lit = s.toks.iter().find(|t| t.kind == TokKind::Lit).unwrap();
        assert_eq!(lit.text, "0xFFu32");
    }
}
