//! The repo-specific rules `mixen-lint` enforces.
//!
//! | id | rule |
//! |----|------|
//! | `safety-comment` | every `unsafe` block/impl/fn needs a `// SAFETY:` comment directly above |
//! | `panic` | no `.unwrap()` / `.expect(…)` / `panic!` in non-test library code of the id-critical crates |
//! | `truncation` | no bare `as u32` / `as NodeId` narrowing casts on node/edge ids in non-test library code |
//! | `error-type` | public fallible fns in `mixen-graph`/`mixen-core` return `Result<_, GraphError>`, not `Result<_, String>` |
//! | `ordering` | every `Ordering::Relaxed` / `Ordering::SeqCst` outside tests carries a `// ordering: <why>` justification (`Acquire`/`Release`/`AcqRel` are allowed bare) |
//! | `width` | every `get_unchecked` / `get_unchecked_mut` in `mixen-core` library code carries a `// width: <why>` justification naming the bound that makes the index safe |
//!
//! Any finding can be suppressed at the site with an inline annotation on
//! the same or the immediately preceding line:
//!
//! ```text
//! // lint: allow(panic) reason=documented panicking constructor
//! ```
//!
//! The `reason=` clause is mandatory — an annotation without a reason does
//! not suppress anything.

use crate::lexer::{Scanned, Tok, TokKind};

/// Rule identity; `id()` is what diagnostics print and annotations name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    SafetyComment,
    Panic,
    Truncation,
    ErrorType,
    Ordering,
    Width,
}

impl Rule {
    pub const ALL: [Rule; 6] = [
        Rule::SafetyComment,
        Rule::Panic,
        Rule::Truncation,
        Rule::ErrorType,
        Rule::Ordering,
        Rule::Width,
    ];

    /// The stable string id used in diagnostics and `allow(...)` clauses.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::Panic => "panic",
            Rule::Truncation => "truncation",
            Rule::ErrorType => "error-type",
            Rule::Ordering => "ordering",
            Rule::Width => "width",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// Crates whose library code the rule applies to; `None` = every crate.
    fn crate_scope(self) -> Option<&'static [&'static str]> {
        const ID_CRATES: &[&str] = &[
            "mixen-graph",
            "mixen-core",
            "mixen-algos",
            "mixen-baselines",
        ];
        const ERR_CRATES: &[&str] = &["mixen-graph", "mixen-core"];
        const ATOMIC_CRATES: &[&str] =
            &["mixen-pool", "mixen-core", "mixen-graph", "mixen-baselines"];
        // The unchecked-indexing kernels live in mixen-core's scga module;
        // other crates are expected not to use `get_unchecked` at all (the
        // safety-comment rule still covers their `unsafe` blocks).
        const WIDTH_CRATES: &[&str] = &["mixen-core"];
        match self {
            Rule::SafetyComment => None,
            Rule::Panic | Rule::Truncation => Some(ID_CRATES),
            Rule::ErrorType => Some(ERR_CRATES),
            Rule::Ordering => Some(ATOMIC_CRATES),
            Rule::Width => Some(WIDTH_CRATES),
        }
    }
}

/// One diagnostic: rule, 1-based location, human message.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.msg
        )
    }
}

/// Runs every enabled rule over one scanned file.
///
/// `crate_name` decides rule scoping; `file` is the path printed in
/// diagnostics; `enabled` filters rules (the CLI's `--allow` mechanism).
pub fn check_file(
    crate_name: &str,
    file: &str,
    scanned: &Scanned,
    enabled: &[Rule],
) -> Vec<Finding> {
    let in_test = test_region_mask(&scanned.toks);
    let mut findings = Vec::new();
    for &rule in enabled {
        if let Some(scope) = rule.crate_scope() {
            if !scope.contains(&crate_name) {
                continue;
            }
        }
        match rule {
            Rule::SafetyComment => rule_safety_comment(file, scanned, &mut findings),
            Rule::Panic => rule_panic(file, scanned, &in_test, &mut findings),
            Rule::Truncation => rule_truncation(file, scanned, &in_test, &mut findings),
            Rule::ErrorType => rule_error_type(file, scanned, &in_test, &mut findings),
            Rule::Ordering => rule_ordering(file, scanned, &in_test, &mut findings),
            Rule::Width => rule_width(file, scanned, &in_test, &mut findings),
        }
    }
    findings.sort_by(|a, b| {
        a.line
            .cmp(&b.line)
            .then_with(|| a.rule.id().cmp(b.rule.id()))
    });
    findings
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Marks every token inside a `#[cfg(test)]`-gated item or a `#[test]` fn.
///
/// After the attribute (and any further attributes), the gated item extends
/// to the first top-level `;` or to the matching `}` of its first brace.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(toks, i) {
            let mut j = after_attr;
            // Skip any further attributes on the same item.
            while let Some(next) = skip_attr(toks, j) {
                j = next;
            }
            // The item body: up to the matching `}` of the first `{`, or a
            // top-level `;` for braceless items.
            let mut depth = 0usize;
            let mut k = j;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            for m in mask.iter_mut().take(k.min(toks.len())).skip(i) {
                *m = true;
            }
            i = k;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `toks[i..]` starts with `#[cfg(test)]` or `#[test]`, returns the index
/// just past the closing `]`.
fn match_test_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    let end = bracket_end(toks, i + 1)?;
    let inner: Vec<&str> = toks[i + 2..end].iter().map(|t| t.text.as_str()).collect();
    let is_test = inner == ["test"] || (inner.first() == Some(&"cfg") && inner.contains(&"test"));
    is_test.then_some(end + 1)
}

/// If `toks[i..]` starts with any `#[…]` attribute, returns the index past
/// its closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    bracket_end(toks, i + 1).map(|e| e + 1)
}

/// Index of the `]` matching the `[` at `open`.
fn bracket_end(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

/// True when line `line` (or the line above) carries a well-formed
/// `lint: allow(<rule>) reason=…` annotation for `rule`.
fn allowed(scanned: &Scanned, line: usize, rule: Rule) -> bool {
    let needle = format!("lint: allow({})", rule.id());
    for l in [line, line.saturating_sub(1)] {
        if l == 0 {
            continue;
        }
        if let Some(info) = scanned.line(l) {
            if let Some(pos) = info.comment.find(&needle) {
                let rest = &info.comment[pos + needle.len()..];
                if let Some(rpos) = rest.find("reason=") {
                    let reason = rest[rpos + "reason=".len()..].trim();
                    if !reason.is_empty() {
                        return true;
                    }
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R1: safety-comment
// ---------------------------------------------------------------------------

fn rule_safety_comment(file: &str, scanned: &Scanned, out: &mut Vec<Finding>) {
    for t in &scanned.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if has_safety_comment(scanned, t.line) {
            continue;
        }
        out.push(Finding {
            rule: Rule::SafetyComment,
            file: file.to_string(),
            line: t.line,
            msg: "`unsafe` without a `// SAFETY:` comment directly above".into(),
        });
    }
}

/// Accepts `SAFETY:` in a comment on the same line, or in the contiguous
/// run of comment-only / attribute-only lines immediately above.
fn has_safety_comment(scanned: &Scanned, line: usize) -> bool {
    if scanned
        .line(line)
        .is_some_and(|l| l.comment.contains("SAFETY:"))
    {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let Some(info) = scanned.line(l) else { break };
        let comment_only = !info.has_code && !info.comment.is_empty();
        let attr_only = info.raw.starts_with("#[") || info.raw.starts_with("#![");
        if comment_only {
            if info.comment.contains("SAFETY:") {
                return true;
            }
        } else if !attr_only {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R2: panic
// ---------------------------------------------------------------------------

fn rule_panic(file: &str, scanned: &Scanned, in_test: &[bool], out: &mut Vec<Finding>) {
    let toks = &scanned.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test[i] {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => prev == Some(".") && next == Some("("),
            "panic" => next == Some("!"),
            _ => false,
        };
        if hit && !allowed(scanned, t.line, Rule::Panic) {
            out.push(Finding {
                rule: Rule::Panic,
                file: file.to_string(),
                line: t.line,
                msg: format!(
                    "`{}` in library code; return a GraphError or annotate \
                     `// lint: allow(panic) reason=…`",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R3: truncation
// ---------------------------------------------------------------------------

const NARROW_ID_TYPES: &[&str] = &["u32", "NodeId"];

fn rule_truncation(file: &str, scanned: &Scanned, in_test: &[bool], out: &mut Vec<Finding>) {
    let toks = &scanned.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || in_test[i] {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NARROW_ID_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        // Literal casts (`0 as NodeId`) cannot truncate surprisingly.
        if i > 0 && toks[i - 1].kind == TokKind::Lit {
            continue;
        }
        if allowed(scanned, t.line, Rule::Truncation) {
            continue;
        }
        out.push(Finding {
            rule: Rule::Truncation,
            file: file.to_string(),
            line: t.line,
            msg: format!(
                "bare `as {}` id cast; use the debug-checked `nid()` helper or annotate \
                 `// lint: allow(truncation) reason=…`",
                target.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// R4: error-type
// ---------------------------------------------------------------------------

fn rule_error_type(file: &str, scanned: &Scanned, in_test: &[bool], out: &mut Vec<Finding>) {
    let toks = &scanned.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "pub" || in_test[i] {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` are not public API — skip them.
        if toks.get(j).is_some_and(|t| t.text == "(") {
            i += 1;
            continue;
        }
        // Allow fn modifiers between `pub` and `fn`.
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "const" | "async" | "unsafe"))
        {
            j += 1;
        }
        if toks.get(j).is_none_or(|t| t.text != "fn") {
            i += 1;
            continue;
        }
        let fn_line = toks[j].line;
        if let Some((ret_start, ret_end)) = return_type_span(toks, j) {
            if returns_string_error(&toks[ret_start..ret_end])
                && !allowed(scanned, fn_line, Rule::ErrorType)
            {
                out.push(Finding {
                    rule: Rule::ErrorType,
                    file: file.to_string(),
                    line: fn_line,
                    msg: "public fn returns `Result<_, String>`; use `GraphError` \
                          (see crates/graph/src/error.rs)"
                        .into(),
                });
            }
        }
        i = j + 1;
    }
}

/// Token span of the return type of the fn whose `fn` keyword sits at `fn_i`
/// (from past `->` to the body `{`, a `;`, or a `where` clause).
fn return_type_span(toks: &[Tok], fn_i: usize) -> Option<(usize, usize)> {
    let mut depth_angle = 0isize;
    let mut depth_paren = 0isize;
    let mut k = fn_i + 1;
    // Find `->` at top level (outside the parameter list's parens the arrow
    // can only belong to closure types, which sit inside parens or angles).
    let mut arrow = None;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" | "[" => depth_paren += 1,
            ")" | "]" => depth_paren -= 1,
            "<" => depth_angle += 1,
            ">" if k > 0 && toks[k - 1].text == "-" && depth_paren == 0 && depth_angle == 0 => {
                arrow = Some(k + 1);
                break;
            }
            ">" => depth_angle -= 1,
            "{" | ";" => return None, // no return type
            _ => {}
        }
        k += 1;
    }
    let start = arrow?;
    let mut end = start;
    depth_angle = 0;
    depth_paren = 0;
    while end < toks.len() {
        match toks[end].text.as_str() {
            "(" | "[" => depth_paren += 1,
            ")" | "]" => depth_paren -= 1,
            "<" => depth_angle += 1,
            ">" if toks[end - 1].text != "-" => depth_angle -= 1,
            "{" | ";" if depth_angle == 0 && depth_paren == 0 => break,
            "where" if depth_angle == 0 && depth_paren == 0 => break,
            _ => {}
        }
        end += 1;
    }
    Some((start, end))
}

/// True when the return-type tokens are `Result<…, String>` (with the error
/// position occupied by a bare `String`).
fn returns_string_error(ret: &[Tok]) -> bool {
    let Some(res_i) = ret.iter().position(|t| t.text == "Result") else {
        return false;
    };
    if ret.get(res_i + 1).map(|t| t.text.as_str()) != Some("<") {
        return false;
    }
    // Find the comma separating ok/err types at angle depth 1.
    let mut depth = 0isize;
    let mut paren = 0isize;
    let mut err_start = None;
    let mut k = res_i + 1;
    while k < ret.len() {
        match ret[k].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    // Closing of the Result generics.
                    if let Some(es) = err_start {
                        let err: Vec<&str> = ret[es..k].iter().map(|t| t.text.as_str()).collect();
                        return err == ["String"];
                    }
                    return false;
                }
            }
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "," if depth == 1 && paren == 0 => err_start = Some(k + 1),
            _ => {}
        }
        k += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// R5: ordering
// ---------------------------------------------------------------------------

/// `Ordering::Relaxed` and `Ordering::SeqCst` outside tests must carry a
/// `// ordering: <why>` justification — trailing on the same line, or in the
/// contiguous comment block directly above (one block may cover a contiguous
/// run of flagged lines, e.g. a `compare_exchange`'s two orderings).
/// `Acquire`/`Release`/`AcqRel` are allowed bare: they state their contract;
/// Relaxed and SeqCst hide an argument the reader can't reconstruct.
fn rule_ordering(file: &str, scanned: &Scanned, in_test: &[bool], out: &mut Vec<Finding>) {
    let toks = &scanned.toks;
    let mut sites: Vec<(usize, usize)> = Vec::new(); // (token index, line)
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !matches!(t.text.as_str(), "Relaxed" | "SeqCst")
            || in_test[i]
        {
            continue;
        }
        let via_ordering_path = i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].kind == TokKind::Ident
            && toks[i - 3].text == "Ordering";
        if via_ordering_path {
            sites.push((i, t.line));
        }
    }
    let site_lines: Vec<usize> = sites.iter().map(|&(_, l)| l).collect();
    for (i, line) in sites {
        if has_tagged_comment(scanned, line, &site_lines, "ordering:")
            || allowed(scanned, line, Rule::Ordering)
        {
            continue;
        }
        out.push(Finding {
            rule: Rule::Ordering,
            file: file.to_string(),
            line,
            msg: format!(
                "`Ordering::{}` without a `// ordering: <why>` justification \
                 (use Acquire/Release/AcqRel, or say why this is enough)",
                toks[i].text
            ),
        });
    }
}

/// True when the flagged line carries `<tag> <non-empty why>` in a
/// comment, or such a comment sits in the contiguous run of comment-only /
/// attribute-only / other-flagged lines directly above. Shared by the
/// `ordering` (`tag = "ordering:"`) and `width` (`tag = "width:"`) rules.
fn has_tagged_comment(scanned: &Scanned, line: usize, site_lines: &[usize], tag: &str) -> bool {
    let justifies = |comment: &str| {
        comment
            .find(tag)
            .is_some_and(|p| !comment[p + tag.len()..].trim().is_empty())
    };
    if scanned.line(line).is_some_and(|l| justifies(&l.comment)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let Some(info) = scanned.line(l) else { break };
        let comment_only = !info.has_code && !info.comment.is_empty();
        let attr_only = info.raw.starts_with("#[") || info.raw.starts_with("#![");
        if comment_only {
            if justifies(&info.comment) {
                return true;
            }
        } else if !attr_only && !site_lines.contains(&l) {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R6: width
// ---------------------------------------------------------------------------

/// Every `get_unchecked` / `get_unchecked_mut` call outside tests must carry
/// a `// width: <why>` justification naming the bound that makes the index
/// in range — trailing on the same line, or in the contiguous comment block
/// directly above (one block may cover a run of flagged lines, e.g. a
/// W-wide load followed by its store). The SIMD-width kernels in `scga` are
/// the intended audience: their `// SAFETY:` comments argue the pointer is
/// valid, the `width:` tag argues the *index arithmetic* stays in bounds at
/// every unroll width.
fn rule_width(file: &str, scanned: &Scanned, in_test: &[bool], out: &mut Vec<Finding>) {
    let toks = &scanned.toks;
    let mut sites: Vec<(usize, usize)> = Vec::new(); // (token index, line)
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !matches!(t.text.as_str(), "get_unchecked" | "get_unchecked_mut")
            || in_test[i]
        {
            continue;
        }
        // Only call sites: `.get_unchecked(` / `.get_unchecked_mut(`.
        let is_call = i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(");
        if is_call {
            sites.push((i, t.line));
        }
    }
    let site_lines: Vec<usize> = sites.iter().map(|&(_, l)| l).collect();
    for (i, line) in sites {
        if has_tagged_comment(scanned, line, &site_lines, "width:")
            || allowed(scanned, line, Rule::Width)
        {
            continue;
        }
        out.push(Finding {
            rule: Rule::Width,
            file: file.to_string(),
            line,
            msg: format!(
                "`{}` without a `// width: <why>` justification naming the \
                 bound that keeps the index in range",
                toks[i].text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(crate_name: &str, src: &str) -> Vec<Finding> {
        check_file(crate_name, "test.rs", &scan(src), &Rule::ALL)
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let f = run("mixen-graph", "fn f() { unsafe { g(); } }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::SafetyComment);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unsafe_with_safety_above_ok() {
        let src = "// SAFETY: the slot is exclusively owned.\nunsafe impl Send for X {}\n";
        assert!(run("mixen-graph", src).is_empty());
    }

    #[test]
    fn safety_accepted_through_attributes_and_docs() {
        let src = "/// SAFETY: caller owns the segment.\n#[allow(clippy::mut_from_ref)]\npub unsafe fn f() {}\n";
        let f = run("mixen-cachesim", src);
        assert!(f.iter().all(|x| x.rule != Rule::SafetyComment), "{f:?}");
    }

    #[test]
    fn unwrap_in_scoped_crate_flagged_and_annotation_suppresses() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(run("mixen-core", src).len(), 1);
        let ann = "fn f() {\n    // lint: allow(panic) reason=checked above\n    x.unwrap();\n}\n";
        assert!(run("mixen-core", ann).is_empty());
        // Annotation without a reason does not suppress.
        let bad = "fn f() {\n    // lint: allow(panic)\n    x.unwrap();\n}\n";
        assert_eq!(run("mixen-core", bad).len(), 1);
    }

    #[test]
    fn unwrap_outside_scope_or_in_tests_ignored() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(run("mixen-cli", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); panic!(\"boom\"); }\n}\n";
        assert!(run("mixen-core", test_src).is_empty());
    }

    #[test]
    fn unwrap_or_else_not_confused_with_unwrap() {
        assert!(run("mixen-core", "fn f() { x.unwrap_or_else(|| 3); }\n").is_empty());
        assert!(run("mixen-core", "fn f() { x.unwrap_or(3).expect_fail(); }\n").is_empty());
    }

    #[test]
    fn truncating_cast_flagged_literal_and_annotated_ok() {
        assert_eq!(
            run("mixen-graph", "fn f(n: usize) { let x = n as u32; }\n").len(),
            1
        );
        assert_eq!(
            run("mixen-graph", "fn f(n: usize) { let x = n as NodeId; }\n").len(),
            1
        );
        assert!(run("mixen-graph", "fn f() { let x = 0 as u32; }\n").is_empty());
        assert!(run("mixen-graph", "fn f(n: usize) { let x = n as usize; }\n").is_empty());
        let ann = "fn f(n: usize) {\n    let x = n as u32; // lint: allow(truncation) reason=n < 2^32 by construction\n}\n";
        assert!(run("mixen-graph", ann).is_empty());
    }

    #[test]
    fn string_error_return_flagged() {
        let f = run(
            "mixen-graph",
            "pub fn validate(&self) -> Result<(), String> { Ok(()) }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ErrorType);
        assert!(run(
            "mixen-graph",
            "pub fn v() -> Result<(), GraphError> { Ok(()) }\n"
        )
        .is_empty());
        assert!(run(
            "mixen-graph",
            "fn private() -> Result<(), String> { Ok(()) }\n"
        )
        .is_empty());
        assert!(run(
            "mixen-algos",
            "pub fn v() -> Result<(), String> { Ok(()) }\n"
        )
        .is_empty());
        // Ok-type String is fine; only the error position matters.
        assert!(run(
            "mixen-graph",
            "pub fn v() -> Result<String, GraphError> { todo() }\n"
        )
        .is_empty());
    }

    #[test]
    fn pub_crate_fns_are_not_public_api() {
        let src = "pub(crate) fn v() -> Result<(), String> { Ok(()) }\n";
        assert!(run("mixen-core", src).is_empty());
    }

    #[test]
    fn bare_relaxed_and_seqcst_flagged() {
        for kind in ["Relaxed", "SeqCst"] {
            let src = format!("fn f(c: &AtomicUsize) {{ c.load(Ordering::{kind}); }}\n");
            let f = run("mixen-pool", &src);
            assert_eq!(f.len(), 1, "{kind}: {f:?}");
            assert_eq!(f[0].rule, Rule::Ordering);
        }
    }

    #[test]
    fn acquire_release_acqrel_allowed_bare() {
        for kind in ["Acquire", "Release", "AcqRel"] {
            let src = format!("fn f(c: &AtomicUsize) {{ c.swap(1, Ordering::{kind}); }}\n");
            assert!(run("mixen-pool", &src).is_empty(), "{kind}");
        }
    }

    #[test]
    fn ordering_justifications_accepted() {
        // Trailing on the same line.
        let same = "fn f() { c.load(Ordering::Relaxed) } // ordering: stats snapshot\n";
        assert!(run("mixen-core", same).is_empty());
        // Comment block directly above.
        let above = "fn f() {\n    // ordering: published by the join below.\n    c.store(0, Ordering::Relaxed);\n}\n";
        assert!(run("mixen-core", above).is_empty());
        // One block covers a contiguous run of flagged lines (CAS pair).
        let pair = "fn f() {\n    c.compare_exchange(0, 1,\n        // ordering: same-slot claim; join publishes.\n        Ordering::Relaxed,\n        Ordering::Relaxed);\n}\n";
        assert!(
            run("mixen-core", pair).is_empty(),
            "{:?}",
            run("mixen-core", pair)
        );
        // An empty why does not justify.
        let empty = "fn f() {\n    // ordering:\n    c.store(0, Ordering::Relaxed);\n}\n";
        assert_eq!(run("mixen-core", empty).len(), 1);
        // A blank line breaks contiguity.
        let gap = "fn f() {\n    // ordering: stale.\n\n    c.store(0, Ordering::Relaxed);\n}\n";
        assert_eq!(run("mixen-core", gap).len(), 1);
    }

    #[test]
    fn ordering_allow_annotation_and_scope() {
        let ann = "fn f() {\n    // lint: allow(ordering) reason=measured hot path\n    c.load(Ordering::SeqCst);\n}\n";
        assert!(run("mixen-graph", ann).is_empty());
        // Out-of-scope crates are exempt.
        let src = "fn f() { c.load(Ordering::Relaxed); }\n";
        assert!(run("mixen-check", src).is_empty());
        assert!(run("mixen-cli", src).is_empty());
        // Test regions are exempt.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { c.load(Ordering::Relaxed); }\n}\n";
        assert!(run("mixen-pool", test_src).is_empty());
    }

    #[test]
    fn cmp_ordering_and_bare_idents_not_flagged() {
        // `Relaxed` not reached through `Ordering::` is someone else's enum.
        assert!(run("mixen-core", "fn f() { let x = Mode::Relaxed; }\n").is_empty());
        assert!(run("mixen-core", "fn f() -> Ordering { Ordering::Less }\n").is_empty());
    }

    #[test]
    fn bare_get_unchecked_flagged_in_core_only() {
        let src = "fn f(v: &[u32]) { unsafe { v.get_unchecked(0) }; }\n";
        let f = run("mixen-core", src);
        assert!(f.iter().any(|x| x.rule == Rule::Width), "{f:?}");
        // Out-of-scope crates are exempt (safety-comment still applies).
        assert!(run("mixen-graph", src)
            .iter()
            .all(|x| x.rule != Rule::Width));
        // Non-call mentions (e.g. a doc string identifier) are not flagged.
        assert!(run("mixen-core", "fn f() { let get_unchecked = 3; }\n")
            .iter()
            .all(|x| x.rule != Rule::Width));
    }

    #[test]
    fn width_justifications_accepted() {
        // Trailing on the same line.
        let same = "fn f(v: &[u32]) {\n    // SAFETY: k < len by the loop bound.\n    unsafe { v.get_unchecked(0) }; // width: k < len by the loop bound\n}\n";
        assert!(run("mixen-core", same).is_empty(), "{:?}", run("mixen-core", same));
        // Comment block directly above covers a contiguous run of sites
        // (the second `unsafe` still owes its own SAFETY comment — only
        // the width findings are checked here).
        let above = "fn f(v: &mut [u32]) {\n    // SAFETY: both indexes bounded by msg_count.\n    // width: both indexes bounded by msg_count at every unroll width.\n    unsafe { v.get_unchecked(0) };\n    unsafe { v.get_unchecked_mut(1) };\n}\n";
        let f = run("mixen-core", above);
        assert!(f.iter().all(|x| x.rule != Rule::Width), "{f:?}");
        // An empty why does not justify.
        let empty = "fn f(v: &[u32]) {\n    // SAFETY: fine.\n    // width:\n    unsafe { v.get_unchecked(0) };\n}\n";
        assert!(run("mixen-core", empty).iter().any(|x| x.rule == Rule::Width));
        // The allow annotation suppresses, with a reason.
        let ann = "fn f(v: &[u32]) {\n    // SAFETY: fine.\n    // lint: allow(width) reason=index is a constant zero\n    unsafe { v.get_unchecked(0) };\n}\n";
        assert!(run("mixen-core", ann).is_empty());
        // Test regions are exempt (the safety-comment rule still applies
        // to `unsafe` everywhere, so filter to width findings only).
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(v: &[u32]) { unsafe { v.get_unchecked(0) }; }\n}\n";
        assert!(run("mixen-core", test_src)
            .iter()
            .all(|x| x.rule != Rule::Width));
    }

    #[test]
    fn test_region_extends_to_matching_brace() {
        let src = "#[cfg(test)]\nmod tests {\n    mod inner {\n        fn f() { x.unwrap(); }\n    }\n}\nfn lib() { y.unwrap(); }\n";
        let f = run("mixen-core", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 7);
    }
}
