//! CLI for the workspace lint pass.
//!
//! ```text
//! mixen-lint check [--root PATH] [--allow RULE]...
//! ```
//!
//! Exit codes: 0 = no findings, 1 = findings reported, 2 = usage/IO error.

use mixen_lint::{check_workspace, LintConfig, Rule};
use std::process::ExitCode;

const USAGE: &str = "\
mixen-lint: repo-specific static analysis for the Mixen workspace

USAGE:
    mixen-lint check [--root PATH] [--allow RULE]...

OPTIONS:
    --root PATH    Workspace root to scan (default: current directory)
    --allow RULE   Globally disable one rule; repeatable.
                   Rules: safety-comment, panic, truncation, error-type,
                   ordering

EXIT CODES:
    0  no findings
    1  one or more findings
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return Ok(ExitCode::SUCCESS);
        }
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
        None => return Err("missing subcommand (expected `check`)".into()),
    }

    let mut cfg = LintConfig::new(".");
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                cfg.root = path.into();
            }
            "--allow" => {
                let id = it.next().ok_or("--allow requires a rule id")?;
                let rule =
                    Rule::from_id(id).ok_or_else(|| format!("unknown rule `{id}` (see --help)"))?;
                cfg.allow(rule);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let findings = check_workspace(&cfg)?;
    if findings.is_empty() {
        println!("mixen-lint: clean ({} rules)", cfg.enabled.len());
        Ok(ExitCode::SUCCESS)
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("mixen-lint: {} finding(s)", findings.len());
        Ok(ExitCode::from(1))
    }
}
