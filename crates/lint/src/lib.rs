//! `mixen-lint`: dependency-free, token-level static analysis for the Mixen
//! workspace.
//!
//! The engine walks every workspace crate's `src/` tree (plus the root
//! `src/`), scans each Rust file with [`lexer::scan`], and applies the
//! repo-specific rules in [`rules`]. See `DESIGN.md` § "Static & dynamic
//! analysis" for the rule catalogue and the allowlist annotation syntax.
//!
//! Run as `cargo run -p mixen-lint -- check`. Exit codes: 0 = clean,
//! 1 = findings, 2 = usage or I/O error.

pub mod lexer;
pub mod rules;

pub use rules::{Finding, Rule};

use std::fs;
use std::path::{Path, PathBuf};

/// What to check and which rules to run.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Workspace root (must contain `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Rules to apply; defaults to all of them.
    pub enabled: Vec<Rule>,
}

impl LintConfig {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            root: root.into(),
            enabled: Rule::ALL.to_vec(),
        }
    }

    /// Globally disable one rule (the CLI's `--allow <rule>`).
    pub fn allow(&mut self, rule: Rule) {
        self.enabled.retain(|&r| r != rule);
    }
}

/// Lints one file's source text under a given crate name. The workhorse for
/// both the workspace walk and the fixture tests.
pub fn check_file_source(
    crate_name: &str,
    file: &str,
    source: &str,
    enabled: &[Rule],
) -> Vec<Finding> {
    let scanned = lexer::scan(source);
    rules::check_file(crate_name, file, &scanned, enabled)
}

/// Walks the workspace and lints every library/binary source file.
///
/// Scans `crates/*/src/**/*.rs` (crate names read from each `Cargo.toml`)
/// and the root package's `src/**/*.rs`. Integration tests, benches,
/// examples, and the vendored `stubs/` tree are out of scope: the rules
/// govern shipping library code.
pub fn check_workspace(cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    let root = &cfg.root;
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} does not contain a Cargo.toml", root.display()));
    }
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} does not contain a crates/ directory",
            root.display()
        ));
    }

    let mut units: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = crate_name_from_manifest(&manifest)
            .ok_or_else(|| format!("no package name in {}", manifest.display()))?;
        let src = dir.join("src");
        if src.is_dir() {
            units.push((name, src));
        }
    }
    // Root package (mixen-suite).
    let root_src = root.join("src");
    if root_src.is_dir() {
        let name = crate_name_from_manifest(&root.join("Cargo.toml"))
            .unwrap_or_else(|| "mixen-suite".to_string());
        units.push((name, root_src));
    }

    let mut findings = Vec::new();
    for (name, src) in units {
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for f in files {
            let source =
                fs::read_to_string(&f).map_err(|e| format!("reading {}: {e}", f.display()))?;
            let display = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .into_owned();
            findings.extend(check_file_source(&name, &display, &source, &cfg.enabled));
        }
    }
    Ok(findings)
}

/// First `name = "…"` in the `[package]` section of a manifest.
fn crate_name_from_manifest(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
