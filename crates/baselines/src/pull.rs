//! GraphMat-style pulling-flow engine.
//!
//! Link analysis runs as dense SpMV over the CSC (Algorithm 1, lines 5–7 of
//! the paper): every destination scans its in-neighbours and reads the
//! source values — sequential writes, but up to `m` random reads of `x`,
//! which is exactly the cache behaviour the paper's Fig. 5 attributes to the
//! Pull variant. No atomics are needed.
//!
//! BFS is the dense per-level pull GraphMat's matrix formulation implies:
//! each level scans every unvisited node's in-neighbours, costing `O(m)` per
//! level — the reason GraphMat's road BFS is by far the slowest entry of
//! Table 3.

use mixen_graph::nid;
use mixen_graph::{Graph, NodeId, PropValue};
use rayon::prelude::*;

/// Dense pull engine (GraphMat-like).
pub struct PullEngine<'g> {
    g: &'g Graph,
    build_seconds: f64,
}

impl<'g> PullEngine<'g> {
    /// Wraps a graph. The CSC already exists inside [`Graph`], so "building"
    /// is free — the conversion cost GraphMat pays from an edge list is
    /// measured by the preprocessing benchmark instead.
    pub fn new(g: &'g Graph) -> Self {
        Self {
            g,
            build_seconds: 0.0,
        }
    }

    /// Framework-internal build time (zero; see [`PullEngine::new`]).
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Synchronous iterations (see crate docs for the shared contract).
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        for _ in 0..iters {
            x = self.step(&x, &apply);
        }
        x
    }

    /// Iterates until the max-norm difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        for t in 0..max_iters {
            let y = self.step(&x, &apply);
            let diff = mixen_graph::max_diff(&y, &x);
            x = y;
            if diff <= tol {
                return (x, t + 1);
            }
        }
        (x, max_iters)
    }

    fn step<V, FA>(&self, x: &[V], apply: &FA) -> Vec<V>
    where
        V: PropValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        (0..nid(self.g.n()))
            .into_par_iter()
            .map(|v| {
                let mut sum = V::identity();
                for &u in self.g.in_neighbors(v) {
                    sum.combine(x[u as usize]);
                }
                apply(v, sum)
            })
            .collect()
    }

    /// Dense per-level pull BFS.
    pub fn bfs(&self, root: NodeId) -> Vec<i32> {
        let n = self.g.n();
        let mut depth = vec![-1i32; n];
        depth[root as usize] = 0;
        let mut level = 0i32;
        loop {
            let next: Vec<(usize, i32)> = (0..n)
                .into_par_iter()
                .filter(|&v| depth[v] < 0)
                .filter_map(|v| {
                    let hit = self
                        .g
                        .in_neighbors(nid(v))
                        .iter()
                        .any(|&u| depth[u as usize] == level);
                    hit.then_some((v, level + 1))
                })
                .collect();
            if next.is_empty() {
                return depth;
            }
            for (v, d) in next {
                depth[v] = d;
            }
            level += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEngine;

    fn mixed() -> Graph {
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    #[test]
    fn matches_reference_spmv() {
        let g = mixed();
        let e = PullEngine::new(&g);
        let r = ReferenceEngine::new(&g);
        for iters in 0..4 {
            let got = e.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, iters);
            let want = r.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, iters);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-5, "iters {iters}");
            }
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = mixed();
        let e = PullEngine::new(&g);
        let r = ReferenceEngine::new(&g);
        for root in 0..g.n() as NodeId {
            assert_eq!(e.bfs(root), r.bfs(root), "root {root}");
        }
    }

    #[test]
    fn until_converges_like_reference() {
        let g = mixed();
        let e = PullEngine::new(&g);
        let r = ReferenceEngine::new(&g);
        let (a, _) = e.iterate_until::<f32, _, _>(|_| 1.0, |_, s| 0.25 * s + 0.5, 1e-8, 100);
        let (b, _) = r.iterate_until::<f32, _, _>(|_| 1.0, |_, s| 0.25 * s + 0.5, 1e-8, 100);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
