//! Weighted dense pull engine — the baseline/oracle for the weighted
//! (general-semiring) computations: `x'[v] = apply(v, ⊕ x[u] ⊗ w(u,v))`
//! over the weighted CSC, parallel over destinations.

use mixen_graph::nid;
use mixen_graph::{NodeId, PropValue, WGraph};
use rayon::prelude::*;

/// Dense weighted pull engine.
pub struct WPullEngine<'g> {
    wg: &'g WGraph,
}

impl<'g> WPullEngine<'g> {
    /// Wraps a weighted graph (no preprocessing).
    pub fn new(wg: &'g WGraph) -> Self {
        Self { wg }
    }

    /// Synchronous weighted iterations.
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.wg.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        for _ in 0..iters {
            x = self.step(&x, &apply);
        }
        x
    }

    /// Iterates until the max-norm step difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.wg.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        for t in 0..max_iters {
            let y = self.step(&x, &apply);
            let diff = mixen_graph::max_diff(&y, &x);
            x = y;
            if diff <= tol {
                return (x, t + 1);
            }
        }
        (x, max_iters)
    }

    fn step<V, FA>(&self, x: &[V], apply: &FA) -> Vec<V>
    where
        V: PropValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        (0..nid(self.wg.n()))
            .into_par_iter()
            .map(|v| {
                let mut sum = V::identity();
                for (u, w) in self.wg.in_edges(v) {
                    sum.combine(x[u as usize].scale_edge(w));
                }
                apply(v, sum)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::MinF32;

    #[test]
    fn weighted_spmv_by_hand() {
        let wg = WGraph::from_triples(3, &[(0, 1, 2.0), (2, 1, 0.5), (1, 2, 3.0)]);
        let e = WPullEngine::new(&wg);
        let y = e.iterate::<f32, _, _>(|v| (v + 1) as f32, |_, s| s, 1);
        // y[1] = 2*1 + 0.5*3 = 3.5; y[2] = 3*2 = 6.
        assert_eq!(y, vec![0.0, 3.5, 6.0]);
    }

    #[test]
    fn tropical_relaxation_finds_shortest_paths() {
        // 0 -> 1 (5), 0 -> 2 (1), 2 -> 1 (2): shortest 0->1 is 3.
        let wg = WGraph::from_triples(3, &[(0, 1, 5.0), (0, 2, 1.0), (2, 1, 2.0)]);
        let e = WPullEngine::new(&wg);
        let init = |v: NodeId| {
            if v == 0 {
                MinF32(0.0)
            } else {
                MinF32::identity()
            }
        };
        let apply = |v: NodeId, s: MinF32| {
            let mut out = s;
            out.combine(if v == 0 {
                MinF32(0.0)
            } else {
                MinF32::identity()
            });
            out
        };
        let (dist, iters) = e.iterate_until(init, apply, 0.0, 10);
        assert!(iters <= 4);
        assert_eq!(dist[1].0, 3.0);
        assert_eq!(dist[2].0, 1.0);
    }
}
