//! Baseline graph engines for the Mixen evaluation (§6.1).
//!
//! Each engine ports the *execution strategy* of one framework the paper
//! compares against — not its plumbing, which does not affect the ordering
//! the paper reports:
//!
//! | Engine | Framework | Strategy |
//! |--------|-----------|----------|
//! | [`PullEngine`] | GraphMat | dense pulling-flow SpMV over the CSC; BFS as dense per-level pull |
//! | [`PushEngine`] | Ligra | pushing flow over the CSR with atomic combines; direction-optimizing BFS |
//! | [`PartitionedEngine`] | Polymer | destination-partitioned pull (the shared-memory analogue of Polymer's NUMA-local partitions); push-only frontier BFS |
//! | [`BlockEngine`] | GPOP | whole-graph 2-D blocking with Scatter–Gather–Apply and edge compression, no connectivity filtering |
//! | [`ReferenceEngine`] | — | serial pull, the correctness oracle for every test |
//!
//! All engines implement the same synchronous semantics as
//! [`mixen_core::MixenEngine`]: `x'[v] = apply(v, Σ_{u→v} x[u])`, `iters`
//! times, plus a `bfs` driver — so any engine can be swapped under any
//! algorithm in `mixen-algos` and cross-checked value-for-value.

#![forbid(unsafe_code)]

pub mod blocked;
pub mod partitioned;
pub mod pull;
pub mod push;
pub mod reference;
pub mod wpull;

pub use blocked::BlockEngine;
pub use partitioned::PartitionedEngine;
pub use pull::PullEngine;
pub use push::PushEngine;
pub use reference::ReferenceEngine;
pub use wpull::WPullEngine;
