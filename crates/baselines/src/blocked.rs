//! GPOP-style whole-graph blocking engine.
//!
//! The same 2-D blocked Scatter–Gather data path Mixen builds on
//! ([`mixen_core::scga`]), applied to the *entire* graph with no
//! connectivity filtering, no hub relocation and no seed caching: every
//! node, including seeds, sinks and isolated nodes, flows through the bins
//! every iteration. This is the "Block" variant of the paper's Fig. 4/5 and
//! the GPOP column of Table 3 — cache-friendly, but paying the full
//! `4m + 3n` GAS traffic and the redundant zero-degree work Mixen removes.

use mixen_graph::nid;
use std::sync::atomic::{AtomicI32, Ordering};
use std::time::Instant;

use mixen_core::bins::DynamicBins;
use mixen_core::{scga, BlockedSubgraph, MixenOpts};
use mixen_graph::{Graph, NodeId, PropValue};
use rayon::prelude::*;

/// Whole-graph blocking engine (GPOP-like).
pub struct BlockEngine<'g> {
    g: &'g Graph,
    blocked: BlockedSubgraph,
    build_seconds: f64,
}

impl<'g> BlockEngine<'g> {
    /// Partitions the whole adjacency into blocks with side `block_side`
    /// nodes (GPOP's "parts").
    pub fn new(g: &'g Graph, block_side: usize) -> Self {
        let t0 = Instant::now();
        let opts = MixenOpts {
            block_side,
            cache_step: false,
            ..MixenOpts::default()
        };
        let blocked = BlockedSubgraph::new(g.out_csr(), &opts, rayon::current_num_threads());
        Self {
            g,
            blocked,
            build_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// GPOP with the paper's default 64 Ki-node blocks.
    pub fn with_default_blocks(g: &'g Graph) -> Self {
        Self::new(g, MixenOpts::default().block_side)
    }

    /// Partitioning time (Table 4's GPOP preprocessing).
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// The blocked structure (for the cache simulator's traced twin).
    pub fn blocked(&self) -> &BlockedSubgraph {
        &self.blocked
    }

    /// §4.2 task-split metadata of the underlying partition. The GPOP
    /// baseline shares Mixen's nnz-balanced scheduling and skip lists (they
    /// live below the filtering layer), so its tasks are bounded the same
    /// way.
    pub fn split_stats(&self) -> mixen_core::block::SplitStats {
        self.blocked.split_stats()
    }

    /// Synchronous iterations (crate-level contract).
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        if iters == 0 {
            return x;
        }
        let mut y: Vec<V> = vec![V::identity(); n];
        let mut bins: DynamicBins<V> = DynamicBins::new(&self.blocked);
        for _ in 0..iters {
            // GAS: Scatter all nodes, Gather fresh sums, Apply.
            scga::scatter(&self.blocked, &mut x, &mut bins, None);
            y.par_iter_mut().for_each(|v| *v = V::identity());
            scga::gather(&self.blocked, &bins, &mut y, &apply);
            std::mem::swap(&mut x, &mut y);
        }
        x
    }

    /// Iterates until the max-norm difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        let mut y: Vec<V> = vec![V::identity(); n];
        let mut bins: DynamicBins<V> = DynamicBins::new(&self.blocked);
        for t in 0..max_iters {
            scga::scatter(&self.blocked, &mut x, &mut bins, None);
            y.par_iter_mut().for_each(|v| *v = V::identity());
            scga::gather(&self.blocked, &bins, &mut y, &apply);
            std::mem::swap(&mut x, &mut y);
            let diff = mixen_graph::max_diff(&x, &y);
            if diff <= tol {
                return (x, t + 1);
            }
        }
        (x, max_iters)
    }

    /// Blocked BFS: frontier-sparse expansion with a dense fallback, over
    /// the unfiltered block structure (GPOP's approach).
    pub fn bfs(&self, root: NodeId) -> Vec<i32> {
        let n = self.g.n();
        let depth: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(-1)).collect();
        // ordering: single-threaded seeding before any parallel level.
        depth[root as usize].store(0, Ordering::Relaxed);
        let mut frontier = vec![root];
        let mut level = 0i32;
        while !frontier.is_empty() {
            frontier = if frontier.len() * 16 > n {
                scga::bfs_level_dense(&self.blocked, &depth, level)
            } else {
                scga::bfs_level_sparse(&self.blocked, &depth, &frontier, level)
            };
            frontier.sort_unstable();
            level += 1;
        }
        depth.into_iter().map(|d| d.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEngine;
    use mixen_graph::PropValue;

    fn mixed() -> Graph {
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    #[test]
    fn matches_reference_for_many_block_sides() {
        let g = mixed();
        let r = ReferenceEngine::new(&g);
        let want = r.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, 3);
        for c in [1usize, 2, 3, 8, 64] {
            let e = BlockEngine::new(&g, c);
            let got = e.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, 3);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "c = {c}");
            }
        }
    }

    #[test]
    fn bfs_matches_reference_all_roots() {
        let g = mixed();
        let e = BlockEngine::new(&g, 2);
        let r = ReferenceEngine::new(&g);
        for root in 0..g.n() as NodeId {
            assert_eq!(e.bfs(root), r.bfs(root), "root {root}");
        }
    }

    #[test]
    fn zero_iterations_returns_init() {
        let g = mixed();
        let e = BlockEngine::new(&g, 4);
        let got = e.iterate::<f32, _, _>(|v| v as f32, |_, _| f32::NAN, 0);
        assert_eq!(got, (0..8).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn vector_values() {
        let g = mixed();
        let e = BlockEngine::new(&g, 2);
        let r = ReferenceEngine::new(&g);
        let init = |v: NodeId| [v as f32, 1.0];
        let apply = |_: NodeId, s: [f32; 2]| [0.5 * s[0], s[1]];
        let got = e.iterate::<[f32; 2], _, _>(init, apply, 2);
        let want = r.iterate::<[f32; 2], _, _>(init, apply, 2);
        for (a, b) in got.iter().zip(&want) {
            assert!(<[f32; 2]>::abs_diff(*a, *b) < 1e-4);
        }
    }

    #[test]
    fn build_time_recorded() {
        let g = mixed();
        let e = BlockEngine::new(&g, 4);
        assert!(e.build_seconds() >= 0.0);
        assert_eq!(e.blocked().nnz(), g.m());
    }

    #[test]
    fn baseline_partition_is_balanced_and_skip_listed() {
        // One hub node owning most edges: the GPOP engine inherits the
        // §4.2 split and skip lists from the shared blocked layer.
        let mut edges = Vec::new();
        for d in 0..24u32 {
            edges.push((0u32, d % 8));
        }
        for u in 1..8u32 {
            edges.push((u, (u + 1) % 8));
        }
        let g = Graph::from_pairs(8, &edges);
        let e = BlockEngine::new(&g, 2);
        let stats = e.split_stats();
        assert_eq!(stats.scatter_tasks, e.blocked().rows().len());
        assert!(stats.max_task_nnz() > 0);
        assert!(
            stats.tasks_split() > 0,
            "hub load should force a split, stats: {stats:?}"
        );
        // Skip lists still produce a correct SpMV through the shared kernels.
        let r = ReferenceEngine::new(&g);
        let got = e.iterate::<f32, _, _>(|v| v as f32, |_, s| s, 2);
        let want = r.iterate::<f32, _, _>(|v| v as f32, |_, s| s, 2);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
