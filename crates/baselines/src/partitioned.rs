//! Polymer-style destination-partitioned engine.
//!
//! Polymer improves Ligra on link analysis by redistributing graph data so
//! each NUMA node works on a local partition. On a single shared-memory
//! domain the transferable part of that strategy is the *partition-local
//! pull*: destinations are split into `p` contiguous partitions, each
//! processed as one coarse task pulling over its own in-edge slice — fewer,
//! coarser tasks than the dense pull, with partition-sequential writes (the
//! paper's Table 3: Polymer beats Ligra on link analysis). DESIGN.md §5
//! records this substitution.
//!
//! BFS is a push-only frontier walk with atomic claims and *no* direction
//! optimization — matching Polymer's BFS regression on high-diameter graphs
//! (road: 11.5 s vs Ligra's 0.79 s in Table 3).

use mixen_graph::nid;
use std::sync::atomic::{AtomicI32, Ordering};

use mixen_graph::{Graph, NodeId, PropValue};
use rayon::prelude::*;

/// Destination-partitioned pull engine (Polymer-like).
pub struct PartitionedEngine<'g> {
    g: &'g Graph,
    /// Partition boundaries over the destination ID space (length `p + 1`).
    bounds: Vec<usize>,
}

impl<'g> PartitionedEngine<'g> {
    /// Partitions the destination space into `partitions` edge-balanced
    /// contiguous ranges (Polymer balances edges, not nodes, across NUMA
    /// domains).
    pub fn new(g: &'g Graph, partitions: usize) -> Self {
        let p = partitions.max(1);
        let n = g.n();
        let m = g.m().max(1);
        let target = m.div_ceil(p);
        let mut bounds = vec![0usize];
        let mut acc = 0usize;
        for v in 0..n {
            acc += g.in_degree(nid(v));
            if acc >= target && bounds.len() < p {
                bounds.push(v + 1);
                acc = 0;
            }
        }
        while bounds.len() < p {
            bounds.push(n);
        }
        bounds.push(n);
        Self { g, bounds }
    }

    /// Default partition count: 4× the worker threads (coarse NUMA-style
    /// chunks with a little slack for work stealing).
    pub fn with_default_partitions(g: &'g Graph) -> Self {
        Self::new(g, rayon::current_num_threads() * 4)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Synchronous iterations (crate-level contract).
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        for _ in 0..iters {
            x = self.step(&x, &apply);
        }
        x
    }

    /// Iterates until the max-norm difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        for t in 0..max_iters {
            let y = self.step(&x, &apply);
            let diff = mixen_graph::max_diff(&y, &x);
            x = y;
            if diff <= tol {
                return (x, t + 1);
            }
        }
        (x, max_iters)
    }

    fn step<V, FA>(&self, x: &[V], apply: &FA) -> Vec<V>
    where
        V: PropValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let mut y = vec![V::identity(); self.g.n()];
        let mut segs: Vec<&mut [V]> = Vec::with_capacity(self.partitions());
        let mut rest: &mut [V] = &mut y;
        for w in self.bounds.windows(2) {
            let (seg, tail) = rest.split_at_mut(w[1] - w[0]);
            segs.push(seg);
            rest = tail;
        }
        segs.par_iter_mut().enumerate().for_each(|(p, seg)| {
            let lo = self.bounds[p];
            for (off, slot) in seg.iter_mut().enumerate() {
                let v = nid(lo + off);
                let mut sum = V::identity();
                for &u in self.g.in_neighbors(v) {
                    sum.combine(x[u as usize]);
                }
                *slot = apply(v, sum);
            }
        });
        y
    }

    /// Push-only frontier BFS (no direction optimization).
    pub fn bfs(&self, root: NodeId) -> Vec<i32> {
        let n = self.g.n();
        let depth: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(-1)).collect();
        // ordering: single-threaded seeding before any parallel level.
        depth[root as usize].store(0, Ordering::Relaxed);
        let mut frontier = vec![root];
        let mut level = 0i32;
        while !frontier.is_empty() {
            frontier = frontier
                .par_iter()
                .flat_map_iter(|&u| {
                    let mut next = Vec::new();
                    for &v in self.g.out_neighbors(u) {
                        if depth[v as usize]
                            // ordering: the claim needs only same-location
                            // atomicity — the next frontier is consumed
                            // after the rayon join, which orders claims.
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                    next
                })
                .collect();
            level += 1;
        }
        depth.into_iter().map(|d| d.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEngine;

    fn mixed() -> Graph {
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    #[test]
    fn matches_reference_for_any_partition_count() {
        let g = mixed();
        let r = ReferenceEngine::new(&g);
        let want = r.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, 3);
        for p in [1, 2, 3, 8, 100] {
            let e = PartitionedEngine::new(&g, p);
            let got = e.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, 3);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "p = {p}");
            }
        }
    }

    #[test]
    fn partition_bounds_cover_all_nodes() {
        let g = mixed();
        for p in [1, 2, 5, 16] {
            let e = PartitionedEngine::new(&g, p);
            assert_eq!(e.bounds.first(), Some(&0));
            assert_eq!(e.bounds.last(), Some(&g.n()));
            assert!(e.bounds.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(e.partitions(), p);
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = mixed();
        let e = PartitionedEngine::new(&g, 3);
        let r = ReferenceEngine::new(&g);
        for root in 0..g.n() as NodeId {
            assert_eq!(e.bfs(root), r.bfs(root), "root {root}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_pairs(0, &[]);
        let e = PartitionedEngine::new(&g, 4);
        let got = e.iterate::<f32, _, _>(|_| 1.0, |_, s| s, 2);
        assert!(got.is_empty());
    }
}
