//! Ligra-style pushing-flow engine.
//!
//! Link analysis pushes every source's value along its out-edges into the
//! destinations with atomic combines (Algorithm 1, lines 1–3: `atomAdd`) —
//! the strategy whose atomics and random writes make Ligra the slowest
//! link-analysis entry of Table 3. Atomic combining is done lane-wise over
//! 32-bit slots (see [`mixen_graph::AtomicProp`]).
//!
//! BFS is direction-optimizing [Beamer et al.]: sparse top-down push while
//! the frontier is thin, dense bottom-up pull when it is fat — the reason
//! Ligra wins most BFS rows of Table 3.

use mixen_graph::nid;
use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};

use mixen_graph::{AtomicProp, Graph, NodeId};
use rayon::prelude::*;

/// Push engine with atomic combines (Ligra-like).
pub struct PushEngine<'g> {
    g: &'g Graph,
}

impl<'g> PushEngine<'g> {
    /// Wraps a graph (the CSR already exists inside [`Graph`]).
    pub fn new(g: &'g Graph) -> Self {
        Self { g }
    }

    /// Synchronous iterations (crate-level contract); `V` must support
    /// lane-wise atomic combining.
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        if iters == 0 {
            return x;
        }
        let slots: Vec<AtomicU32> = (0..n * V::LANES).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..iters {
            self.reset_slots::<V>(&slots);
            self.push_all(&x, &slots);
            x = self.apply_slots(&slots, &apply);
        }
        x
    }

    /// Iterates until the max-norm difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).into_par_iter().map(&init).collect();
        let slots: Vec<AtomicU32> = (0..n * V::LANES).map(|_| AtomicU32::new(0)).collect();
        for t in 0..max_iters {
            self.reset_slots::<V>(&slots);
            self.push_all(&x, &slots);
            let y = self.apply_slots(&slots, &apply);
            let diff = mixen_graph::max_diff(&y, &x);
            x = y;
            if diff <= tol {
                return (x, t + 1);
            }
        }
        (x, max_iters)
    }

    fn reset_slots<V: AtomicProp>(&self, slots: &[AtomicU32]) {
        let mut id = vec![0u32; V::LANES];
        V::identity().write_lanes(&mut id);
        slots.par_iter().enumerate().for_each(|(i, s)| {
            // ordering: the reset is published by the rayon join before any
            // push touches the slots.
            s.store(id[i % V::LANES], Ordering::Relaxed);
        });
    }

    fn push_all<V: AtomicProp>(&self, x: &[V], slots: &[AtomicU32]) {
        (0..nid(self.g.n())).into_par_iter().for_each(|u| {
            let val = x[u as usize];
            for &v in self.g.out_neighbors(u) {
                let base = v as usize * V::LANES;
                for lane in 0..V::LANES {
                    atomic_fold::<V>(&slots[base + lane], val, lane);
                }
            }
        });
    }

    fn apply_slots<V, FA>(&self, slots: &[AtomicU32], apply: &FA) -> Vec<V>
    where
        V: AtomicProp,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        (0..nid(self.g.n()))
            .into_par_iter()
            .map(|v| {
                let base = v as usize * V::LANES;
                let lanes: Vec<u32> = (0..V::LANES)
                    // ordering: push_all's join already ordered every fold
                    // before this read-only pass.
                    .map(|l| slots[base + l].load(Ordering::Relaxed))
                    .collect();
                apply(v, V::read_lanes(&lanes))
            })
            .collect()
    }

    /// Direction-optimizing BFS.
    pub fn bfs(&self, root: NodeId) -> Vec<i32> {
        let n = self.g.n();
        let m = self.g.m();
        let depth: Vec<AtomicI32> = (0..n).map(|_| AtomicI32::new(-1)).collect();
        // ordering: single-threaded seeding before any parallel level.
        depth[root as usize].store(0, Ordering::Relaxed);
        let mut frontier = vec![root];
        let mut level = 0i32;
        while !frontier.is_empty() {
            let frontier_edges: usize = frontier.iter().map(|&u| self.g.out_degree(u)).sum();
            frontier = if frontier_edges * 20 > m.max(1) {
                // Bottom-up: every unvisited node scans its in-neighbours.
                (0..n)
                    .into_par_iter()
                    // ordering: depths ≤ level were published by previous
                    // levels' joins; this level writes only unvisited slots.
                    .filter(|&v| depth[v].load(Ordering::Relaxed) < 0)
                    .filter_map(|v| {
                        let hit = self
                            .g
                            .in_neighbors(nid(v))
                            .iter()
                            // ordering: same argument as the filter above.
                            .any(|&u| depth[u as usize].load(Ordering::Relaxed) == level);
                        if hit {
                            // ordering: each unvisited v is written by at
                            // most one task (the one that owns v), and the
                            // value is published by this level's join.
                            depth[v].store(level + 1, Ordering::Relaxed);
                            Some(nid(v))
                        } else {
                            None
                        }
                    })
                    .collect()
            } else {
                // Top-down: push from the frontier with CAS claims.
                frontier
                    .par_iter()
                    .flat_map_iter(|&u| {
                        let mut next = Vec::new();
                        for &v in self.g.out_neighbors(u) {
                            if depth[v as usize]
                                .compare_exchange(
                                    -1,
                                    level + 1,
                                    // ordering: the claim needs only
                                    // same-location atomicity — the next
                                    // frontier is consumed after the join.
                                    Ordering::Relaxed,
                                    // ordering: failure means someone else
                                    // claimed v; nothing further is read.
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                next.push(v);
                            }
                        }
                        next
                    })
                    .collect()
            };
            level += 1;
        }
        depth.into_iter().map(|d| d.into_inner()).collect()
    }
}

/// CAS loop folding `val`'s lane into a 32-bit atomic slot.
#[inline]
fn atomic_fold<V: AtomicProp>(slot: &AtomicU32, val: V, lane: usize) {
    // ordering: the fold is commutative and touches only this slot; the
    // accumulated result is published to readers by push_all's rayon join,
    // so the CAS loop needs no cross-location ordering.
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = V::fold_lane(cur, val, lane);
        // ordering: same-slot RMW; see the load above.
        match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEngine;
    use mixen_graph::PropValue;

    fn mixed() -> Graph {
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    #[test]
    fn matches_reference_scalar() {
        let g = mixed();
        let e = PushEngine::new(&g);
        let r = ReferenceEngine::new(&g);
        for iters in 0..4 {
            let got = e.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, iters);
            let want = r.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, iters);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "iters {iters}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn matches_reference_vector() {
        let g = mixed();
        let e = PushEngine::new(&g);
        let r = ReferenceEngine::new(&g);
        let init = |v: NodeId| [v as f32, 1.0];
        let apply = |_: NodeId, s: [f32; 2]| [0.5 * s[0], s[1] + 1.0];
        let got = e.iterate::<[f32; 2], _, _>(init, apply, 2);
        let want = r.iterate::<[f32; 2], _, _>(init, apply, 2);
        for (a, b) in got.iter().zip(&want) {
            assert!(<[f32; 2]>::abs_diff(*a, *b) < 1e-4);
        }
    }

    #[test]
    fn bfs_matches_reference_all_roots() {
        let g = mixed();
        let e = PushEngine::new(&g);
        let r = ReferenceEngine::new(&g);
        for root in 0..g.n() as NodeId {
            assert_eq!(e.bfs(root), r.bfs(root), "root {root}");
        }
    }

    #[test]
    fn bfs_dense_switch_on_fat_frontier() {
        // A star from 0: first expansion covers nearly all edges, forcing
        // the bottom-up path.
        let pairs: Vec<_> = (1..64u32).map(|v| (0, v)).collect();
        let g = Graph::from_pairs(64, &pairs);
        let e = PushEngine::new(&g);
        let d = e.bfs(0);
        assert_eq!(d[0], 0);
        assert!(d[1..].iter().all(|&x| x == 1));
    }

    #[test]
    fn until_converges() {
        let g = mixed();
        let e = PushEngine::new(&g);
        let (x, iters) = e.iterate_until::<f32, _, _>(|_| 1.0, |_, s| 0.25 * s + 0.5, 1e-8, 100);
        assert!(iters < 100);
        let r = ReferenceEngine::new(&g);
        let want = r.iterate::<f32, _, _>(|_| 1.0, |_, s| 0.25 * s + 0.5, iters);
        for (a, b) in x.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
