//! Serial reference engine — the correctness oracle.
//!
//! Computes the synchronous recurrence with no parallelism, no blocking and
//! a deterministic (in-neighbour order) float summation. Every other engine
//! must agree with it within floating-point reassociation tolerance.

use mixen_graph::nid;
use mixen_graph::{Graph, NodeId, PropValue};

/// A single-threaded pull engine.
pub struct ReferenceEngine<'g> {
    g: &'g Graph,
}

impl<'g> ReferenceEngine<'g> {
    /// Wraps a graph (no preprocessing).
    pub fn new(g: &'g Graph) -> Self {
        Self { g }
    }

    /// `iters` synchronous iterations of `x'[v] = apply(v, Σ_{u→v} x[u])`.
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V,
        FA: Fn(NodeId, V) -> V,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).map(&init).collect();
        for _ in 0..iters {
            x = (0..nid(n))
                .map(|v| {
                    let mut sum = V::identity();
                    for &u in self.g.in_neighbors(v) {
                        sum.combine(x[u as usize]);
                    }
                    apply(v, sum)
                })
                .collect();
        }
        x
    }

    /// Iterates until the max-norm step difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V,
        FA: Fn(NodeId, V) -> V,
    {
        let n = self.g.n();
        let mut x: Vec<V> = (0..nid(n)).map(&init).collect();
        for t in 0..max_iters {
            let y: Vec<V> = (0..nid(n))
                .map(|v| {
                    let mut sum = V::identity();
                    for &u in self.g.in_neighbors(v) {
                        sum.combine(x[u as usize]);
                    }
                    apply(v, sum)
                })
                .collect();
            let diff = mixen_graph::max_diff(&y, &x);
            x = y;
            if diff <= tol {
                return (x, t + 1);
            }
        }
        (x, max_iters)
    }

    /// Textbook queue BFS; depths in original IDs, `-1` unreachable.
    pub fn bfs(&self, root: NodeId) -> Vec<i32> {
        let mut depth = vec![-1i32; self.g.n()];
        depth[root as usize] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in self.g.out_neighbors(u) {
                if depth[v as usize] < 0 {
                    depth[v as usize] = depth[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_by_hand() {
        let g = Graph::from_pairs(3, &[(0, 1), (2, 1), (1, 2)]);
        let e = ReferenceEngine::new(&g);
        let y = e.iterate::<f32, _, _>(|v| (v + 1) as f32, |_, s| s, 1);
        assert_eq!(y, vec![0.0, 4.0, 2.0]);
    }

    #[test]
    fn bfs_by_hand() {
        let g = Graph::from_pairs(4, &[(0, 1), (1, 2), (0, 3)]);
        let e = ReferenceEngine::new(&g);
        assert_eq!(e.bfs(0), vec![0, 1, 2, 1]);
        assert_eq!(e.bfs(2), vec![-1, -1, 0, -1]);
    }

    #[test]
    fn until_stops_at_fixed_point() {
        let g = Graph::from_pairs(2, &[(0, 1), (1, 0)]);
        let e = ReferenceEngine::new(&g);
        let (x, iters) = e.iterate_until::<f32, _, _>(|_| 1.0, |_, s| 0.5 * s + 0.5, 1e-9, 500);
        assert!(iters < 500);
        assert!((x[0] - 1.0).abs() < 1e-6);
    }
}
