//! `mixen-pool` — a dependency-free fixed thread pool with chunked
//! work-stealing deques, built on `std::thread`, mutexes and atomics only.
//!
//! This crate is the execution substrate for the whole Mixen workspace: the
//! vendored `stubs/rayon` shim lowers every `par_iter` pipeline onto the
//! primitives exported here, so the Scatter–Cache–Gather–Apply engine and the
//! baselines all share one pool and one `--threads` / `MIXEN_THREADS` knob.
//!
//! # Execution model
//!
//! A pool with `threads = t` means *total* parallelism `t`: it spawns `t - 1`
//! background workers and the calling thread participates as the `t`-th lane
//! while it blocks in [`scope`] or [`join`]. `threads = 1` spawns no workers
//! at all and every task runs inline on the caller, in spawn order — this is
//! the bit-for-bit sequential fallback the engine's determinism contract
//! relies on (float sums are performed in exactly the single-threaded order).
//!
//! Each worker owns a deque protected by a mutex: the owner pops newest-first
//! (LIFO, cache-friendly for nested splits) while idle workers steal
//! oldest-first (FIFO, largest-remaining chunks). Tasks submitted from
//! threads outside the pool land in a shared injector queue. Callers waiting
//! on a [`Scope`] *help*: they repeatedly pop/steal pending tasks instead of
//! blocking, so a pool can never deadlock on its own scope.
//!
//! # Which pool runs my task?
//!
//! Free functions ([`scope`], [`join`], [`par_chunks`], …) resolve the
//! *ambient* pool in this order:
//!
//! 1. if the current thread is a pool worker, that worker's own pool;
//! 2. the innermost [`ThreadPool::install`] / [`with_threads`] override;
//! 3. the process-global pool, lazily created from the `MIXEN_THREADS`
//!    environment variable (or [`std::thread::available_parallelism`] when
//!    unset) on first use; [`configure_global`] pins it explicitly first.
//!
//! # Memory ordering
//!
//! Task handoff is synchronized by the deque mutexes. Scope completion uses a
//! `pending` counter: each task's final decrement is `Release` and the
//! waiter's read of `pending == 0` is `Acquire`, so every write performed by
//! a task *happens-before* the scope returns. The [`PoolStats`] counters are
//! plain `Relaxed` statistics — they are exact once a scope has completed
//! (the Release/Acquire pair above orders them too), and merely monotonic
//! while tasks are still in flight.
//!
//! # Example
//!
//! ```
//! // Sum a slice in parallel chunks, then check against the sequential sum.
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let data: Vec<u64> = (0..10_000).collect();
//! let total = AtomicU64::new(0);
//! mixen_pool::par_chunks(&data, 1024, |_part, chunk| {
//!     let s: u64 = chunk.iter().sum();
//!     total.fetch_add(s, Ordering::Relaxed);
//! });
//! assert_eq!(total.into_inner(), data.iter().sum::<u64>());
//! ```

#![warn(missing_docs)]

pub mod affinity;

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{thread, Condvar, Mutex};

/// Synchronization facade: with the `model-check` feature every primitive
/// the pool's protocol relies on (deque/injector/sleep mutexes, the wakeup
/// and scope condvars, the shutdown/pending atomics, worker spawn/join)
/// routes through the `mixen-check` instrumented types, so model tests can
/// exhaustively explore the pool's schedules. Without the feature these are
/// plain `std` re-exports and the pool compiles exactly as before.
///
/// Even with the feature compiled in, the instrumented types behave as
/// `std` unless the calling thread is inside a `mixen_check::explore`
/// execution, so enabling `model-check` does not perturb ordinary tests.
#[cfg(feature = "model-check")]
pub(crate) mod sync {
    pub(crate) use mixen_check::sync::atomic;
    pub(crate) use mixen_check::sync::{Condvar, Mutex};
    pub(crate) use mixen_check::thread;
}

/// Plain `std` synchronization (the `model-check` feature is off).
#[cfg(not(feature = "model-check"))]
pub(crate) mod sync {
    pub(crate) use std::sync::atomic;
    pub(crate) use std::sync::{Condvar, Mutex};
    pub(crate) use std::thread;
}

/// A queued unit of work. Scopes erase the `'scope` lifetime before boxing
/// (see [`Scope::spawn`]), which is sound because a scope never returns until
/// its pending count reaches zero.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long a parked worker sleeps before re-checking for work or shutdown.
/// Wakeups are normally explicit (every push notifies); the timeout is a
/// belt-and-braces bound on any missed-notify window.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a scope waiter sleeps when all of its tasks are already running
/// on other lanes and there is nothing left to help with.
const HELP_TIMEOUT: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Fault injection (feature-gated, test-only)
// ---------------------------------------------------------------------------

/// Deterministic fault hooks for pooled tasks, compiled in only with the
/// `fault-injection` feature.
///
/// Both hooks fire from the pooled-task wrapper — the path taken exactly
/// when the executing pool has background workers. Inline execution on a
/// single-lane pool never passes through the wrapper, so injected faults
/// vanish once a supervisor degrades to one lane: the property that makes
/// the degradation ladder terminate deterministically under test.
///
/// The hooks are process-global; tests that use them must serialize (the
/// runner test suite keeps them in one `#[test]`) and call [`clear`] when
/// done.
#[cfg(feature = "fault-injection")]
pub mod inject {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// Pooled tasks remaining to panic (consumed one per task).
    static PANICS_ARMED: AtomicU64 = AtomicU64::new(0);
    /// Per-task sleep in nanoseconds (0 = disabled).
    static SLOW_NANOS: AtomicU64 = AtomicU64::new(0);

    /// Arms the next `count` pooled tasks to panic with
    /// `"injected worker panic"`. Use `u64::MAX` for "every pooled task",
    /// which makes multi-lane execution fail deterministically while
    /// single-lane inline execution still succeeds.
    pub fn arm_worker_panics(count: u64) {
        // ordering: independent test-only flag; tests that arm hooks run
        // serialized and synchronize with workers via scope completion.
        PANICS_ARMED.store(count, Ordering::Relaxed);
    }

    /// Makes every pooled task sleep for `per_task` before running — a
    /// deterministic stalled-worker simulation for watchdog tests.
    pub fn set_worker_slowdown(per_task: Duration) {
        let nanos = u64::try_from(per_task.as_nanos()).unwrap_or(u64::MAX);
        // ordering: independent test-only flag, see arm_worker_panics.
        SLOW_NANOS.store(nanos, Ordering::Relaxed);
    }

    /// Disarms all hooks.
    pub fn clear() {
        // ordering: independent test-only flags, see arm_worker_panics.
        PANICS_ARMED.store(0, Ordering::Relaxed);
        SLOW_NANOS.store(0, Ordering::Relaxed);
    }

    /// Called by the pooled-task wrapper before the user closure runs.
    pub(crate) fn before_task() {
        // ordering: each hook is a self-contained counter/flag; the only
        // cross-thread contract is the same-location modification order,
        // which Relaxed already guarantees.
        let slow = SLOW_NANOS.load(Ordering::Relaxed);
        if slow > 0 {
            std::thread::sleep(Duration::from_nanos(slow));
        }
        // ordering: same-location modification order is all the decrement
        // loop needs; CAS atomicity makes each armed panic consumed once.
        let mut armed = PANICS_ARMED.load(Ordering::Relaxed);
        while armed > 0 {
            let next = if armed == u64::MAX { armed } else { armed - 1 };
            match PANICS_ARMED.compare_exchange_weak(
                armed,
                next,
                Ordering::Relaxed, // ordering: see the armed load above
                Ordering::Relaxed, // ordering: failure retries the load
            ) {
                Ok(_) => panic!("injected worker panic"),
                Err(seen) => armed = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pool core
// ---------------------------------------------------------------------------

struct PoolCore {
    /// Total parallelism including the caller lane; `queues.len() + 1`.
    threads: usize,
    /// One deque per background worker. Owner pops back, thieves pop front.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue for tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Parking lot: workers sleep on `wakeup` holding `sleep`.
    sleep: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
}

impl PoolCore {
    fn new(threads: usize) -> Arc<PoolCore> {
        let workers = threads - 1;
        Arc::new(PoolCore {
            threads,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        })
    }

    /// Spawns the background workers for an already-constructed core.
    fn start_workers(core: &Arc<PoolCore>) -> Vec<thread::JoinHandle<()>> {
        (0..core.queues.len())
            .map(|index| {
                let core = Arc::clone(core);
                thread::Builder::new()
                    .name(format!("mixen-pool-{index}"))
                    .spawn(move || worker_main(core, index))
                    .expect("mixen-pool: failed to spawn worker thread")
            })
            .collect()
    }

    /// Enqueues a job: onto the submitting worker's own deque when the
    /// submitter belongs to this pool, otherwise into the shared injector.
    fn push(self: &Arc<Self>, job: Job) {
        match local_worker_index(self) {
            Some(i) => self.queues[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        // Serialize the notify against parked workers' "is there work?"
        // check so a push cannot slip into their check-then-wait window.
        let _park = self.sleep.lock().unwrap();
        self.wakeup.notify_all();
    }

    /// Pops local work (LIFO), then injector work, then steals (FIFO).
    fn find_work(&self, own_index: Option<usize>) -> Option<Job> {
        if let Some(i) = own_index {
            if let Some(job) = self.queues[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        let start = own_index.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == own_index {
                continue;
            }
            if let Some(job) = self.queues[victim].lock().unwrap().pop_front() {
                // ordering: statistics counter; readers only need the
                // scope-completion Release/Acquire pair for exactness.
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn work_available(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn run(&self, job: Job) {
        // ordering: statistics counter, see PoolCore::find_work.
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        // Jobs never unwind: every producer (Scope::spawn) wraps the user
        // closure in catch_unwind and stores the payload in the scope.
        job();
    }
}

fn worker_main(core: Arc<PoolCore>, index: usize) {
    // Best-effort CPU pinning (lane index + 1; the caller is lane 0).
    // Off by default; see the `affinity` module docs.
    affinity::apply_to_worker(index);
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx {
            core: Arc::clone(&core),
            index,
        });
    });
    loop {
        while let Some(job) = core.find_work(Some(index)) {
            core.run(job);
        }
        let mut park = core.sleep.lock().unwrap();
        loop {
            if core.shutdown.load(Ordering::Acquire) {
                return;
            }
            if core.work_available() {
                break;
            }
            let (guard, _timeout) = core.wakeup.wait_timeout(park, PARK_TIMEOUT).unwrap();
            park = guard;
        }
    }
}

// ---------------------------------------------------------------------------
// Ambient-pool resolution
// ---------------------------------------------------------------------------

struct WorkerCtx {
    core: Arc<PoolCore>,
    index: usize,
}

thread_local! {
    /// Set once at worker startup; identifies the worker's pool and deque.
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
    /// Stack of `ThreadPool::install` overrides on this thread.
    static OVERRIDE: RefCell<Vec<Arc<PoolCore>>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
static GLOBAL_HANDLES: OnceLock<()> = OnceLock::new();

/// If the current thread is a worker of `core`, its deque index.
fn local_worker_index(core: &Arc<PoolCore>) -> Option<usize> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .and_then(|ctx| Arc::ptr_eq(&ctx.core, core).then_some(ctx.index))
    })
}

fn parse_threads_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    parse_threads_env(std::env::var("MIXEN_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn global_core() -> &'static Arc<PoolCore> {
    let core = GLOBAL.get_or_init(|| PoolCore::new(default_threads()));
    // Workers for the global pool are started exactly once, detached: the
    // global pool lives for the whole process and is never shut down.
    GLOBAL_HANDLES.get_or_init(|| {
        let _handles = PoolCore::start_workers(core);
    });
    core
}

fn current_core() -> Arc<PoolCore> {
    if let Some(core) = WORKER.with(|w| w.borrow().as_ref().map(|ctx| Arc::clone(&ctx.core))) {
        return core;
    }
    if let Some(core) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
        return core;
    }
    Arc::clone(global_core())
}

/// Error returned by [`configure_global`] when the global pool already
/// exists with a different thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfigError {
    /// The thread count the global pool was already initialized with.
    pub current: usize,
    /// The thread count the rejected call asked for.
    pub requested: usize,
}

impl fmt::Display for PoolConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "global pool already initialized with {} threads (requested {})",
            self.current, self.requested
        )
    }
}

impl std::error::Error for PoolConfigError {}

/// Pins the process-global pool to `threads` total lanes.
///
/// Must run before anything touches the global pool (the pool is created
/// lazily on first use and cannot be resized afterwards). Calling again with
/// the same value is a no-op; a different value returns [`PoolConfigError`].
/// `threads = 0` is treated as `1`.
pub fn configure_global(threads: usize) -> Result<(), PoolConfigError> {
    let requested = threads.max(1);
    let mut created = false;
    let core = GLOBAL.get_or_init(|| {
        created = true;
        PoolCore::new(requested)
    });
    if !created && core.threads != requested {
        return Err(PoolConfigError {
            current: core.threads,
            requested,
        });
    }
    if created {
        GLOBAL_HANDLES.get_or_init(|| {
            let _handles = PoolCore::start_workers(core);
        });
    }
    Ok(())
}

/// Total parallelism of the ambient pool (workers plus the caller lane).
pub fn current_num_threads() -> usize {
    current_core().threads
}

/// True when the current thread is a background worker of any mixen pool
/// (as opposed to a caller thread, even one helping inside a scope).
///
/// Robustness tests use this to build faults that only fire under real
/// multi-threaded execution — e.g. an `apply` closure that stalls on worker
/// lanes but runs clean once the runner has degraded to inline execution.
pub fn on_worker_thread() -> bool {
    WORKER.with(|w| w.borrow().is_some())
}

/// Runs `f` with a temporary pool of `threads` lanes installed as the
/// ambient pool on this thread, then tears the pool down.
///
/// This is how tests exercise several thread counts inside one process: the
/// process-global pool cannot be reconfigured, but overrides nest freely.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPool::new(threads).install(f)
}

/// Snapshot of a pool's lifetime counters. See [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total parallelism (background workers + the caller lane).
    pub threads: usize,
    /// Number of background worker threads (`threads - 1`).
    pub workers: usize,
    /// Tasks executed since the pool started (monotonic).
    pub tasks_executed: u64,
    /// Tasks taken from another worker's deque (monotonic).
    pub steals: u64,
}

/// Counters of the ambient pool. Exact for all completed scopes; merely
/// monotonic while tasks are in flight (the counters are `Relaxed`).
pub fn stats() -> PoolStats {
    let core = current_core();
    PoolStats {
        threads: core.threads,
        workers: core.queues.len(),
        // ordering: monotonic statistics reads; documented as exact only
        // after a scope completes (whose Release/Acquire pair orders them).
        tasks_executed: core.tasks_executed.load(Ordering::Relaxed),
        steals: core.steals.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// A fixed-size pool of worker threads with per-worker work-stealing deques.
///
/// Dropping the pool signals shutdown and joins all workers. The pool cannot
/// be cloned; share work through [`ThreadPool::install`] or the free
/// functions on the ambient pool instead.
pub struct ThreadPool {
    core: Arc<PoolCore>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes: `threads - 1` background
    /// workers plus the calling thread while it waits inside [`scope`] or
    /// [`join`]. `threads = 0` is treated as `1` (no workers; every task
    /// runs inline on the caller in spawn order).
    ///
    /// [`scope`]: ThreadPool::scope
    /// [`join`]: ThreadPool::join
    pub fn new(threads: usize) -> ThreadPool {
        let core = PoolCore::new(threads.max(1));
        let handles = PoolCore::start_workers(&core);
        ThreadPool { core, handles }
    }

    /// Total parallelism of this pool (workers + caller lane).
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Number of background worker threads (`threads() - 1`).
    pub fn workers(&self) -> usize {
        self.core.queues.len()
    }

    /// Lifetime counters for this pool. See [`PoolStats`].
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.core.threads,
            workers: self.core.queues.len(),
            // ordering: monotonic statistics reads, see the free `stats`.
            tasks_executed: self.core.tasks_executed.load(Ordering::Relaxed),
            steals: self.core.steals.load(Ordering::Relaxed),
        }
    }

    /// Runs `op` with a [`Scope`] that can spawn tasks borrowing from the
    /// enclosing stack frame, and blocks (helping to run pending tasks)
    /// until every spawned task has finished.
    ///
    /// If `op` or any spawned task panics, the panic is re-raised here after
    /// all tasks have completed — borrowed data is never freed while a task
    /// can still reach it.
    pub fn scope<'scope, R>(&self, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
        scope_on(&self.core, op)
    }

    /// Runs `a` on the calling thread while `b` is eligible to run on any
    /// idle lane, and returns both results. With a single-lane pool the two
    /// closures simply run sequentially, `a` first.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        join_on(&self.core, a, b)
    }

    /// Runs `f` with this pool installed as the ambient pool for the
    /// current thread (nestable; restored on return or panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct PopOnDrop;
        impl Drop for PopOnDrop {
            fn drop(&mut self) {
                OVERRIDE.with(|o| {
                    o.borrow_mut().pop();
                });
            }
        }
        OVERRIDE.with(|o| o.borrow_mut().push(Arc::clone(&self.core)));
        let _guard = PopOnDrop;
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        {
            let _park = self.core.sleep.lock().unwrap();
            self.core.wakeup.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.core.threads)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Spawns tasks that may borrow from the stack frame enclosing the
/// [`scope`] / [`ThreadPool::scope`] call. See those functions.
pub struct Scope<'scope> {
    core: Arc<PoolCore>,
    state: Arc<ScopeState>,
    /// Makes `'scope` invariant so it cannot be shortened to allow escaping
    /// borrows.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` to run on the pool. On a single-lane pool the task runs
    /// immediately, inline, preserving exact sequential order and panic
    /// behaviour.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.core.queues.is_empty() {
            // Single-lane pool: run inline. A panic unwinds straight through
            // the scope body, exactly like plain sequential code.
            // ordering: statistics counter, see PoolCore::find_work.
            self.core.tasks_executed.fetch_add(1, Ordering::Relaxed);
            f();
            return;
        }
        // ordering: (audited down from SeqCst) the increment needs no
        // happens-before edge of its own. It is ordered before this task's
        // own decrement by same-location modification order, and every
        // other observer is a waiter that can only see `pending == 0` after
        // *all* decrements — each of which is Release and pairs with the
        // waiter's Acquire load. The spawner itself keeps the count nonzero
        // until the final decrement, so a waiter can never miss this task.
        self.state.pending.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                crate::inject::before_task();
                f()
            })) {
                let mut slot = state.panic.lock().unwrap();
                // Keep the first panic; later ones are duplicates of the
                // same logical failure as far as the scope is concerned.
                slot.get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::Release) == 1 {
                let _sync = state.lock.lock().unwrap();
                state.done.notify_all();
            }
        });
        // SAFETY: the job's `'scope` borrows stay valid until the scope call
        // returns, and `scope_on` does not return (even on panic) until
        // `pending` has dropped to zero — i.e. until this job has run to
        // completion. Erasing the lifetime to `'static` therefore never lets
        // the job outlive the data it borrows.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.core.push(job);
    }
}

impl fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope")
            // ordering: best-effort diagnostic snapshot only.
            .field("pending", &self.state.pending.load(Ordering::Relaxed))
            .finish()
    }
}

fn scope_on<'scope, R>(core: &Arc<PoolCore>, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let scope = Scope {
        core: Arc::clone(core),
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _marker: PhantomData,
    };
    // Catch a panic in the scope body itself so already-spawned tasks are
    // still waited for before unwinding frees their borrowed data.
    let body = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    wait_scope(core, &scope.state);
    if let Some(payload) = scope.state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    match body {
        Ok(result) => result,
        Err(payload) => resume_unwind(payload),
    }
}

/// Blocks until the scope's pending count reaches zero, running any pool
/// task it can find in the meantime (the caller "helps" as an extra lane).
fn wait_scope(core: &Arc<PoolCore>, state: &ScopeState) {
    let own_index = local_worker_index(core);
    while state.pending.load(Ordering::Acquire) != 0 {
        if let Some(job) = core.find_work(own_index) {
            core.run(job);
            continue;
        }
        // Nothing to help with: our remaining tasks are running on other
        // lanes. Sleep until the last decrement notifies us. The re-check
        // under the lock closes the check-then-wait race with the task-side
        // lock/notify sequence.
        let guard = state.lock.lock().unwrap();
        if state.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let _ = state.done.wait_timeout(guard, HELP_TIMEOUT).unwrap();
    }
}

fn join_on<A, B, RA, RB>(core: &Arc<PoolCore>, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if core.queues.is_empty() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb: Option<RB> = None;
    let ra = scope_on(core, |s| {
        let slot = &mut rb;
        s.spawn(move || *slot = Some(b()));
        a()
    });
    match rb {
        Some(rb) => (ra, rb),
        // The scope returned normally, so `b` ran to completion (a panic in
        // `b` would have propagated out of `scope_on`).
        None => unreachable!("mixen-pool join: task b completed without storing a result"),
    }
}

// ---------------------------------------------------------------------------
// Free functions on the ambient pool
// ---------------------------------------------------------------------------

/// [`ThreadPool::scope`] on the ambient pool.
///
/// ```
/// let mut histogram = [0usize; 4];
/// let (a, b) = histogram.split_at_mut(2);
/// mixen_pool::scope(|s| {
///     s.spawn(|| a[0] = 1);
///     s.spawn(|| b[1] = 2);
/// });
/// assert_eq!(histogram, [1, 0, 0, 2]);
/// ```
pub fn scope<'scope, R>(op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    scope_on(&current_core(), op)
}

/// [`ThreadPool::join`] on the ambient pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_on(&current_core(), a, b)
}

/// Calls `f(part_index, chunk)` for consecutive `chunk_size`-sized chunks of
/// `items` (last chunk may be shorter), in parallel on the ambient pool.
///
/// An empty slice spawns no tasks. Panics if `chunk_size == 0`.
pub fn par_chunks<T, F>(items: &[T], chunk_size: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    assert!(chunk_size > 0, "par_chunks: chunk_size must be non-zero");
    scope(|s| {
        for (part, chunk) in items.chunks(chunk_size).enumerate() {
            let f = &f;
            s.spawn(move || f(part, chunk));
        }
    });
}

/// Mutable variant of [`par_chunks`]: `f(part_index, chunk)` over disjoint
/// mutable chunks.
///
/// An empty slice spawns no tasks. Panics if `chunk_size == 0`.
pub fn par_chunks_mut<T, F>(items: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        chunk_size > 0,
        "par_chunks_mut: chunk_size must be non-zero"
    );
    scope(|s| {
        for (part, chunk) in items.chunks_mut(chunk_size).enumerate() {
            let f = &f;
            s.spawn(move || f(part, chunk));
        }
    });
}

/// Calls `f(i)` for every `i` in `range`, split into one contiguous
/// sub-range per task (about four tasks per lane on the ambient pool).
pub fn par_range<F>(range: Range<usize>, f: F)
where
    F: Fn(usize) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let threads = current_num_threads();
    let parts = if threads <= 1 {
        1
    } else {
        (threads * 4).min(len)
    };
    if parts == 1 {
        for i in range {
            f(i);
        }
        return;
    }
    let start = range.start;
    scope(|s| {
        for p in 0..parts {
            let lo = start + len * p / parts;
            let hi = start + len * (p + 1) / parts;
            let f = &f;
            s.spawn(move || {
                for i in lo..hi {
                    f(i);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fib_join(pool: &ThreadPool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = pool.join(|| fib_join(pool, n - 1), || fib_join(pool, n - 2));
        a + b
    }

    #[test]
    fn nested_join_computes_fib() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            assert_eq!(fib_join(&pool, 15), 610, "threads={threads}");
        }
    }

    #[test]
    fn scope_tasks_mutate_borrowed_slice() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn panic_in_scope_task_propagates() {
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
            });
        }));
        let payload = caught.expect_err("scope should propagate the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task boom");
    }

    #[test]
    fn panic_in_join_branch_propagates() {
        for threads in [1, 2] {
            let pool = ThreadPool::new(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.join(|| 1, || -> i32 { panic!("join boom") })
            }));
            assert!(caught.is_err(), "threads={threads}");
        }
    }

    #[test]
    fn scope_waits_for_tasks_even_when_body_panics() {
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        std::thread::sleep(Duration::from_millis(2));
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body boom");
            });
        }));
        assert!(caught.is_err());
        // All spawned tasks must have completed before the panic resumed.
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn par_chunks_handles_empty_input() {
        let calls = AtomicUsize::new(0);
        let empty: [u8; 0] = [];
        par_chunks(&empty, 16, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0);

        let mut empty_mut: [u8; 0] = [];
        par_chunks_mut(&mut empty_mut, 16, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be non-zero")]
    fn par_chunks_rejects_zero_chunk_size() {
        par_chunks(&[1, 2, 3], 0, |_, _| {});
    }

    #[test]
    fn par_chunks_mut_covers_disjoint_chunks() {
        with_threads(4, || {
            let mut data = vec![0u32; 1000];
            par_chunks_mut(&mut data, 64, |part, chunk| {
                for v in chunk.iter_mut() {
                    *v = part as u32 + 1;
                }
            });
            assert!(data.iter().all(|&v| v >= 1));
            assert_eq!(data[0], 1);
            assert_eq!(data[999], 1000 / 64 + 1);
        });
    }

    #[test]
    fn par_range_visits_every_index_once() {
        with_threads(3, || {
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            par_range(0..257, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn with_threads_overrides_nest_and_restore() {
        with_threads(2, || {
            assert_eq!(current_num_threads(), 2);
            with_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn single_lane_pool_runs_tasks_inline_in_spawn_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 0);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_executed_tasks() {
        let pool = ThreadPool::new(3);
        let before = pool.stats();
        assert_eq!(before.threads, 3);
        assert_eq!(before.workers, 2);
        pool.scope(|s| {
            for _ in 0..20 {
                s.spawn(|| {});
            }
        });
        let after = pool.stats();
        assert_eq!(after.tasks_executed - before.tasks_executed, 20);
    }

    #[test]
    fn parse_threads_env_accepts_positive_integers_only() {
        assert_eq!(parse_threads_env(Some("4")), Some(4));
        assert_eq!(parse_threads_env(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads_env(Some("0")), None);
        assert_eq!(parse_threads_env(Some("-2")), None);
        assert_eq!(parse_threads_env(Some("many")), None);
        assert_eq!(parse_threads_env(None), None);
    }

    /// All fault-injection assertions live in one test because the hooks
    /// are process-global and the harness runs tests concurrently.
    #[cfg(feature = "fault-injection")]
    #[test]
    fn injection_hits_pooled_tasks_and_spares_inline_execution() {
        // Armed panics make multi-lane scopes fail deterministically.
        inject::arm_worker_panics(u64::MAX);
        let pool = ThreadPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {});
                }
            });
        }));
        let payload = caught.expect_err("pooled tasks should hit the armed panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected worker panic");

        // Single-lane inline execution never passes through the pooled-task
        // wrapper, so the same armed state leaves it untouched.
        let single = ThreadPool::new(1);
        let ran = AtomicUsize::new(0);
        single.scope(|s| {
            for _ in 0..8 {
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);

        // Slowdown delays pooled tasks without failing them.
        inject::clear();
        inject::set_worker_slowdown(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        pool.scope(|s| {
            s.spawn(|| {});
        });
        assert!(t0.elapsed() >= Duration::from_millis(5));
        inject::clear();
    }

    #[test]
    fn join_returns_both_results_across_thread_counts() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let (a, b) = pool.join(|| "left".len(), || "right".len());
            assert_eq!((a, b), (4, 5));
        }
    }
}
