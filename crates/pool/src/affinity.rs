//! Optional CPU pinning for pool lanes, without a libc crate.
//!
//! The value-stream kernels are bandwidth-bound; once a lane's working set
//! (its bin segments and the slice of `x`/`y` it owns) is resident in a
//! core's private cache, letting the OS migrate the thread to another core
//! throws that residency away. Pinning each lane to one CPU keeps the
//! per-lane streams on the core that warmed them.
//!
//! Pinning is **off by default** and never required for correctness — it is
//! a measurement/performance knob, exactly like `kernel_width`. Two ways to
//! turn it on:
//!
//! * the `MIXEN_AFFINITY` environment variable, read lazily when the first
//!   pool worker spawns: `auto` (lane *i* → CPU *i* mod ncpus) or an
//!   explicit comma list such as `0,2,4,6` (lane *i* → list\[*i* mod len\]);
//!   anything else (including unset) leaves pinning off;
//! * [`configure`], which overrides the environment and also pins the
//!   calling thread — the caller participates in every [`crate::scope`] as
//!   lane 0, so the CLI pins itself alongside the workers it configures.
//!
//! Lane numbering: the calling thread is lane 0, background worker *i* is
//! lane *i* + 1. With `auto` on a `t`-thread pool the lanes land on CPUs
//! `0..t`, one each, matching how `--threads t` is usually sized.
//!
//! On non-Linux targets every pinning call is a no-op that reports
//! `false`/`None`; policy parsing and lane arithmetic still work so the
//! plumbing can be tested anywhere.

use std::sync::Mutex;

/// How pool lanes are pinned to CPUs. See the module docs for the lane →
/// CPU maps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum AffinityPolicy {
    /// No pinning (the default): the OS scheduler places lanes freely.
    #[default]
    Disabled,
    /// Lane *i* is pinned to CPU *i* mod ncpus.
    Auto,
    /// Lane *i* is pinned to `list[i mod len]`. An empty list disables
    /// pinning (unrepresentable via [`AffinityPolicy::parse`]).
    List(Vec<usize>),
}

impl AffinityPolicy {
    /// Parses a `MIXEN_AFFINITY` / `--affinity` spec: `off`, `auto`, or a
    /// comma-separated CPU list (`0,2,4`). Returns `None` on anything else
    /// so callers can distinguish a typo from an explicit `off`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        match s {
            "off" | "none" | "disabled" => return Some(AffinityPolicy::Disabled),
            "auto" => return Some(AffinityPolicy::Auto),
            "" => return None,
            _ => {}
        }
        let cpus: Option<Vec<usize>> = s
            .split(',')
            .map(|part| part.trim().parse::<usize>().ok())
            .collect();
        cpus.filter(|l| !l.is_empty()).map(AffinityPolicy::List)
    }

    /// The policy requested by the `MIXEN_AFFINITY` environment variable;
    /// unset or unparseable specs fall back to [`AffinityPolicy::Disabled`]
    /// (the CLI layer validates specs loudly; the lazy env path must not
    /// panic inside a worker spawn).
    pub fn from_env() -> Self {
        std::env::var("MIXEN_AFFINITY")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(AffinityPolicy::Disabled)
    }

    /// The CPU lane `lane` should be pinned to, if any.
    pub fn cpu_for_lane(&self, lane: usize, ncpus: usize) -> Option<usize> {
        match self {
            AffinityPolicy::Disabled => None,
            AffinityPolicy::Auto => Some(lane % ncpus.max(1)),
            AffinityPolicy::List(cpus) => cpus.get(lane % cpus.len().max(1)).copied(),
        }
    }
}

/// Explicitly configured policy; `None` means "fall back to the
/// environment". A mutex (not a `OnceLock`) so tests can reconfigure.
static CONFIGURED: Mutex<Option<AffinityPolicy>> = Mutex::new(None);

/// Installs `policy` process-wide and pins the calling thread as lane 0.
///
/// Affects workers spawned afterwards, so call it before the global pool is
/// created (the same ordering [`crate::configure_global`] requires).
/// Returns the CPU the caller was pinned to, or `None` when the policy
/// leaves lane 0 unpinned or pinning is unsupported on this target.
pub fn configure(policy: AffinityPolicy) -> Option<usize> {
    let caller_cpu = policy.cpu_for_lane(0, num_cpus());
    *CONFIGURED.lock().unwrap() = Some(policy);
    caller_cpu.filter(|&cpu| pin_current_thread(cpu))
}

/// The policy workers consult at spawn: the configured one, else the
/// environment's.
pub(crate) fn effective_policy() -> AffinityPolicy {
    CONFIGURED
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(AffinityPolicy::from_env)
}

/// Pins background worker `index` (lane `index + 1`) per the effective
/// policy. Called from `worker_main` before the first job. Failures are
/// ignored: pinning is best-effort and never affects results.
pub(crate) fn apply_to_worker(index: usize) {
    if let Some(cpu) = effective_policy().cpu_for_lane(index + 1, num_cpus()) {
        let _ = pin_current_thread(cpu);
    }
}

/// The CPU count used for `auto`'s modulo: the process's available
/// parallelism (respects cgroup/taskset limits), floored at 1.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the current thread to a single CPU. Returns `true` on success;
/// always `false` off Linux.
pub fn pin_current_thread(cpu: usize) -> bool {
    sys::pin_to(cpu)
}

/// The set of CPUs the current thread may run on, ascending, or `None`
/// where unsupported (non-Linux) or on syscall failure.
pub fn current_thread_cpus() -> Option<Vec<usize>> {
    sys::current_cpus()
}

#[cfg(target_os = "linux")]
mod sys {
    /// 16 × 64 = 1024 CPUs — the kernel's historical `CPU_SETSIZE`; CPUs
    /// beyond it are out of scope for this minimal mask.
    const MASK_WORDS: usize = 16;

    extern "C" {
        // Linux `sched_setaffinity(2)` / `sched_getaffinity(2)`; `pid = 0`
        // means the calling thread. `cpu_set_t` is an opaque bitmask,
        // passed here as `u64` words to avoid declaring the alias.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }

    pub(super) fn pin_to(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: `sched_setaffinity` is the libc symbol every Linux
        // process links; the mask pointer and its byte size describe a
        // live, correctly-sized local buffer, and `pid = 0` targets only
        // the calling thread.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }

    pub(super) fn current_cpus() -> Option<Vec<usize>> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: same symbol/size contract as above; the kernel writes at
        // most `cpusetsize` bytes into the buffer.
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
        if rc != 0 {
            return None;
        }
        let mut cpus = Vec::new();
        for (w, &word) in mask.iter().enumerate() {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    cpus.push(w * 64 + b);
                }
            }
        }
        Some(cpus)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    pub(super) fn pin_to(_cpu: usize) -> bool {
        false
    }

    pub(super) fn current_cpus() -> Option<Vec<usize>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_vocabulary() {
        assert_eq!(AffinityPolicy::parse("off"), Some(AffinityPolicy::Disabled));
        assert_eq!(AffinityPolicy::parse("none"), Some(AffinityPolicy::Disabled));
        assert_eq!(AffinityPolicy::parse("auto"), Some(AffinityPolicy::Auto));
        assert_eq!(
            AffinityPolicy::parse(" 0, 2,4 "),
            Some(AffinityPolicy::List(vec![0, 2, 4]))
        );
        assert_eq!(AffinityPolicy::parse(""), None);
        assert_eq!(AffinityPolicy::parse("fast"), None);
        assert_eq!(AffinityPolicy::parse("0,x"), None);
    }

    #[test]
    fn lane_to_cpu_maps() {
        assert_eq!(AffinityPolicy::Disabled.cpu_for_lane(3, 8), None);
        assert_eq!(AffinityPolicy::Auto.cpu_for_lane(3, 8), Some(3));
        assert_eq!(AffinityPolicy::Auto.cpu_for_lane(9, 8), Some(1));
        let list = AffinityPolicy::List(vec![4, 6]);
        assert_eq!(list.cpu_for_lane(0, 8), Some(4));
        assert_eq!(list.cpu_for_lane(1, 8), Some(6));
        assert_eq!(list.cpu_for_lane(2, 8), Some(4));
    }

    /// Linux-only smoke: pinning a scratch thread really narrows its CPU
    /// set (per-thread affinity dies with the thread, so nothing to undo).
    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_narrows_the_affinity_mask() {
        std::thread::spawn(|| {
            let before = current_thread_cpus().expect("getaffinity");
            assert!(!before.is_empty());
            let target = before[0];
            assert!(pin_current_thread(target));
            assert_eq!(current_thread_cpus().unwrap(), vec![target]);
        })
        .join()
        .unwrap();
    }
}
