//! Composable regular-region relabel passes (the reordering shoot-out).
//!
//! Mixen's hub-prefix relabel is one point in the lightweight-reordering
//! design space mapped out by Faldu et al. ("A Closer Look at Lightweight
//! Graph Reordering"). This module factors the relabel step of §4.1 into
//! [`ReorderPolicy`] passes that compose left to right over the regular
//! region:
//!
//! * [`HubExtract`] — the paper's stable hub/non-hub partition (hubs first,
//!   original relative order preserved on both sides).
//! * [`DegreeSort`] — full stable sort by descending in-degree (the
//!   DegreeSort/Gorder-family strategy, `RegularOrdering::ByInDegree`).
//! * [`DegreeGroup`] — Degree-Based Grouping: after hub extraction, the
//!   non-hub suffix is regrouped into logarithmic degree classes (higher
//!   classes first, stable within a class). Cheaper than a full sort and,
//!   on power-law graphs, captures most of its locality benefit.
//! * [`HubDegreeSort`] — HubSort: after hub extraction, only the hub prefix
//!   is sorted by descending in-degree; the (much larger) non-hub suffix
//!   keeps its original order, so the hottest cache lines cluster at the
//!   very front of the property vector.
//!
//! Every composition keeps the hub prefix contiguous (`DegreeGroup` and
//! `HubDegreeSort` never move a node across the hub boundary), which is what
//! lets the GRASP-style cache-domain sizing in
//! [`MixenOpts::effective_block_side_domain`] treat `0..num_hub` as a pinned
//! value range.
//!
//! [`MixenOpts::effective_block_side_domain`]: crate::MixenOpts::effective_block_side_domain

use mixen_graph::{Classification, Graph, NodeId};

use crate::opts::RegularOrdering;

/// One relabel pass over the regular region.
///
/// `regulars` lists the *original* IDs of the regular nodes in their current
/// relabeled order: position `i` becomes new ID `i`. A pass permutes the
/// slice in place; `num_hub` is the length of the hub prefix the composition
/// maintains (0 when no hub pass runs). Passes must keep the hub prefix
/// contiguous: a node may move within `0..num_hub` or within `num_hub..r`,
/// never across the boundary — [`FilteredGraph::debug_validate`] and the
/// reorder property tests enforce this for every composition.
///
/// [`FilteredGraph::debug_validate`]: crate::FilteredGraph::debug_validate
pub trait ReorderPolicy: Sync {
    /// Short pass name, for logs and obs.
    fn name(&self) -> &'static str;

    /// Permutes `regulars` in place (see the trait docs for the contract).
    fn apply(&self, g: &Graph, class: &Classification, num_hub: usize, regulars: &mut [NodeId]);
}

/// The paper's hub relocation: stable partition with hubs first.
pub struct HubExtract;

impl ReorderPolicy for HubExtract {
    fn name(&self) -> &'static str {
        "hub-extract"
    }

    fn apply(&self, _g: &Graph, class: &Classification, _num_hub: usize, regulars: &mut [NodeId]) {
        // Stable partition: hubs keep their relative order at the front,
        // non-hubs theirs behind.
        let mut hubs = Vec::new();
        let mut rest = Vec::new();
        for &u in regulars.iter() {
            if class.is_hub(u) {
                hubs.push(u);
            } else {
                rest.push(u);
            }
        }
        regulars[..hubs.len()].copy_from_slice(&hubs);
        regulars[hubs.len()..].copy_from_slice(&rest);
    }
}

/// Full stable sort of the regular region by descending in-degree
/// (`RegularOrdering::ByInDegree`).
pub struct DegreeSort;

impl ReorderPolicy for DegreeSort {
    fn name(&self) -> &'static str {
        "degree-sort"
    }

    fn apply(&self, g: &Graph, _class: &Classification, _num_hub: usize, regulars: &mut [NodeId]) {
        regulars.sort_by_key(|&u| std::cmp::Reverse(g.in_degree(u)));
    }
}

/// The logarithmic degree class DBG groups by: nodes whose in-degrees share
/// a power-of-two range land in the same group and are never reordered
/// relative to each other.
#[inline]
fn degree_group(in_degree: usize) -> u32 {
    (in_degree + 1).ilog2()
}

/// Degree-Based Grouping over the non-hub suffix: coarse logarithmic degree
/// classes, higher classes first, stable within each class.
pub struct DegreeGroup;

impl ReorderPolicy for DegreeGroup {
    fn name(&self) -> &'static str {
        "degree-group"
    }

    fn apply(&self, g: &Graph, _class: &Classification, num_hub: usize, regulars: &mut [NodeId]) {
        regulars[num_hub..].sort_by_key(|&u| std::cmp::Reverse(degree_group(g.in_degree(u))));
    }
}

/// HubSort's second pass: descending in-degree sort of the hub prefix only.
pub struct HubDegreeSort;

impl ReorderPolicy for HubDegreeSort {
    fn name(&self) -> &'static str {
        "hub-degree-sort"
    }

    fn apply(&self, g: &Graph, _class: &Classification, num_hub: usize, regulars: &mut [NodeId]) {
        regulars[..num_hub].sort_by_key(|&u| std::cmp::Reverse(g.in_degree(u)));
    }
}

/// The pass composition behind each [`RegularOrdering`], applied left to
/// right by `FilteredGraph::from_classification`.
pub fn passes(ordering: RegularOrdering) -> &'static [&'static dyn ReorderPolicy] {
    static HUB_EXTRACT: HubExtract = HubExtract;
    static DEGREE_SORT: DegreeSort = DegreeSort;
    static DEGREE_GROUP: DegreeGroup = DegreeGroup;
    static HUB_DEGREE_SORT: HubDegreeSort = HubDegreeSort;
    static ORIGINAL: [&dyn ReorderPolicy; 0] = [];
    static HUBS_FIRST: [&dyn ReorderPolicy; 1] = [&HUB_EXTRACT];
    static BY_IN_DEGREE: [&dyn ReorderPolicy; 1] = [&DEGREE_SORT];
    static DBG: [&dyn ReorderPolicy; 2] = [&HUB_EXTRACT, &DEGREE_GROUP];
    static HUBSORT: [&dyn ReorderPolicy; 2] = [&HUB_EXTRACT, &HUB_DEGREE_SORT];
    match ordering {
        RegularOrdering::Original => &ORIGINAL,
        RegularOrdering::HubsFirst => &HUBS_FIRST,
        RegularOrdering::ByInDegree => &BY_IN_DEGREE,
        RegularOrdering::Dbg => &DBG,
        RegularOrdering::HubSort => &HUBSORT,
    }
}

/// A `--reorder` value: a concrete policy, or `auto` — let the §5
/// performance model pick from (α, β, hub fraction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderChoice {
    /// `PerfModel::preferred_ordering` decides at preprocessing time.
    Auto,
    /// A fixed policy.
    Fixed(RegularOrdering),
}

impl ReorderChoice {
    /// Parses a `--reorder` flag value (`auto` or a policy name).
    pub fn parse(s: &str) -> Option<Self> {
        if s == "auto" {
            return Some(ReorderChoice::Auto);
        }
        RegularOrdering::parse(s).map(ReorderChoice::Fixed)
    }

    /// Resolves the choice against a concrete graph: `Auto` classifies `g`
    /// and asks the performance model, `Fixed` is returned as-is.
    pub fn resolve(self, g: &Graph) -> RegularOrdering {
        match self {
            ReorderChoice::Fixed(o) => o,
            ReorderChoice::Auto => {
                let class = Classification::of(g);
                crate::model::PerfModel::from_classification(
                    g,
                    &class,
                    crate::MixenOpts::default().block_side,
                )
                .preferred_ordering()
            }
        }
    }
}

/// Policy selection from the §5 model statistics (see
/// `PerfModel::preferred_ordering` for the entry point).
///
/// The decision tree is calibrated against the shoot-out measurements in
/// EXPERIMENTS.md ("Reordering shoot-out"):
///
/// * Degenerate ends keep the paper's plain hub prefix (`HubsFirst`): a
///   negligible regular region (α ≤ 0.05, the weibo profile) leaves nothing
///   worth reordering, and α ≈ β ≈ 1 means classification found no
///   connectivity structure at all (the uniform urand/road profiles), where
///   every intra-region reordering measured as a wash — so the cheapest
///   relabel wins.
/// * Strong skew picks `HubSort`: either the hub prefix dominates the
///   regular region (hub fraction ≥ 0.5 — the web-like wiki profile,
///   measured 1.5× over the identity relabel) or nearly all edge mass is
///   regular↔regular (β ≥ 0.9 — the synthetic power-law rmat/kron
///   profiles, measured 1.3×). Ordering the hot prefix by in-degree packs
///   the most-referenced property words into the fewest cache lines.
/// * The moderate-skew middle (track/pld-like) regroups the heavy non-hub
///   tail into logarithmic degree classes: `Dbg`.
pub fn select_policy(alpha: f64, beta: f64, hub_frac: f64) -> RegularOrdering {
    if alpha <= 0.05 || (alpha >= 0.95 && beta >= 0.95) {
        return RegularOrdering::HubsFirst;
    }
    if hub_frac >= 0.5 || beta >= 0.9 {
        return RegularOrdering::HubSort;
    }
    RegularOrdering::Dbg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::nid;

    /// A small skewed graph: node 0 receives from everyone, 1 from half.
    fn skewed() -> Graph {
        let mut edges = Vec::new();
        for u in 1..12u32 {
            edges.push((u, 0));
            if u % 2 == 0 {
                edges.push((u, 1));
            }
            edges.push((0, u));
        }
        Graph::from_pairs(12, &edges)
    }

    fn regular_ids(g: &Graph, class: &Classification) -> Vec<NodeId> {
        (0..nid(g.n()))
            .filter(|&u| class.class(u) == mixen_graph::NodeClass::Regular)
            .collect()
    }

    #[test]
    fn every_composition_is_a_permutation() {
        let g = skewed();
        let class = Classification::of(&g);
        let base = regular_ids(&g, &class);
        let num_hub = base.iter().filter(|&&u| class.is_hub(u)).count();
        for ordering in RegularOrdering::ALL {
            let mut ids = base.clone();
            let hubs = if ordering == RegularOrdering::Original {
                0
            } else {
                num_hub
            };
            for pass in passes(ordering) {
                pass.apply(&g, &class, hubs, &mut ids);
            }
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, base, "{} lost or duplicated nodes", ordering.name());
        }
    }

    #[test]
    fn hub_passes_keep_the_prefix_contiguous() {
        let g = skewed();
        let class = Classification::of(&g);
        let base = regular_ids(&g, &class);
        let num_hub = base.iter().filter(|&&u| class.is_hub(u)).count();
        assert!(num_hub > 0, "test graph must have hubs");
        for ordering in [
            RegularOrdering::HubsFirst,
            RegularOrdering::Dbg,
            RegularOrdering::HubSort,
        ] {
            let mut ids = base.clone();
            for pass in passes(ordering) {
                pass.apply(&g, &class, num_hub, &mut ids);
            }
            for (i, &u) in ids.iter().enumerate() {
                assert_eq!(
                    class.is_hub(u),
                    i < num_hub,
                    "{}: position {i} violates the hub prefix",
                    ordering.name()
                );
            }
        }
    }

    #[test]
    fn degree_group_is_coarser_than_degree_sort() {
        // Degrees 1 and 2 share a logarithmic group; 0 and 7 do not.
        assert_eq!(degree_group(1), degree_group(2));
        assert_ne!(degree_group(0), degree_group(7));
        // Groups are monotone in degree.
        assert!(degree_group(100) > degree_group(10));
    }

    #[test]
    fn hub_degree_sort_orders_the_prefix_descending() {
        let g = skewed();
        let class = Classification::of(&g);
        let mut ids = regular_ids(&g, &class);
        let num_hub = ids.iter().filter(|&&u| class.is_hub(u)).count();
        for pass in passes(RegularOrdering::HubSort) {
            pass.apply(&g, &class, num_hub, &mut ids);
        }
        let degs: Vec<usize> = ids[..num_hub].iter().map(|&u| g.in_degree(u)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degs {degs:?}");
    }

    #[test]
    fn choice_parses_every_policy_and_auto() {
        assert_eq!(ReorderChoice::parse("auto"), Some(ReorderChoice::Auto));
        for o in RegularOrdering::ALL {
            assert_eq!(
                ReorderChoice::parse(o.name()),
                Some(ReorderChoice::Fixed(o))
            );
        }
        assert_eq!(ReorderChoice::parse("fastest"), None);
    }

    #[test]
    fn selection_covers_the_three_profiles() {
        // The measured (α, β, hub_frac) of the shoot-out profiles at small
        // scale — the selector must reproduce the calibrated picks.
        // Uniform (urand): no classification structure, everything a wash.
        assert_eq!(select_policy(1.0, 1.0, 0.52), RegularOrdering::HubsFirst);
        // Skewed synthetic (rmat): edge mass almost all regular↔regular.
        assert_eq!(select_policy(0.55, 0.98, 0.28), RegularOrdering::HubSort);
        // Web-like (wiki): the hub prefix dominates the regular region.
        assert_eq!(select_policy(0.22, 0.75, 0.72), RegularOrdering::HubSort);
        // Moderate skew (track/pld): regroup the heavy non-hub tail.
        assert_eq!(select_policy(0.46, 0.59, 0.27), RegularOrdering::Dbg);
        assert_eq!(select_policy(0.56, 0.83, 0.18), RegularOrdering::Dbg);
        // Degenerate ends fall back to the paper's default.
        assert_eq!(select_policy(0.0, 0.0, 0.0), RegularOrdering::HubsFirst);
        assert_eq!(select_policy(0.01, 0.03, 1.0), RegularOrdering::HubsFirst);
    }
}
