//! Observability: counters, span timers, and machine-readable reports.
//!
//! The paper's argument is carried by per-phase and per-kernel accounting
//! (Fig. 4's phase decomposition, Tables 3–4), so this module gives every
//! layer of the engine one dependency-free instrumentation seam:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomics, safe to bump from inside
//!   the parallel Scatter/Gather regions.
//! * [`Metrics`] — the fixed registry of everything the engines count
//!   (edges scattered/gathered, bin bytes streamed, static-bin reuse vs.
//!   recompute, BFS sparse/dense level choices, supervision events).
//!   [`Metrics::snapshot`] freezes it into a plain [`MetricsSnapshot`]
//!   that reports can carry by value.
//! * [`Span`] — an RAII wall-clock timer accumulating into an `f64` sink;
//!   it replaces the ad-hoc `Instant::now()` pairs the engines used to
//!   scatter around.
//! * [`Json`] — a hand-rolled (offline-safe, no serde) JSON tree with a
//!   renderer and a small validating parser, so `RunReport`, `PhaseStats`
//!   and `MetricsSnapshot` can be emitted as machine-readable sidecars and
//!   round-trip-checked in tests.
//!
//! Counter semantics ("exactness contract"):
//!
//! * `edges_scattered` / `edges_gathered` advance by the regular-subgraph
//!   edge count (`BlockedSubgraph::nnz`) per Main-Phase iteration — every
//!   nonempty block streams its full compressed slot list per call, so
//!   per-call totals are exact, not sampled.
//! * `bin_bytes_streamed` advances by `compressed slots × bytes per slot`
//!   per Scatter *and* per Gather: the counter is total dynamic-bin traffic
//!   in both directions (bytes written into the bins, plus bytes drained
//!   from them), so one full Scatter+Gather round counts the slot bytes
//!   twice. Before PR 5 only the Scatter half was counted, under-reporting
//!   bin traffic by ~2×. A slot is `size_of::<V>()` bytes under the
//!   full-width `F32` bin encoding and 2 bytes under the compressed
//!   (`F16`/`Q16`) encodings; `bin_bytes_saved` counts the difference —
//!   traffic a compressed encoding avoided relative to full-width slots
//!   (Scatter side; the Gather drain saves the same amount again but the
//!   counter tracks the written stream once per round so the ratio
//!   `saved / (saved + streamed_scatter_half)` stays interpretable).
//! * `kernel_width` / `prefetch_distance` / `bin_encoding` are gauges
//!   mirroring the raw-speed knobs the engine was built with
//!   (`MixenOpts::{kernel_width, prefetch_distance, bin_encoding}`; the
//!   encoding gauge stamps `BinEncoding::encoding_id` — the *effective*
//!   one per run, which falls back to 0/F32 for property types that cannot
//!   compress).
//! * `tasks_split` / `max_task_nnz` are gauges describing the §4.2
//!   nnz-proportional task split of the current partition: how many extra
//!   tasks the balancer carved beyond the base grid (scatter-row splits +
//!   gather-column chunks) and the heaviest single task in edges (the
//!   straggler bound). Stamped at engine construction from
//!   `BlockedSubgraph::split_stats`.
//! * `static_bin_recomputes` counts every `StaticBin::compute` (the first
//!   Pre-Phase build *and* any redundant rebuild: the cache-step ablation,
//!   or a supervised batch re-entry); `static_bin_reuses` counts Cache-step
//!   re-primes from the already-built bin. `recomputes - 1` per logical run
//!   is therefore redundant work.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mixen_graph::GraphError;

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Monotonic event counter; relaxed atomics, cheap enough for kernel code.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: statistics counter — totals matter, ordering does not.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: snapshots are read at quiescent points (after joins).
        self.0.load(Ordering::Relaxed)
    }

    fn set(&self, v: u64) {
        // ordering: merge/override path, only used between runs.
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Last-write-wins level indicator (sizes, lengths); same storage as
/// [`Counter`], different semantics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Records the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        // ordering: last-write-wins level indicator; any ordering is fine.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: snapshots are read at quiescent points (after joins).
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the level to `v` if it is higher than the current one —
    /// high-water-mark semantics for values raced by several threads
    /// (e.g. the largest request batch any serve worker drained).
    #[inline]
    pub fn max(&self, v: u64) {
        // ordering: high-water mark — only the final maximum matters.
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// The fixed counter catalogue. Names are the JSON keys of the `counters`
/// object in every report; see DESIGN.md §6d for the full schema.
///
/// The `pool_*` entries and the durability/supervision block
/// (`checkpoints_written` … `lane_degradations`) are *report-level*
/// counters: they describe the process-wide `mixen-pool` executor or
/// supervision events of one run rather than one engine, so they are
/// written into report snapshots by the supervised runner (`pool_workers`
/// and `watchdog_wakeups` with gauge semantics, the rest as per-run
/// counts) and have no field in the live [`Metrics`] registry.
///
/// The serving block (`requests_served` … `max_batch_size`) is owned by the
/// `mixen-serve` request path: the server keeps its own [`Metrics`] registry
/// and exposes it at `/metrics`, merged with the resident engine's kernel
/// counters (which use the same catalogue, so the merge is by name).
pub const COUNTER_NAMES: [&str; 35] = [
    "edges_scattered",
    "edges_gathered",
    "bin_bytes_streamed",
    "bin_bytes_saved",
    "dynamic_bin_slots",
    "tasks_split",
    "max_task_nnz",
    "reorder_policy",
    "relabel_micros",
    "hub_domain_side",
    "kernel_width",
    "prefetch_distance",
    "bin_encoding",
    "static_bin_entries",
    "static_bin_reuses",
    "static_bin_recomputes",
    "bfs_sparse_levels",
    "bfs_dense_levels",
    "load_retries",
    "engine_fallbacks",
    "batch_reentries",
    "fault_bisect_steps",
    "pool_workers",
    "pool_tasks_executed",
    "checkpoints_written",
    "checkpoint_bytes",
    "resumes",
    "watchdog_wakeups",
    "deadline_exceeded",
    "lane_degradations",
    "requests_served",
    "requests_rejected",
    "snapshot_swaps",
    "request_batches",
    "max_batch_size",
];

/// The live metrics registry one engine (or runner) owns. All fields are
/// interior-mutable so `&Metrics` can be threaded through parallel kernels.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Regular edges whose messages entered the dynamic bins (per Scatter).
    pub edges_scattered: Counter,
    /// Regular edges drained from the bins into accumulators (per Gather).
    pub edges_gathered: Counter,
    /// Bytes written into the dynamic bins (compressed slots × bytes per
    /// slot under the active bin encoding).
    pub bin_bytes_streamed: Counter,
    /// Bytes a compressed bin encoding avoided writing relative to
    /// full-width slots (per Scatter).
    pub bin_bytes_saved: Counter,
    /// Compressed message slots of the current dynamic bins.
    pub dynamic_bin_slots: Gauge,
    /// §4.2 balancer subdivisions of the current partition (scatter-row
    /// splits + gather-column chunks beyond the base grid).
    pub tasks_split: Gauge,
    /// Heaviest scatter or gather task of the current partition, in edges.
    pub max_task_nnz: Gauge,
    /// Relabel policy the engine was built with
    /// (`RegularOrdering::policy_id`: 0 original, 1 hubs-first,
    /// 2 by-in-degree, 3 dbg, 4 hubsort).
    pub reorder_policy: Gauge,
    /// Wall-clock cost of the regular-region relabel passes, in
    /// microseconds.
    pub relabel_micros: Gauge,
    /// Effective block side after GRASP hub-domain pinning, in nodes
    /// (equals the plain effective side when pinning is disengaged).
    pub hub_domain_side: Gauge,
    /// Inner-loop unroll width of the SCGA kernels (1, 2, 4 or 8).
    pub kernel_width: Gauge,
    /// Software-prefetch look-ahead of the SCGA kernels (0 = disabled).
    pub prefetch_distance: Gauge,
    /// Effective dynamic-bin value encoding
    /// (`BinEncoding::encoding_id`: 0 f32, 1 f16, 2 q16).
    pub bin_encoding: Gauge,
    /// Entries in the current static (seed-cache) bin.
    pub static_bin_entries: Gauge,
    /// Cache-step re-primes served from the static bin.
    pub static_bin_reuses: Counter,
    /// `StaticBin::compute` invocations (first build + redundant rebuilds).
    pub static_bin_recomputes: Counter,
    /// BFS levels expanded with the frontier-sparse kernel.
    pub bfs_sparse_levels: Counter,
    /// BFS levels expanded with the dense fallback kernel.
    pub bfs_dense_levels: Counter,
    /// Transient graph-load retries (runner).
    pub load_retries: Counter,
    /// Mixen-to-pull-baseline degradations (runner).
    pub engine_fallbacks: Counter,
    /// Supervised engine re-entries beyond the first batch (runner).
    pub batch_reentries: Counter,
    /// Single-iteration re-runs spent locating a fault inside a batch.
    pub fault_bisect_steps: Counter,
    /// Requests answered with any response, including error statuses
    /// (serve).
    pub requests_served: Counter,
    /// Requests turned away by admission control with a 429 (serve).
    pub requests_rejected: Counter,
    /// Rank snapshots published to the readers, the initial one included
    /// (serve).
    pub snapshot_swaps: Counter,
    /// Batches of queued requests drained by the workers (serve);
    /// `requests_served / request_batches` is the mean batch size.
    pub request_batches: Counter,
    /// Largest single batch any worker drained (serve, high-water mark).
    pub max_batch_size: Gauge,
}

impl Metrics {
    /// Freezes the registry into a plain value snapshot. The snapshot always
    /// carries the full [`COUNTER_NAMES`] catalogue: entries with no live
    /// field (the report-level `pool_*` pair) stay zero until the supervised
    /// runner stamps them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, value) in self.entries() {
            snap.add(name, value);
        }
        snap
    }

    /// `(name, value)` pairs in catalogue order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        [
            ("edges_scattered", self.edges_scattered.get()),
            ("edges_gathered", self.edges_gathered.get()),
            ("bin_bytes_streamed", self.bin_bytes_streamed.get()),
            ("bin_bytes_saved", self.bin_bytes_saved.get()),
            ("dynamic_bin_slots", self.dynamic_bin_slots.get()),
            ("tasks_split", self.tasks_split.get()),
            ("max_task_nnz", self.max_task_nnz.get()),
            ("reorder_policy", self.reorder_policy.get()),
            ("relabel_micros", self.relabel_micros.get()),
            ("hub_domain_side", self.hub_domain_side.get()),
            ("kernel_width", self.kernel_width.get()),
            ("prefetch_distance", self.prefetch_distance.get()),
            ("bin_encoding", self.bin_encoding.get()),
            ("static_bin_entries", self.static_bin_entries.get()),
            ("static_bin_reuses", self.static_bin_reuses.get()),
            ("static_bin_recomputes", self.static_bin_recomputes.get()),
            ("bfs_sparse_levels", self.bfs_sparse_levels.get()),
            ("bfs_dense_levels", self.bfs_dense_levels.get()),
            ("load_retries", self.load_retries.get()),
            ("engine_fallbacks", self.engine_fallbacks.get()),
            ("batch_reentries", self.batch_reentries.get()),
            ("fault_bisect_steps", self.fault_bisect_steps.get()),
            ("requests_served", self.requests_served.get()),
            ("requests_rejected", self.requests_rejected.get()),
            ("snapshot_swaps", self.snapshot_swaps.get()),
            ("request_batches", self.request_batches.get()),
            ("max_batch_size", self.max_batch_size.get()),
        ]
        .into_iter()
    }

    /// Zeroes every counter and gauge (per-run measurements on a long-lived
    /// engine).
    pub fn reset(&self) {
        self.edges_scattered.set(0);
        self.edges_gathered.set(0);
        self.bin_bytes_streamed.set(0);
        self.bin_bytes_saved.set(0);
        self.dynamic_bin_slots.set(0);
        self.tasks_split.set(0);
        self.max_task_nnz.set(0);
        self.reorder_policy.set(0);
        self.relabel_micros.set(0);
        self.hub_domain_side.set(0);
        self.kernel_width.set(0);
        self.prefetch_distance.set(0);
        self.bin_encoding.set(0);
        self.static_bin_entries.set(0);
        self.static_bin_reuses.set(0);
        self.static_bin_recomputes.set(0);
        self.bfs_sparse_levels.set(0);
        self.bfs_dense_levels.set(0);
        self.load_retries.set(0);
        self.engine_fallbacks.set(0);
        self.batch_reentries.set(0);
        self.fault_bisect_steps.set(0);
        self.requests_served.set(0);
        self.requests_rejected.set(0);
        self.snapshot_swaps.set(0);
        self.request_batches.set(0);
        self.max_batch_size.set(0);
    }
}

impl Clone for Metrics {
    /// Clones current values into a fresh, independent registry (a cloned
    /// engine keeps its history but stops sharing it).
    fn clone(&self) -> Self {
        let m = Metrics::default();
        m.edges_scattered.set(self.edges_scattered.get());
        m.edges_gathered.set(self.edges_gathered.get());
        m.bin_bytes_streamed.set(self.bin_bytes_streamed.get());
        m.bin_bytes_saved.set(self.bin_bytes_saved.get());
        m.dynamic_bin_slots.set(self.dynamic_bin_slots.get());
        m.tasks_split.set(self.tasks_split.get());
        m.max_task_nnz.set(self.max_task_nnz.get());
        m.reorder_policy.set(self.reorder_policy.get());
        m.relabel_micros.set(self.relabel_micros.get());
        m.hub_domain_side.set(self.hub_domain_side.get());
        m.kernel_width.set(self.kernel_width.get());
        m.prefetch_distance.set(self.prefetch_distance.get());
        m.bin_encoding.set(self.bin_encoding.get());
        m.static_bin_entries.set(self.static_bin_entries.get());
        m.static_bin_reuses.set(self.static_bin_reuses.get());
        m.static_bin_recomputes
            .set(self.static_bin_recomputes.get());
        m.bfs_sparse_levels.set(self.bfs_sparse_levels.get());
        m.bfs_dense_levels.set(self.bfs_dense_levels.get());
        m.load_retries.set(self.load_retries.get());
        m.engine_fallbacks.set(self.engine_fallbacks.get());
        m.batch_reentries.set(self.batch_reentries.get());
        m.fault_bisect_steps.set(self.fault_bisect_steps.get());
        m.requests_served.set(self.requests_served.get());
        m.requests_rejected.set(self.requests_rejected.get());
        m.snapshot_swaps.set(self.snapshot_swaps.get());
        m.request_batches.set(self.request_batches.get());
        m.max_batch_size.set(self.max_batch_size.get());
        m
    }
}

/// A frozen, plain-value view of a [`Metrics`] registry — what reports carry
/// and serialize. Also the accumulator the supervised runner adds its own
/// (single-threaded) events into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: Vec<(&'static str, u64)>,
}

impl Default for MetricsSnapshot {
    /// The full catalogue, all zeros — so JSON output always carries every
    /// key, even for runs that never touched the engine.
    fn default() -> Self {
        Self {
            counters: COUNTER_NAMES.iter().map(|&n| (n, 0)).collect(),
        }
    }
}

impl MetricsSnapshot {
    /// Value of `name` (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Adds `delta` to `name`, inserting it when new.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Overwrites `name` with `value` (gauge semantics), inserting it when
    /// new. Used for level-style entries such as `pool_workers`.
    pub fn set(&mut self, name: &'static str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.counters.push((name, value)),
        }
    }

    /// Adds every counter of `other` into `self` (gauges included —
    /// merging distinct runs is the caller's judgement call).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for &(name, v) in &other.counters {
            self.add(name, v);
        }
    }

    /// `(name, value)` pairs in catalogue order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// The `counters` JSON object (`{"edges_scattered": 123, ...}`).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.counters
                .iter()
                .map(|&(n, v)| (n.to_string(), Json::from_u64(v)))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Span timers
// ---------------------------------------------------------------------------

/// RAII wall-clock span: accumulates elapsed seconds into its sink on drop.
///
/// ```
/// # use mixen_core::obs::Span;
/// let mut scatter_seconds = 0.0;
/// {
///     let _span = Span::new(&mut scatter_seconds);
///     // ... timed region ...
/// }
/// assert!(scatter_seconds >= 0.0);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    start: Instant,
    sink: &'a mut f64,
}

impl<'a> Span<'a> {
    /// Starts timing; the elapsed seconds are added to `sink` when the span
    /// drops.
    pub fn new(sink: &'a mut f64) -> Self {
        Self {
            start: Instant::now(),
            sink,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        *self.sink += self.start.elapsed().as_secs_f64();
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// A JSON value tree. Hand-rolled because the build environment is offline:
/// no serde, no external crates — just enough JSON for reports and their
/// round-trip tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are `f64`; non-finite values render as the strings
    /// `"inf"` / `"-inf"` / `"nan"` (bare tokens would not be valid JSON).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered members (reports keep a stable key order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from an unsigned counter (u64 → f64; counters in practice
    /// stay far below 2^53, where the mapping is exact).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A number that may be non-finite (`∞` residuals serialize as `"inf"`).
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("nan".into())
        } else if v > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, decoding the non-finite string spellings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The numeric value as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                // lint: allow(truncation) reason=guarded: non-negative integral f64 within 2^53
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation and a trailing newline —
    /// the sidecar-file format.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }

    /// Parses `src` as a single JSON value (trailing whitespace allowed).
    /// This is the validating half of the round-trip tests and of the CI
    /// smoke check; it accepts standard JSON, nothing more.
    ///
    /// Nesting is capped at [`MAX_JSON_DEPTH`]: the parser recurses per
    /// container level, so an unbounded input like `[[[[…` would otherwise
    /// overflow the stack — remotely reachable once bodies arrive over the
    /// network in `mixen-serve`. Hostile depth surfaces as a typed
    /// [`GraphError::Capacity`], never a crash.
    pub fn parse(src: &str) -> Result<Json, GraphError> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let val = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(parse_err(pos, "trailing content after JSON value"));
        }
        Ok(val)
    }
}

/// Deepest container nesting [`Json::parse`] accepts. Far above anything a
/// report produces (reports nest 3–4 levels), far below stack exhaustion.
pub const MAX_JSON_DEPTH: usize = 96;

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Normalized by from_f64; direct Num(non-finite) still must emit
        // valid JSON.
        Json::from_f64(v).write(out, None, 0);
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        // lint: allow(truncation) reason=guarded: integral f64 within 2^53 renders exactly
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint: allow(truncation) reason=char→u32 is a lossless widening (scalar values are 21-bit)
            c if (c as u32) < 0x20 => {
                // lint: allow(truncation) reason=char→u32 is a lossless widening (scalar values are 21-bit)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

// --- parser ----------------------------------------------------------------

fn parse_err(pos: usize, msg: &str) -> GraphError {
    GraphError::Format(format!("json: {msg} at byte {pos}"))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), GraphError> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(parse_err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, GraphError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(parse_err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, GraphError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(parse_err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, GraphError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| parse_err(start, "invalid utf-8 in number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| parse_err(start, "invalid number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, GraphError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(parse_err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| parse_err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| parse_err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| parse_err(*pos, "invalid \\u escape"))?;
                        // Surrogates are not produced by our renderer;
                        // reject rather than mis-decode them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| parse_err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(parse_err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| parse_err(*pos, "invalid utf-8 in string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| parse_err(*pos, "unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Rejects a container opening beyond [`MAX_JSON_DEPTH`] levels.
fn check_depth(depth: usize) -> Result<(), GraphError> {
    if depth >= MAX_JSON_DEPTH {
        return Err(GraphError::Capacity {
            what: "json nesting depth",
            requested: depth as u64 + 1,
            limit: MAX_JSON_DEPTH as u64,
        });
    }
    Ok(())
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, GraphError> {
    check_depth(depth)?;
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(parse_err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, GraphError> {
    check_depth(depth)?;
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos, depth + 1)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(parse_err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update() {
        let m = Metrics::default();
        m.edges_scattered.add(10);
        m.edges_scattered.inc();
        m.dynamic_bin_slots.set(7);
        assert_eq!(m.edges_scattered.get(), 11);
        assert_eq!(m.dynamic_bin_slots.get(), 7);
        let snap = m.snapshot();
        assert_eq!(snap.get("edges_scattered"), 11);
        assert_eq!(snap.get("dynamic_bin_slots"), 7);
        assert_eq!(snap.get("no_such_counter"), 0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_covers_the_whole_catalogue() {
        let snap = Metrics::default().snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, COUNTER_NAMES.to_vec());
        assert_eq!(MetricsSnapshot::default(), snap);
    }

    #[test]
    fn snapshot_merge_adds_by_name() {
        let mut a = MetricsSnapshot::default();
        a.add("edges_scattered", 5);
        let mut b = MetricsSnapshot::default();
        b.add("edges_scattered", 2);
        b.add("load_retries", 1);
        a.merge(&b);
        assert_eq!(a.get("edges_scattered"), 7);
        assert_eq!(a.get("load_retries"), 1);
    }

    #[test]
    fn metrics_clone_is_independent() {
        let a = Metrics::default();
        a.edges_gathered.add(3);
        let b = a.clone();
        assert_eq!(b.edges_gathered.get(), 3);
        a.edges_gathered.add(1);
        assert_eq!(b.edges_gathered.get(), 3);
    }

    #[test]
    fn span_accumulates_on_drop() {
        let mut sink = 0.0;
        {
            let _s = Span::new(&mut sink);
            std::hint::black_box(0);
        }
        let first = sink;
        assert!(first >= 0.0);
        {
            let _s = Span::new(&mut sink);
            std::hint::black_box(0);
        }
        assert!(sink >= first);
    }

    #[test]
    fn json_renders_compact_and_pretty() {
        let j = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Str("x\"y".into())),
        ]);
        assert_eq!(j.render(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
        let pretty = j.render_pretty();
        assert!(pretty.contains("\n  \"a\": 1,"));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), j);
    }

    #[test]
    fn json_numbers_render_integers_exactly() {
        assert_eq!(Json::from_u64(0).render(), "0");
        assert_eq!(Json::from_u64(123_456_789).render(), "123456789");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn json_non_finite_numbers_stay_valid() {
        assert_eq!(Json::from_f64(f64::INFINITY).render(), r#""inf""#);
        assert_eq!(Json::from_f64(f64::NEG_INFINITY).render(), r#""-inf""#);
        assert_eq!(Json::from_f64(f64::NAN).render(), r#""nan""#);
        assert_eq!(
            Json::parse(r#""inf""#).unwrap().as_f64(),
            Some(f64::INFINITY)
        );
        // Even a raw Num(inf) must not emit an invalid bare token.
        assert_eq!(Json::Num(f64::INFINITY).render(), r#""inf""#);
    }

    #[test]
    fn json_round_trips_escapes_and_unicode() {
        let j = Json::Obj(vec![
            ("tab\t".into(), Json::Str("line1\nline2\\end\u{1}".into())),
            ("ünïcode".into(), Json::Str("héllo → wörld".into())),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
        assert_eq!(Json::parse(&j.render_pretty()).unwrap(), j);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\" 1}",
            "[1 2]",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let g = Gauge::default();
        g.max(5);
        g.max(3);
        assert_eq!(g.get(), 5);
        g.max(9);
        assert_eq!(g.get(), 9);
    }

    /// A remote body of pathological nesting must come back as a typed
    /// capacity error, not a stack overflow — `Json::parse` fronts network
    /// input in `mixen-serve`.
    #[test]
    fn json_parse_caps_hostile_nesting_depth() {
        for hostile in [
            "[".repeat(100_000),
            format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000)),
            "{\"a\":".repeat(100_000),
            format!("{}[{{\"deep\": true}}]{}", "[".repeat(200), "]".repeat(200)),
        ] {
            match Json::parse(&hostile) {
                Err(GraphError::Capacity {
                    what,
                    requested,
                    limit,
                }) => {
                    assert_eq!(what, "json nesting depth");
                    assert_eq!(limit, MAX_JSON_DEPTH as u64);
                    assert!(requested > limit);
                }
                other => panic!("expected a capacity error, got {other:?}"),
            }
        }
    }

    #[test]
    fn json_parse_accepts_depths_below_the_cap() {
        let deep = format!(
            "{}42{}",
            "[".repeat(MAX_JSON_DEPTH - 1),
            "]".repeat(MAX_JSON_DEPTH - 1)
        );
        let mut expect = Json::Num(42.0);
        for _ in 0..MAX_JSON_DEPTH - 1 {
            expect = Json::Arr(vec![expect]);
        }
        assert_eq!(Json::parse(&deep).unwrap(), expect);
    }

    #[test]
    fn json_parse_accepts_standard_forms() {
        assert_eq!(
            Json::parse(" { \"k\" : [ -1.5e3 , 2 ] } ").unwrap(),
            Json::Obj(vec![(
                "k".into(),
                Json::Arr(vec![Json::Num(-1500.0), Json::Num(2.0)])
            )])
        );
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn json_accessors() {
        let j = Json::Obj(vec![
            ("n".into(), Json::Num(42.0)),
            ("s".into(), Json::Str("hi".into())),
        ]);
        assert_eq!(j.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn snapshot_to_json_is_an_object_of_integers() {
        let m = Metrics::default();
        m.edges_scattered.add(9);
        let j = m.snapshot().to_json();
        assert_eq!(j.get("edges_scattered").unwrap().as_u64(), Some(9));
        let parsed = Json::parse(&j.render_pretty()).unwrap();
        assert_eq!(parsed, j);
    }
}
