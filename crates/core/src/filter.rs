//! Graph filtering and relabeling (§4.1).
//!
//! In a single logical scan, Mixen classifies every node by connectivity,
//! assigns new IDs in the order `[hub regulars | other regulars | seeds |
//! sinks | isolated]` — preserving relative order inside each bucket, so the
//! original structure is disturbed as little as possible — and extracts the
//! mixed representation:
//!
//! * `reg_csr` — CSR of the regular×regular subgraph (the Main-Phase input),
//! * `seed_csr` — CSR of seed→regular edges (the Pre-Phase input),
//! * `sink_csc` — CSC rows for sink nodes over their in-neighbours
//!   (the Post-Phase input; covers regular→sink *and* seed→sink edges).
//!
//! Every edge of the original graph lands in exactly one of the three
//! sub-structures (verified by tests), so no redundant pointer entries for
//! zero-degree directions are ever scanned again during iteration.

use mixen_graph::nid;
use mixen_graph::{Classification, Csr, Graph, GraphError, NodeClass, NodeId};

use crate::obs::Span;
use crate::opts::RegularOrdering;
use crate::reorder;

/// The filtered, relabeled form of a graph (Mixen's preprocessing output).
#[derive(Clone, Debug)]
pub struct FilteredGraph {
    n: usize,
    m: usize,
    perm: Vec<NodeId>,
    inv: Vec<NodeId>,
    num_hub: usize,
    num_regular: usize,
    num_seed: usize,
    num_sink: usize,
    num_isolated: usize,
    reg_csr: Csr,
    seed_csr: Csr,
    sink_csc: Csr,
    out_degree: Vec<u32>,
    /// The regular-range ordering this graph was built with; recorded so
    /// [`FilteredGraph::debug_validate`] knows which stability guarantees
    /// apply.
    ordering: RegularOrdering,
    /// Wall-clock cost of the regular-region relabel passes (the
    /// `relabel_micros` obs gauge).
    relabel_seconds: f64,
}

impl FilteredGraph {
    /// Filters `g` with hub relocation enabled (the paper's default).
    pub fn new(g: &Graph) -> Self {
        Self::with_ordering(g, RegularOrdering::HubsFirst)
    }

    /// Filters `g` with an explicit regular-range ordering (step 2 of the
    /// filtering procedure; `Original` ablates hub relocation away).
    pub fn with_ordering(g: &Graph, ordering: RegularOrdering) -> Self {
        let class = Classification::of(g);
        Self::from_classification(g, &class, ordering)
    }

    /// Filters `g` reusing an existing classification.
    pub fn from_classification(
        g: &Graph,
        class: &Classification,
        ordering: RegularOrdering,
    ) -> Self {
        let n = g.n();
        // Class census: regular nodes (in original order) go through the
        // reorder passes; the other classes keep stable cursor assignment.
        let mut regulars: Vec<NodeId> = Vec::new();
        let (mut num_seed, mut num_sink, mut num_isolated) = (0usize, 0usize, 0usize);
        for u in 0..nid(n) {
            match class.class(u) {
                NodeClass::Regular => regulars.push(u),
                NodeClass::Seed => num_seed += 1,
                NodeClass::Sink => num_sink += 1,
                NodeClass::Isolated => num_isolated += 1,
            }
        }
        let num_regular = regulars.len();

        // Only hubs that are also Regular sit at the front of the regular
        // range; `class.hub_count()` would overcount by including hub seeds
        // and hub sinks, which live in their own class ranges. `Original`
        // runs no pass, so no hub prefix exists.
        let num_hub = match ordering {
            RegularOrdering::Original => 0,
            _ => regulars.iter().filter(|&&u| class.is_hub(u)).count(),
        };

        // Apply the ordering's relabel passes left to right (§4.1 step 2 —
        // the composable form of hub relocation; see `crate::reorder`).
        let mut relabel_seconds = 0.0;
        {
            let _span = Span::new(&mut relabel_seconds);
            for pass in reorder::passes(ordering) {
                pass.apply(g, class, num_hub, &mut regulars);
            }
        }

        // Regular new IDs follow the pass output; seed/sink/isolated keep
        // original relative order via stable cursors behind the regulars.
        let mut perm = vec![0 as NodeId; n];
        for (new, &old) in regulars.iter().enumerate() {
            perm[old as usize] = nid(new);
        }
        let mut cursors = [
            num_regular,
            num_regular + num_seed,
            num_regular + num_seed + num_sink,
        ];
        for u in 0..nid(n) {
            let b = match class.class(u) {
                NodeClass::Regular => continue,
                NodeClass::Seed => 0,
                NodeClass::Sink => 1,
                NodeClass::Isolated => 2,
            };
            perm[u as usize] = nid(cursors[b]);
            cursors[b] += 1;
        }
        let mut inv = vec![0 as NodeId; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = nid(old);
        }
        let r = nid(num_regular);
        let seed_end = nid(num_regular + num_seed);

        // Sub-structure extraction straight from the existing CSR/CSC.
        let reg_csr = Csr::from_row_fn(num_regular, num_regular, |u_new, out| {
            let old = inv[u_new as usize];
            out.extend(
                g.out_neighbors(old)
                    .iter()
                    .map(|&v| perm[v as usize])
                    .filter(|&v| v < r),
            );
        });
        let seed_csr = Csr::from_row_fn(num_seed, num_regular, |s_local, out| {
            let old = inv[num_regular + s_local as usize];
            out.extend(
                g.out_neighbors(old)
                    .iter()
                    .map(|&v| perm[v as usize])
                    .filter(|&v| v < r),
            );
        });
        let sink_csc = Csr::from_row_fn(num_sink, num_regular + num_seed, |k_local, out| {
            let old = inv[num_regular + num_seed + k_local as usize];
            out.extend(
                g.in_neighbors(old)
                    .iter()
                    .map(|&v| perm[v as usize])
                    .inspect(|&v| {
                        debug_assert!(v < seed_end, "sink in-neighbor must be regular/seed")
                    }),
            );
        });

        let mut out_degree = vec![0u32; n];
        for old in 0..n {
            out_degree[perm[old] as usize] = nid(g.out_degree(nid(old)));
        }

        Self {
            n,
            m: g.m(),
            perm,
            inv,
            num_hub,
            num_regular,
            num_seed,
            num_sink,
            num_isolated,
            reg_csr,
            seed_csr,
            sink_csc,
            out_degree,
            ordering,
            relabel_seconds,
        }
    }

    /// Deep structural validation of the relabeling and the mixed
    /// representation (§4.1): perm/inv are mutually inverse, the class
    /// ranges partition the ID space, the three sub-structures have the
    /// advertised shapes and jointly hold every edge, and relabeling is
    /// stable within each class range. Used by the `strict-invariants`
    /// feature at engine construction and callable directly from tests.
    pub fn debug_validate(&self) -> Result<(), GraphError> {
        let invariant = |msg: String| Err(GraphError::Invariant(msg));
        let n = self.n;
        if self.perm.len() != n || self.inv.len() != n || self.out_degree.len() != n {
            return invariant(format!(
                "perm/inv/out_degree lengths {}/{}/{} != n = {n}",
                self.perm.len(),
                self.inv.len(),
                self.out_degree.len()
            ));
        }
        // Bijection: perm and inv are mutual inverses (this also implies
        // each is a permutation of 0..n).
        for old in 0..n {
            let new = self.perm[old] as usize;
            if new >= n || self.inv[new] as usize != old {
                return invariant(format!("perm/inv are not mutual inverses at old id {old}"));
            }
        }
        // Class ranges partition the ID space.
        let (r, s, k, iso) = (
            self.num_regular,
            self.num_seed,
            self.num_sink,
            self.num_isolated,
        );
        if r + s + k + iso != n {
            return invariant(format!(
                "class counts {r}+{s}+{k}+{iso} do not partition n = {n}"
            ));
        }
        if self.num_hub > r {
            return invariant(format!(
                "hub count {} exceeds regular count {r}",
                self.num_hub
            ));
        }
        // Sub-format boundaries: reg r×r, seed s×r, sink k×(r+s).
        for (name, csr, rows, cols) in [
            ("reg_csr", &self.reg_csr, r, r),
            ("seed_csr", &self.seed_csr, s, r),
            ("sink_csc", &self.sink_csc, k, r + s),
        ] {
            if csr.n_rows() != rows || csr.n_cols() != cols {
                return invariant(format!(
                    "{name} is {}x{}, expected {rows}x{cols}",
                    csr.n_rows(),
                    csr.n_cols()
                ));
            }
            csr.validate()?;
        }
        // Every original edge lands in exactly one sub-structure.
        let nnz = self.reg_csr.nnz() + self.seed_csr.nnz() + self.sink_csc.nnz();
        if nnz != self.m {
            return invariant(format!(
                "sub-structures hold {nnz} edges, graph has {}",
                self.m
            ));
        }
        // Stability: within each class range, relabeling preserves the
        // original relative order, i.e. `inv` is strictly increasing. The
        // regular range is checked per hub/non-hub sub-range under
        // `HubsFirst`, as one range under `Original`, and not at all under
        // `ByInDegree` (which re-sorts regulars by in-degree). `Dbg`
        // regroups the non-hub suffix, leaving only the hub prefix stable;
        // `HubSort` re-sorts the hub prefix, leaving only the suffix stable.
        let mut ranges = match self.ordering {
            RegularOrdering::HubsFirst => vec![(0, self.num_hub), (self.num_hub, r)],
            RegularOrdering::Original => vec![(0, r)],
            RegularOrdering::ByInDegree => vec![],
            RegularOrdering::Dbg => vec![(0, self.num_hub)],
            RegularOrdering::HubSort => vec![(self.num_hub, r)],
        };
        ranges.extend([(r, r + s), (r + s, r + s + k), (r + s + k, n)]);
        for (lo, hi) in ranges {
            for new in lo.max(1)..hi {
                if new > lo && self.inv[new - 1] >= self.inv[new] {
                    return invariant(format!(
                        "relabeling is not stable inside class range {lo}..{hi} at new id {new}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The regular-range ordering this graph was built with.
    pub fn ordering(&self) -> RegularOrdering {
        self.ordering
    }

    /// Wall-clock seconds the regular-region relabel passes took (a subset
    /// of the engine's filter time; stamped into the `relabel_micros` obs
    /// gauge).
    pub fn relabel_seconds(&self) -> f64 {
        self.relabel_seconds
    }

    /// Original node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Original edge count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Hubs (front of the regular range).
    pub fn num_hub(&self) -> usize {
        self.num_hub
    }

    /// Regular nodes `r` (including hubs): new IDs `0..r`.
    pub fn num_regular(&self) -> usize {
        self.num_regular
    }

    /// Seed nodes: new IDs `r..r+s`.
    pub fn num_seed(&self) -> usize {
        self.num_seed
    }

    /// Sink nodes: new IDs `r+s..r+s+k`.
    pub fn num_sink(&self) -> usize {
        self.num_sink
    }

    /// Isolated nodes: the tail of the new ID space.
    pub fn num_isolated(&self) -> usize {
        self.num_isolated
    }

    /// `α = r / n` (§5).
    pub fn alpha(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_regular as f64 / self.n as f64
        }
    }

    /// `β = m̃ / m` (§5): fraction of edges inside the regular subgraph.
    pub fn beta(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.reg_csr.nnz() as f64 / self.m as f64
        }
    }

    /// Heap bytes of the mixed representation: the three sub-structures
    /// plus the two permutation arrays and the out-degree vector. §4.1
    /// claims this is smaller than keeping the original CSR + CSC resident;
    /// `memory_bytes() < g.memory_bytes()` is asserted by tests for every
    /// directed dataset.
    pub fn memory_bytes(&self) -> usize {
        self.reg_csr.memory_bytes()
            + self.seed_csr.memory_bytes()
            + self.sink_csc.memory_bytes()
            + self.perm.len() * std::mem::size_of::<NodeId>()
            + self.inv.len() * std::mem::size_of::<NodeId>()
            + self.out_degree.len() * std::mem::size_of::<u32>()
    }

    /// New ID of an original node.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.perm[old as usize]
    }

    /// Original ID of a relabeled node.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.inv[new as usize]
    }

    /// The full old→new permutation.
    pub fn perm(&self) -> &[NodeId] {
        &self.perm
    }

    /// The full new→old permutation.
    pub fn inv(&self) -> &[NodeId] {
        &self.inv
    }

    /// CSR of the regular×regular subgraph.
    pub fn reg_csr(&self) -> &Csr {
        &self.reg_csr
    }

    /// CSR of seed→regular edges (rows are seed-local IDs).
    pub fn seed_csr(&self) -> &Csr {
        &self.seed_csr
    }

    /// CSC rows of sink nodes over in-neighbours (rows are sink-local IDs;
    /// columns are new IDs `< r + s`).
    pub fn sink_csc(&self) -> &Csr {
        &self.sink_csc
    }

    /// Full out-degree (in the original graph) of the node with new ID `v`.
    /// Algorithms like PageRank normalize by this, not by the subgraph
    /// degree, because edges to sinks still carry rank away.
    #[inline]
    pub fn out_degree_new(&self, v: NodeId) -> u32 {
        self.out_degree[v as usize]
    }

    /// Out-degree slice indexed by new ID.
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degree
    }

    /// Scatters a value slice indexed by new IDs back to original IDs.
    pub fn unpermute<V: Copy>(&self, new_vals: &[V]) -> Vec<V> {
        assert_eq!(new_vals.len(), self.n);
        (0..self.n)
            .map(|old| new_vals[self.perm[old] as usize])
            .collect()
    }

    /// Gathers a value slice indexed by original IDs into new-ID order.
    pub fn permute<V: Copy>(&self, old_vals: &[V]) -> Vec<V> {
        assert_eq!(old_vals.len(), self.n);
        (0..self.n)
            .map(|new| old_vals[self.inv[new] as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::Graph;

    /// 0 seed, 1 hub-regular, 2 regular, 3 sink, 4 isolated.
    /// Edges: 0->1 0->2 1->2 2->1 1->3 2->3 ... make 1 a hub.
    fn toy() -> Graph {
        Graph::from_pairs(
            5,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 1),
                (1, 3),
                (2, 3),
                (0, 1),
                (0, 1),
            ],
        )
    }

    #[test]
    fn boundaries_partition_n() {
        // toy() has duplicate edges; Graph keeps multi-edges, fine here.
        let g = toy();
        let f = FilteredGraph::new(&g);
        assert_eq!(
            f.num_regular() + f.num_seed() + f.num_sink() + f.num_isolated(),
            g.n()
        );
        assert_eq!(f.num_regular(), 2);
        assert_eq!(f.num_seed(), 1);
        assert_eq!(f.num_sink(), 1);
        assert_eq!(f.num_isolated(), 1);
    }

    #[test]
    fn permutation_is_bijective() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        for u in 0..g.n() as NodeId {
            assert_eq!(f.to_old(f.to_new(u)), u);
            assert_eq!(f.to_new(f.to_old(u)), u);
        }
    }

    #[test]
    fn class_ranges_ordered() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        // Seed node 0 must map into the seed range.
        let r = f.num_regular() as NodeId;
        let s = f.num_seed() as NodeId;
        assert!(f.to_new(0) >= r && f.to_new(0) < r + s);
        // Sink node 3 into the sink range.
        assert!(f.to_new(3) >= r + s && f.to_new(3) < r + s + f.num_sink() as NodeId);
        // Isolated node 4 at the tail.
        assert_eq!(f.to_new(4), 4);
    }

    #[test]
    fn hub_goes_first() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        // Node 1 has in-degree 4 (> avg 8/5); node 2 has in-degree 2 (> 1.6
        // too). Both hubs here. With a bigger spread:
        let g2 = Graph::from_pairs(
            6,
            &[
                (0, 1),
                (2, 1),
                (3, 1),
                (4, 1),
                (1, 2),
                (2, 0),
                (0, 2),
                (1, 0),
            ],
        );
        let f2 = FilteredGraph::new(&g2);
        // avg degree = 8/6 = 1.33; node 1 in-deg 4 => hub; nodes 0,2 in-deg 2 => hubs.
        assert!(f2.num_hub() >= 1);
        // Hubs occupy the lowest new IDs among regulars.
        for u in 0..g2.n() as NodeId {
            if f2.to_new(u) < f2.num_hub() as NodeId {
                assert!(g2.in_degree(u) as f64 > g2.avg_degree());
            }
        }
        let _ = f;
    }

    #[test]
    fn edges_partition_across_substructures() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        assert_eq!(
            f.reg_csr().nnz() + f.seed_csr().nnz() + f.sink_csc().nnz(),
            g.m()
        );
    }

    #[test]
    fn reg_csr_edges_match_original() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        // Multiset of regular->regular edges must be preserved under perm.
        let mut want: Vec<(NodeId, NodeId)> = g
            .edges()
            .filter(|&(s, d)| {
                (f.to_new(s) as usize) < f.num_regular() && (f.to_new(d) as usize) < f.num_regular()
            })
            .map(|(s, d)| (f.to_new(s), f.to_new(d)))
            .collect();
        let mut got: Vec<(NodeId, NodeId)> = f.reg_csr().edges().collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
    }

    #[test]
    fn sink_csc_covers_all_sink_in_edges() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        let sink_old = 3u32;
        let local = f.to_new(sink_old) - (f.num_regular() + f.num_seed()) as NodeId;
        let mut got: Vec<NodeId> = f.sink_csc().neighbors(local).to_vec();
        let mut want: Vec<NodeId> = g
            .in_neighbors(sink_old)
            .iter()
            .map(|&v| f.to_new(v))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn out_degrees_follow_permutation() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        for u in 0..g.n() as NodeId {
            assert_eq!(f.out_degree_new(f.to_new(u)) as usize, g.out_degree(u));
        }
    }

    #[test]
    fn permute_roundtrip() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        let vals: Vec<f32> = (0..g.n()).map(|i| i as f32).collect();
        let permuted = f.permute(&vals);
        let back = f.unpermute(&permuted);
        assert_eq!(vals, back);
    }

    #[test]
    fn alpha_beta_match_stats() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        let s = mixen_graph::StructuralStats::of(&g);
        assert!((f.alpha() - s.alpha).abs() < 1e-12);
        assert!((f.beta() - s.beta).abs() < 1e-12);
    }

    #[test]
    fn no_hub_sort_keeps_regular_order() {
        let g = toy();
        let f = FilteredGraph::with_ordering(&g, RegularOrdering::Original);
        assert_eq!(f.num_hub(), 0);
        // Regular nodes 1,2 keep relative order.
        assert!(f.to_new(1) < f.to_new(2));
    }

    #[test]
    fn by_in_degree_sorts_regulars_descending() {
        let g = toy();
        let f = FilteredGraph::with_ordering(&g, RegularOrdering::ByInDegree);
        let r = f.num_regular();
        let degs: Vec<usize> = (0..r as NodeId)
            .map(|new| g.in_degree(f.to_old(new)))
            .collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degs {degs:?}");
        // Edge partition invariant still holds.
        assert_eq!(
            f.reg_csr().nnz() + f.seed_csr().nnz() + f.sink_csc().nnz(),
            g.m()
        );
    }

    #[test]
    fn mixed_representation_is_smaller_than_csr_plus_csc() {
        use mixen_graph::{Dataset, Scale};
        for d in [Dataset::Weibo, Dataset::Wiki, Dataset::Pld] {
            let g = d.generate(Scale::Tiny, 9);
            let f = FilteredGraph::new(&g);
            assert!(
                f.memory_bytes() < g.memory_bytes(),
                "{}: {} vs {}",
                d.name(),
                f.memory_bytes(),
                g.memory_bytes()
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_pairs(0, &[]);
        let f = FilteredGraph::new(&g);
        assert_eq!(f.n(), 0);
        assert_eq!(f.num_regular(), 0);
    }

    #[test]
    fn all_isolated() {
        let g = Graph::from_pairs(4, &[]);
        let f = FilteredGraph::new(&g);
        assert_eq!(f.num_isolated(), 4);
        assert_eq!(f.reg_csr().nnz(), 0);
    }

    #[test]
    fn debug_validate_accepts_every_ordering() {
        let g = toy();
        for ordering in RegularOrdering::ALL {
            let f = FilteredGraph::with_ordering(&g, ordering);
            f.debug_validate().unwrap();
        }
    }

    #[test]
    fn hub_prefix_survives_dbg_and_hubsort() {
        use mixen_graph::{Dataset, Scale};
        let g = Dataset::Rmat.generate(Scale::Tiny, 7);
        let class = mixen_graph::Classification::of(&g);
        for ordering in [RegularOrdering::Dbg, RegularOrdering::HubSort] {
            let f = FilteredGraph::with_ordering(&g, ordering);
            // Every position below num_hub holds a hub, none above does.
            for new in 0..f.num_regular() as NodeId {
                assert_eq!(
                    class.is_hub(f.to_old(new)),
                    (new as usize) < f.num_hub(),
                    "{:?}: new id {new}",
                    ordering
                );
            }
            f.debug_validate().unwrap();
        }
    }

    #[test]
    fn relabel_cost_is_recorded() {
        let g = toy();
        let f = FilteredGraph::new(&g);
        assert!(f.relabel_seconds() >= 0.0);
    }

    #[test]
    fn debug_validate_rejects_corrupt_permutation() {
        let mut f = FilteredGraph::new(&toy());
        f.perm.swap(0, 1);
        let err = f.debug_validate().unwrap_err();
        assert!(err.to_string().contains("mutual inverses"), "{err}");
    }

    #[test]
    fn debug_validate_rejects_broken_partition() {
        let mut f = FilteredGraph::new(&toy());
        f.num_isolated += 1;
        let err = f.debug_validate().unwrap_err();
        assert!(err.to_string().contains("partition"), "{err}");
    }

    #[test]
    fn debug_validate_rejects_hub_overflow() {
        let mut f = FilteredGraph::new(&toy());
        f.num_hub = f.num_regular + 1;
        let err = f.debug_validate().unwrap_err();
        assert!(err.to_string().contains("hub count"), "{err}");
    }

    #[test]
    fn debug_validate_rejects_unstable_relabeling() {
        let mut f = FilteredGraph::new(&toy());
        // Swap two new ids inside the same class range (seed..sink..iso are
        // singletons in toy(), so swap the two regulars and mark the graph
        // Original so the whole regular range must be stable).
        let r = f.num_regular;
        assert_eq!(r, 2);
        f.ordering = RegularOrdering::Original;
        f.num_hub = 0;
        f.inv.swap(0, 1);
        f.perm.swap(f.inv[0] as usize, f.inv[1] as usize);
        let err = f.debug_validate().unwrap_err();
        assert!(err.to_string().contains("not stable"), "{err}");
    }
}
