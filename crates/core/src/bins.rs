//! Dynamic and static propagation bins (§4.2).
//!
//! * [`DynamicBins`] are rewritten every iteration: the Scatter step streams
//!   one value per (source, block) pair into them — sequential writes — and
//!   the Gather step drains them column-wise — sequential reads. They turn
//!   the random memory jumps of direct propagation into streaming accesses.
//! * [`StaticBin`] is written once in the Pre-Phase: it accumulates the
//!   contributions of seed nodes to every regular node. Because seeds never
//!   change, the Cache step of every subsequent iteration simply re-primes
//!   the accumulator from this bin instead of re-propagating seed messages.
//!   It is shared across all blocks of a block-row (the paper allocates it
//!   per block-row as a 1-D vector; a single `r`-length vector segmented by
//!   row ranges is the same layout).

use mixen_graph::nid;
use mixen_graph::{Csr, GraphError, PropValue};
use rayon::prelude::*;

use crate::block::BlockedSubgraph;

/// Value encoding of the dynamic bins.
///
/// `F32` streams full-width property values. The 16-bit encodings halve
/// Main-Phase bin traffic for 4-byte property types — the paper's kernels
/// are bandwidth-bound, so stream bytes translate almost directly into
/// Main-Phase seconds:
///
/// * `F16` — IEEE 754 binary16 (hand-rolled converters, no external
///   dependency). Relative round-trip error ≤ 2⁻¹¹ per value for the
///   normal range; values above 65504 overflow to ∞ and are rejected.
/// * `Q16` — 16-bit fixed point against a per-Scatter global scale
///   (`max |x|`): `q = round(v / scale × 32767)`. Absolute error is
///   bounded by `scale / 65534`, uniformly across the range.
///
/// Both lossy encodings are gated by a measured accuracy budget at
/// Scatter time ([`plan_codec`]): the worst per-value round-trip error
/// relative to the stream's magnitude must stay within
/// [`ACCURACY_BUDGET`], otherwise the Scatter fails with a typed
/// [`GraphError::Numeric`]. Compression applies only to property types
/// that opt in (`PropValue::ENCODABLE`, i.e. `f32`); other types silently
/// keep full-width streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BinEncoding {
    /// Full-width values — lossless, the paper's layout.
    #[default]
    F32,
    /// IEEE binary16 values (2 bytes per slot).
    F16,
    /// 16-bit fixed point against a per-Scatter global scale.
    Q16,
}

impl BinEncoding {
    /// Every encoding, in report order.
    pub const ALL: [BinEncoding; 3] = [BinEncoding::F32, BinEncoding::F16, BinEncoding::Q16];

    /// The CLI/report name (`--bin-encoding` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            BinEncoding::F32 => "f32",
            BinEncoding::F16 => "f16",
            BinEncoding::Q16 => "q16",
        }
    }

    /// Parses an encoding name as accepted by `--bin-encoding`.
    pub fn parse(s: &str) -> Option<Self> {
        BinEncoding::ALL.into_iter().find(|e| e.name() == s)
    }

    /// Stable numeric ID stamped into the `bin_encoding` obs gauge and
    /// folded into checkpoint fingerprints (a resume under a different
    /// encoding changes the numerics and must be rejected).
    pub fn encoding_id(self) -> u64 {
        match self {
            BinEncoding::F32 => 0,
            BinEncoding::F16 => 1,
            BinEncoding::Q16 => 2,
        }
    }

    /// Whether slots are stored as 16-bit words instead of full values.
    pub fn is_compressed(self) -> bool {
        !matches!(self, BinEncoding::F32)
    }

    /// The encoding actually used for property type `V`: types that do not
    /// opt into the 16-bit stream hooks keep full-width bins.
    pub fn effective<V: PropValue>(self) -> Self {
        if V::ENCODABLE {
            self
        } else {
            BinEncoding::F32
        }
    }
}

/// The rank-agreement accuracy budget of the lossy encodings: the worst
/// per-value round-trip error, relative to the stream's maximum
/// magnitude, tolerated before Scatter rejects the encoding with
/// [`GraphError::Numeric`].
pub const ACCURACY_BUDGET: f64 = 1e-3;

/// Encodes an `f32` as IEEE binary16 bits with round-to-nearest-even.
/// Out-of-range magnitudes map to ±∞ (caught by the accuracy gate).
pub fn f16_from_f32(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN: keep the class (any NaN payload collapses to a quiet
        // one — payloads are never semantically meaningful here).
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, rebased for binary16 (bias 15).
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow to infinity
    }
    if e <= 0 {
        // Subnormal or zero: shift the (implicit-1) mantissa right.
        if e < -10 {
            return sign; // underflows to zero even after rounding
        }
        let man = man | 0x0080_0000; // make the leading 1 explicit
        let shift = 14 - e; // 14..=24
        let half = man >> (shift - 1);
        // Round to nearest, ties to even.
        let rounded = (half >> 1) + (half & (half >> 1) & 1);
        let sticky = (man & ((1u32 << (shift - 1)) - 1)) != 0;
        let rounded = if sticky && half & 1 == 1 && rounded == half >> 1 {
            rounded + 1
        } else {
            rounded
        };
        return sign | rounded as u16;
    }
    // Normal: keep the top 10 mantissa bits, round-to-nearest-even on the
    // 13 dropped bits. Mantissa overflow carries into the exponent, which
    // is exactly the right thing (1.999... rounds up to 2.0).
    // lint: allow(truncation) reason=e is a 5-bit binary16 exponent, not an id
    let base = (e as u32) << 10 | (man >> 13);
    let round_bit = man & 0x1000;
    let sticky = man & 0x0fff;
    let rounded = if round_bit != 0 && (sticky != 0 || base & 1 == 1) {
        base + 1
    } else {
        base
    };
    if rounded >= 0x7c00 {
        return sign | 0x7c00; // rounding overflowed past the max finite
    }
    sign | rounded as u16
}

/// Decodes IEEE binary16 bits to `f32` (arithmetic path; exact).
fn f16_to_f32_arith(bits: u16) -> f32 {
    // lint: allow(truncation) reason=widening u16 bit-field extractions, not ids
    let sign = ((bits as u32) & 0x8000) << 16;
    // lint: allow(truncation) reason=widening u16 bit-field extractions, not ids
    let exp = ((bits >> 10) & 0x1f) as u32;
    // lint: allow(truncation) reason=widening u16 bit-field extractions, not ids
    let man = (bits & 0x03ff) as u32;
    let out = match (exp, man) {
        (0, 0) => sign,
        (0, _) => {
            // Subnormal: value = man × 2⁻²⁴. Normalize into f32.
            let shift = man.leading_zeros() - 21; // 1..=10
            let man = (man << shift) & 0x03ff;
            let exp = 127 - 15 - shift + 1;
            sign | (exp << 23) | (man << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, _) => sign | 0x7fc0_0000 | (man << 13),
        _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
    };
    f32::from_bits(out)
}

/// Decodes IEEE binary16 bits to `f32`.
///
/// With the `f16-bins` feature a 64 Ki-entry lookup table (built once from
/// the arithmetic path, so the two are bit-identical by construction)
/// replaces the bit manipulation — a worthwhile trade on gather-bound
/// runs, where the table stays resident next to the streams it decodes.
#[inline]
pub fn f16_to_f32(bits: u16) -> f32 {
    #[cfg(feature = "f16-bins")]
    {
        static TABLE: std::sync::OnceLock<Vec<f32>> = std::sync::OnceLock::new();
        let table =
            TABLE.get_or_init(|| (0..=u16::MAX).map(f16_to_f32_arith).collect::<Vec<f32>>());
        table[bits as usize]
    }
    #[cfg(not(feature = "f16-bins"))]
    f16_to_f32_arith(bits)
}

/// The per-Scatter codec of a compressed bin round: encoding plus the Q16
/// quantization scale measured from that round's source values. Stored in
/// the bins by Scatter so the matching Gather decodes with the same
/// parameters.
#[derive(Clone, Copy, Debug)]
pub struct BinCodec {
    enc: BinEncoding,
    /// Q16 dequantization step, `scale / 32767` (0 on an all-zero round).
    q_step: f32,
    /// Q16 quantization factor, `32767 / scale` (0 on an all-zero round).
    q_inv: f32,
}

impl BinCodec {
    /// The lossless (F32) codec.
    pub fn identity() -> Self {
        Self {
            enc: BinEncoding::F32,
            q_step: 0.0,
            q_inv: 0.0,
        }
    }

    /// The encoding this codec implements.
    pub fn encoding(self) -> BinEncoding {
        self.enc
    }

    /// Encodes one streamed value into its 16-bit slot. Only meaningful
    /// for the compressed encodings.
    #[inline]
    pub fn encode(self, v: f32) -> u16 {
        match self.enc {
            BinEncoding::F32 => 0,
            BinEncoding::F16 => f16_from_f32(v),
            // `as i16` saturates on overflow/NaN in Rust, so a hostile
            // value that slipped past the gate still cannot corrupt
            // neighbouring slots — it just decodes clamped.
            BinEncoding::Q16 => ((v * self.q_inv).round() as i16) as u16,
        }
    }

    /// Decodes one 16-bit slot back to the streamed value.
    #[inline]
    pub fn decode(self, bits: u16) -> f32 {
        match self.enc {
            BinEncoding::F32 => 0.0,
            BinEncoding::F16 => f16_to_f32(bits),
            BinEncoding::Q16 => (bits as i16) as f32 * self.q_step,
        }
    }
}

/// Plans the codec of one Scatter round over the source values it will
/// stream, enforcing the [`ACCURACY_BUDGET`] gate: every streamed slot is
/// some `x[u]`, so scanning `x` bounds the exact per-message round-trip
/// error. Rejections are typed [`GraphError::Numeric`] — non-finite
/// sources, f16 overflow (`|v| > 65504`), or any round-trip error above
/// the budget relative to the stream's maximum magnitude.
pub fn plan_codec<V: PropValue>(enc: BinEncoding, x: &[V]) -> Result<BinCodec, GraphError> {
    let numeric = |msg: String| {
        Err(GraphError::Numeric {
            iteration: 0,
            msg,
        })
    };
    let enc = enc.effective::<V>();
    if !enc.is_compressed() {
        return Ok(BinCodec::identity());
    }
    let mut max_abs = 0f32;
    for v in x {
        let f = v.to_stream_f32();
        if !f.is_finite() {
            return numeric(format!(
                "{} bin encoding cannot stream non-finite source value {f}",
                enc.name()
            ));
        }
        max_abs = max_abs.max(f.abs());
    }
    let codec = match enc {
        BinEncoding::F16 => BinCodec {
            enc,
            q_step: 0.0,
            q_inv: 0.0,
        },
        BinEncoding::Q16 => BinCodec {
            enc,
            q_step: max_abs / 32767.0,
            q_inv: if max_abs > 0.0 { 32767.0 / max_abs } else { 0.0 },
        },
        BinEncoding::F32 => BinCodec::identity(),
    };
    if max_abs > 0.0 {
        let mut max_err = 0f64;
        for v in x {
            let f = v.to_stream_f32();
            let err = (codec.decode(codec.encode(f)) as f64 - f as f64).abs();
            max_err = max_err.max(err);
        }
        let rel = max_err / max_abs as f64;
        if !rel.is_finite() || rel > ACCURACY_BUDGET {
            return numeric(format!(
                "{} bin encoding round-trip error {rel:.3e} exceeds the {ACCURACY_BUDGET:.0e} \
                 rank-agreement budget (stream magnitude up to {max_abs:.6e})",
                enc.name()
            ));
        }
    }
    Ok(codec)
}

/// Per-iteration value streams, one stream per (block-row task, block-col)
/// — full-width `V` slots under [`BinEncoding::F32`], 16-bit words under
/// the compressed encodings.
#[derive(Clone, Debug)]
pub struct DynamicBins<V> {
    per_task: Vec<TaskBins<V>>,
    /// Effective encoding for `V` (requested encoding, or `F32` when `V`
    /// does not opt into compression).
    encoding: BinEncoding,
    /// The codec of the last Scatter round (carries the Q16 scale).
    codec: BinCodec,
}

/// The bins owned by one scatter task (one stream per block-column;
/// exactly one of `per_col`/`packed` is populated, by encoding).
#[derive(Clone, Debug)]
pub struct TaskBins<V> {
    per_col: Vec<Vec<V>>,
    packed: Vec<Vec<u16>>,
}

impl<V: PropValue> DynamicBins<V> {
    /// Allocates full-width value streams sized to the compressed message
    /// counts of `blocked`. Allocation happens once; iterations only
    /// overwrite.
    pub fn new(blocked: &BlockedSubgraph) -> Self {
        Self::with_encoding(blocked, BinEncoding::F32)
    }

    /// Like [`DynamicBins::new`] with an explicit value encoding. Types
    /// that do not opt into compression (`!V::ENCODABLE`) silently fall
    /// back to full-width streams.
    pub fn with_encoding(blocked: &BlockedSubgraph, encoding: BinEncoding) -> Self {
        let encoding = encoding.effective::<V>();
        let per_task = blocked
            .rows()
            .iter()
            .map(|row| TaskBins {
                per_col: row
                    .blocks
                    .iter()
                    .map(|b| {
                        if encoding.is_compressed() {
                            Vec::new()
                        } else {
                            vec![V::identity(); b.msg_count()]
                        }
                    })
                    .collect(),
                packed: row
                    .blocks
                    .iter()
                    .map(|b| {
                        if encoding.is_compressed() {
                            vec![0u16; b.msg_count()]
                        } else {
                            Vec::new()
                        }
                    })
                    .collect(),
            })
            .collect();
        let bins = Self {
            per_task,
            encoding,
            codec: BinCodec::identity(),
        };
        #[cfg(feature = "strict-invariants")]
        if let Err(e) = bins.debug_validate(blocked) {
            // lint: allow(panic) reason=strict-invariants mode turns violated bin metadata into loud failures
            panic!("strict-invariants: {e}");
        }
        bins
    }

    /// The effective value encoding of these streams.
    pub fn encoding(&self) -> BinEncoding {
        self.encoding
    }

    /// Bytes one slot occupies under the active encoding — the factor the
    /// `bin_bytes_streamed` counter multiplies slot counts by.
    pub fn bytes_per_slot(&self) -> usize {
        if self.encoding.is_compressed() {
            2
        } else {
            std::mem::size_of::<V>()
        }
    }

    /// The codec of the last Scatter round (Gather decodes with it).
    pub(crate) fn codec(&self) -> BinCodec {
        self.codec
    }

    /// Records the codec a Scatter round encoded with.
    pub(crate) fn set_codec(&mut self, codec: BinCodec) {
        self.codec = codec;
    }

    /// Mutable slice of all task bins (scatter side).
    pub fn tasks_mut(&mut self) -> &mut [TaskBins<V>] {
        &mut self.per_task
    }

    /// Shared view of all task bins (gather side).
    pub fn tasks(&self) -> &[TaskBins<V>] {
        &self.per_task
    }

    /// Total buffered values per iteration.
    pub fn total_slots(&self) -> usize {
        self.per_task
            .iter()
            .flat_map(|t| t.per_col.iter().map(Vec::len).zip(t.packed.iter().map(Vec::len)))
            .map(|(full, packed)| full + packed)
            .sum()
    }

    /// Validates the bin metadata against the partition it was allocated
    /// for: one task per block-row, one stream per block-column, and every
    /// stream (in the representation the encoding selects) sized to its
    /// block's compressed message count. Used by the `strict-invariants`
    /// feature and callable directly from tests.
    pub fn debug_validate(&self, blocked: &BlockedSubgraph) -> Result<(), GraphError> {
        let invariant = |msg: String| Err(GraphError::Invariant(msg));
        if self.per_task.len() != blocked.rows().len() {
            return invariant(format!(
                "{} task bins for {} block-rows",
                self.per_task.len(),
                blocked.rows().len()
            ));
        }
        let packed = self.encoding.is_compressed();
        for (t, (task, row)) in self.per_task.iter().zip(blocked.rows()).enumerate() {
            if task.per_col.len() != row.blocks.len() || task.packed.len() != row.blocks.len() {
                return invariant(format!(
                    "task {t} has {} full / {} packed streams for {} blocks",
                    task.per_col.len(),
                    task.packed.len(),
                    row.blocks.len()
                ));
            }
            for (j, blk) in row.blocks.iter().enumerate() {
                let (active, idle) = if packed {
                    (task.packed[j].len(), task.per_col[j].len())
                } else {
                    (task.per_col[j].len(), task.packed[j].len())
                };
                if active != blk.msg_count() || idle != 0 {
                    return invariant(format!(
                        "bin ({t},{j}) holds {active} slots (+{idle} idle), block compresses \
                         to {} messages under {}",
                        blk.msg_count(),
                        self.encoding.name()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl<V: PropValue> TaskBins<V> {
    /// The full-width value stream for block-column `j` (empty under a
    /// compressed encoding — the kernels then read [`TaskBins::packed_col`]).
    #[inline]
    pub fn col(&self, j: usize) -> &[V] {
        &self.per_col[j]
    }

    /// Mutable full-width value stream for block-column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [V] {
        &mut self.per_col[j]
    }

    /// The 16-bit stream for block-column `j` (empty under `F32`).
    #[inline]
    pub(crate) fn packed_col(&self, j: usize) -> &[u16] {
        &self.packed[j]
    }

    /// Mutable 16-bit stream for block-column `j`.
    #[inline]
    pub(crate) fn packed_col_mut(&mut self, j: usize) -> &mut [u16] {
        &mut self.packed[j]
    }

    /// Base address of column `j`'s active stream — a software-prefetch
    /// target only, never dereferenced directly.
    #[inline]
    pub(crate) fn col_prefetch_ptr(&self, j: usize) -> *const u8 {
        if self.packed[j].is_empty() {
            self.per_col[j].as_ptr() as *const u8
        } else {
            self.packed[j].as_ptr() as *const u8
        }
    }
}

/// The seed-contribution cache: `sta[v] = Σ_{seed s → v} value(s)` for every
/// regular node `v`.
#[derive(Clone, Debug)]
pub struct StaticBin<V> {
    vals: Vec<V>,
}

impl<V: PropValue> StaticBin<V> {
    /// Pre-Phase: pushes every seed's value along its seed→regular edges and
    /// accumulates per destination. Parallelized as a fold over seed-row
    /// chunks with a tree reduction.
    pub fn compute(seed_csr: &Csr, seed_vals: &[V], r: usize) -> Self {
        assert_eq!(seed_csr.n_rows(), seed_vals.len());
        assert_eq!(seed_csr.n_cols(), r);
        let vals = (0..nid(seed_csr.n_rows()))
            .into_par_iter()
            .fold(
                || vec![V::identity(); r],
                |mut acc, s| {
                    let v = seed_vals[s as usize];
                    for &d in seed_csr.neighbors(s) {
                        acc[d as usize].combine(v);
                    }
                    acc
                },
            )
            .reduce(
                || vec![V::identity(); r],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        x.combine(y);
                    }
                    a
                },
            );
        Self { vals }
    }

    /// An all-identity bin for graphs without seeds (or with the Cache step
    /// disabled at priming time).
    pub fn zero(r: usize) -> Self {
        Self {
            vals: vec![V::identity(); r],
        }
    }

    /// The cached contributions, indexed by regular (new) ID.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixenOpts;
    use mixen_graph::Csr;

    #[test]
    fn dynamic_bins_match_block_geometry() {
        let csr = Csr::from_edges(8, &[(0, 1), (0, 5), (1, 4), (7, 0), (7, 1)]);
        let blocked = BlockedSubgraph::new(
            &csr,
            &MixenOpts {
                block_side: 4,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            1,
        );
        let bins: DynamicBins<f32> = DynamicBins::new(&blocked);
        assert_eq!(bins.total_slots(), blocked.total_msg_slots());
        // Node 0 hits cols {1} and {5}: one slot in each column block.
        // Node 7 hits cols {0,1}: one compressed slot.
        assert_eq!(bins.total_slots(), 4);
    }

    #[test]
    fn debug_validate_rejects_missized_streams() {
        let csr = Csr::from_edges(8, &[(0, 1), (0, 5), (1, 4), (7, 0), (7, 1)]);
        let blocked = BlockedSubgraph::new(
            &csr,
            &MixenOpts {
                block_side: 4,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            1,
        );
        let mut bins: DynamicBins<f32> = DynamicBins::new(&blocked);
        bins.debug_validate(&blocked).unwrap();
        let stream = bins.per_task[0]
            .per_col
            .iter_mut()
            .find(|s| !s.is_empty())
            .unwrap();
        stream.push(0.0);
        assert!(bins.debug_validate(&blocked).is_err());
    }

    #[test]
    fn static_bin_accumulates_seed_pushes() {
        // 2 seeds over 3 regular nodes: seed 0 -> {0, 2}, seed 1 -> {2}.
        let seed_csr = Csr::from_edges_rect(2, 3, &[(0, 0), (0, 2), (1, 2)]);
        let sta = StaticBin::compute(&seed_csr, &[1.5f32, 2.0], 3);
        assert_eq!(sta.values(), &[1.5, 0.0, 3.5]);
    }

    #[test]
    fn static_bin_zero() {
        let sta: StaticBin<f32> = StaticBin::zero(4);
        assert_eq!(sta.values(), &[0.0; 4]);
    }

    #[test]
    fn static_bin_no_seeds() {
        let seed_csr = Csr::from_edges_rect(0, 3, &[]);
        let sta = StaticBin::compute(&seed_csr, &[] as &[f32], 3);
        assert_eq!(sta.values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn static_bin_vector_values() {
        let seed_csr = Csr::from_edges_rect(1, 2, &[(0, 1)]);
        let sta = StaticBin::compute(&seed_csr, &[[1.0f32, 2.0]], 2);
        assert_eq!(sta.values(), &[[0.0, 0.0], [1.0, 2.0]]);
    }

    #[test]
    fn f16_round_trip_is_exact_for_representable_values() {
        // Values with <= 10 mantissa bits and in-range exponents survive
        // the f32 -> f16 -> f32 round trip bit-for-bit.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 0.25, 1.5, 65504.0, 6.1035156e-5] {
            let back = f16_to_f32(f16_from_f32(v));
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn f16_round_trip_error_is_bounded_by_half_ulp() {
        // Relative error for normal f16 values is at most 2^-11 (half an
        // ulp of a 10-bit mantissa) — comfortably inside ACCURACY_BUDGET.
        let mut seed = 0x2545_f491u32;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let v = (seed as f32 / u32::MAX as f32).mul_add(2000.0, -1000.0);
            let back = f16_to_f32(f16_from_f32(v));
            let rel = ((back - v) / v.abs().max(1e-30)).abs();
            assert!(rel <= 4.8829e-4, "value {v} -> {back}, rel err {rel}");
        }
    }

    #[test]
    fn f16_special_values() {
        assert_eq!(f16_from_f32(f32::INFINITY), 0x7c00);
        assert_eq!(f16_from_f32(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
        // Overflow saturates to infinity, underflow flushes toward zero.
        assert_eq!(f16_from_f32(1.0e6), 0x7c00);
        assert_eq!(f16_to_f32(f16_from_f32(1.0e-10)), 0.0);
    }

    #[test]
    fn q16_round_trip_error_is_bounded_by_the_step() {
        let xs: Vec<f32> = (0..4096)
            .map(|i| ((i as f32).mul_add(0.37, -757.0)).sin() * 900.0)
            .collect();
        let codec = plan_codec::<f32>(BinEncoding::Q16, &xs).unwrap();
        assert_eq!(codec.encoding(), BinEncoding::Q16);
        for &v in &xs {
            let back = codec.decode(codec.encode(v));
            // Half a quantisation step of slack either way.
            assert!((back - v).abs() <= codec.q_step * 0.5 + 1e-9, "{v} -> {back}");
        }
    }

    #[test]
    fn codec_planner_rejects_out_of_budget_ranges() {
        // f16 cannot represent 1e30 at all: the round-trip error blows
        // through the budget and the planner must say so, typed.
        let hostile = vec![1.0e30f32, 1.0];
        let err = plan_codec::<f32>(BinEncoding::F16, &hostile).unwrap_err();
        assert_eq!(err.kind_name(), "numeric");
        // Non-finite inputs are rejected by both compressed encodings.
        let nan = vec![f32::NAN, 1.0];
        assert_eq!(plan_codec::<f32>(BinEncoding::F16, &nan).unwrap_err().kind_name(), "numeric");
        assert_eq!(plan_codec::<f32>(BinEncoding::Q16, &nan).unwrap_err().kind_name(), "numeric");
        // F32 is lossless and never rejects.
        assert!(plan_codec::<f32>(BinEncoding::F32, &nan).is_ok());
    }

    #[test]
    fn effective_encoding_downgrades_unencodable_types() {
        use mixen_graph::MinF32;
        assert_eq!(BinEncoding::F16.effective::<MinF32>(), BinEncoding::F32);
        assert_eq!(BinEncoding::Q16.effective::<f32>(), BinEncoding::Q16);
    }

    #[test]
    fn encoding_parse_and_names_round_trip() {
        for enc in BinEncoding::ALL {
            assert_eq!(BinEncoding::parse(enc.name()), Some(enc));
        }
        assert_eq!(BinEncoding::parse("brotli"), None);
    }

    /// The LUT decode path (feature `f16-bins`) is built from the arithmetic
    /// path, so the two must agree bit-for-bit on every possible pattern.
    #[test]
    fn f16_decode_paths_agree_on_all_bit_patterns() {
        for bits in 0..=u16::MAX {
            let lut = f16_to_f32(bits);
            let arith = f16_to_f32_arith(bits);
            assert!(
                lut.to_bits() == arith.to_bits() || (lut.is_nan() && arith.is_nan()),
                "bits {bits:#06x}: lut {lut} vs arith {arith}"
            );
        }
    }
}
