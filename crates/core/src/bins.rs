//! Dynamic and static propagation bins (§4.2).
//!
//! * [`DynamicBins`] are rewritten every iteration: the Scatter step streams
//!   one value per (source, block) pair into them — sequential writes — and
//!   the Gather step drains them column-wise — sequential reads. They turn
//!   the random memory jumps of direct propagation into streaming accesses.
//! * [`StaticBin`] is written once in the Pre-Phase: it accumulates the
//!   contributions of seed nodes to every regular node. Because seeds never
//!   change, the Cache step of every subsequent iteration simply re-primes
//!   the accumulator from this bin instead of re-propagating seed messages.
//!   It is shared across all blocks of a block-row (the paper allocates it
//!   per block-row as a 1-D vector; a single `r`-length vector segmented by
//!   row ranges is the same layout).

use mixen_graph::nid;
use mixen_graph::{Csr, GraphError, PropValue};
use rayon::prelude::*;

use crate::block::BlockedSubgraph;

/// Per-iteration value streams, one `Vec` per (block-row task, block-col).
#[derive(Clone, Debug)]
pub struct DynamicBins<V> {
    per_task: Vec<TaskBins<V>>,
}

/// The bins owned by one scatter task (one per block-column).
#[derive(Clone, Debug)]
pub struct TaskBins<V> {
    per_col: Vec<Vec<V>>,
}

impl<V: PropValue> DynamicBins<V> {
    /// Allocates value streams sized to the compressed message counts of
    /// `blocked`. Allocation happens once; iterations only overwrite.
    pub fn new(blocked: &BlockedSubgraph) -> Self {
        let per_task = blocked
            .rows()
            .iter()
            .map(|row| TaskBins {
                per_col: row
                    .blocks
                    .iter()
                    .map(|b| vec![V::identity(); b.msg_count()])
                    .collect(),
            })
            .collect();
        let bins = Self { per_task };
        #[cfg(feature = "strict-invariants")]
        if let Err(e) = bins.debug_validate(blocked) {
            // lint: allow(panic) reason=strict-invariants mode turns violated bin metadata into loud failures
            panic!("strict-invariants: {e}");
        }
        bins
    }

    /// Mutable slice of all task bins (scatter side).
    pub fn tasks_mut(&mut self) -> &mut [TaskBins<V>] {
        &mut self.per_task
    }

    /// Shared view of all task bins (gather side).
    pub fn tasks(&self) -> &[TaskBins<V>] {
        &self.per_task
    }

    /// Total buffered values per iteration.
    pub fn total_slots(&self) -> usize {
        self.per_task
            .iter()
            .flat_map(|t| t.per_col.iter())
            .map(Vec::len)
            .sum()
    }

    /// Validates the bin metadata against the partition it was allocated
    /// for: one task per block-row, one stream per block-column, and every
    /// stream sized to its block's compressed message count. Used by the
    /// `strict-invariants` feature and callable directly from tests.
    pub fn debug_validate(&self, blocked: &BlockedSubgraph) -> Result<(), GraphError> {
        let invariant = |msg: String| Err(GraphError::Invariant(msg));
        if self.per_task.len() != blocked.rows().len() {
            return invariant(format!(
                "{} task bins for {} block-rows",
                self.per_task.len(),
                blocked.rows().len()
            ));
        }
        for (t, (task, row)) in self.per_task.iter().zip(blocked.rows()).enumerate() {
            if task.per_col.len() != row.blocks.len() {
                return invariant(format!(
                    "task {t} has {} streams for {} blocks",
                    task.per_col.len(),
                    row.blocks.len()
                ));
            }
            for (j, (stream, blk)) in task.per_col.iter().zip(&row.blocks).enumerate() {
                if stream.len() != blk.msg_count() {
                    return invariant(format!(
                        "bin ({t},{j}) holds {} slots, block compresses to {} messages",
                        stream.len(),
                        blk.msg_count()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl<V: PropValue> TaskBins<V> {
    /// The value stream for block-column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[V] {
        &self.per_col[j]
    }

    /// Mutable value stream for block-column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [V] {
        &mut self.per_col[j]
    }
}

/// The seed-contribution cache: `sta[v] = Σ_{seed s → v} value(s)` for every
/// regular node `v`.
#[derive(Clone, Debug)]
pub struct StaticBin<V> {
    vals: Vec<V>,
}

impl<V: PropValue> StaticBin<V> {
    /// Pre-Phase: pushes every seed's value along its seed→regular edges and
    /// accumulates per destination. Parallelized as a fold over seed-row
    /// chunks with a tree reduction.
    pub fn compute(seed_csr: &Csr, seed_vals: &[V], r: usize) -> Self {
        assert_eq!(seed_csr.n_rows(), seed_vals.len());
        assert_eq!(seed_csr.n_cols(), r);
        let vals = (0..nid(seed_csr.n_rows()))
            .into_par_iter()
            .fold(
                || vec![V::identity(); r],
                |mut acc, s| {
                    let v = seed_vals[s as usize];
                    for &d in seed_csr.neighbors(s) {
                        acc[d as usize].combine(v);
                    }
                    acc
                },
            )
            .reduce(
                || vec![V::identity(); r],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        x.combine(y);
                    }
                    a
                },
            );
        Self { vals }
    }

    /// An all-identity bin for graphs without seeds (or with the Cache step
    /// disabled at priming time).
    pub fn zero(r: usize) -> Self {
        Self {
            vals: vec![V::identity(); r],
        }
    }

    /// The cached contributions, indexed by regular (new) ID.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixenOpts;
    use mixen_graph::Csr;

    #[test]
    fn dynamic_bins_match_block_geometry() {
        let csr = Csr::from_edges(8, &[(0, 1), (0, 5), (1, 4), (7, 0), (7, 1)]);
        let blocked = BlockedSubgraph::new(
            &csr,
            &MixenOpts {
                block_side: 4,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            1,
        );
        let bins: DynamicBins<f32> = DynamicBins::new(&blocked);
        assert_eq!(bins.total_slots(), blocked.total_msg_slots());
        // Node 0 hits cols {1} and {5}: one slot in each column block.
        // Node 7 hits cols {0,1}: one compressed slot.
        assert_eq!(bins.total_slots(), 4);
    }

    #[test]
    fn debug_validate_rejects_missized_streams() {
        let csr = Csr::from_edges(8, &[(0, 1), (0, 5), (1, 4), (7, 0), (7, 1)]);
        let blocked = BlockedSubgraph::new(
            &csr,
            &MixenOpts {
                block_side: 4,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            1,
        );
        let mut bins: DynamicBins<f32> = DynamicBins::new(&blocked);
        bins.debug_validate(&blocked).unwrap();
        let stream = bins.per_task[0]
            .per_col
            .iter_mut()
            .find(|s| !s.is_empty())
            .unwrap();
        stream.push(0.0);
        assert!(bins.debug_validate(&blocked).is_err());
    }

    #[test]
    fn static_bin_accumulates_seed_pushes() {
        // 2 seeds over 3 regular nodes: seed 0 -> {0, 2}, seed 1 -> {2}.
        let seed_csr = Csr::from_edges_rect(2, 3, &[(0, 0), (0, 2), (1, 2)]);
        let sta = StaticBin::compute(&seed_csr, &[1.5f32, 2.0], 3);
        assert_eq!(sta.values(), &[1.5, 0.0, 3.5]);
    }

    #[test]
    fn static_bin_zero() {
        let sta: StaticBin<f32> = StaticBin::zero(4);
        assert_eq!(sta.values(), &[0.0; 4]);
    }

    #[test]
    fn static_bin_no_seeds() {
        let seed_csr = Csr::from_edges_rect(0, 3, &[]);
        let sta = StaticBin::compute(&seed_csr, &[] as &[f32], 3);
        assert_eq!(sta.values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn static_bin_vector_values() {
        let seed_csr = Csr::from_edges_rect(1, 2, &[(0, 1)]);
        let sta = StaticBin::compute(&seed_csr, &[[1.0f32, 2.0]], 2);
        assert_eq!(sta.values(), &[[0.0, 0.0], [1.0, 2.0]]);
    }
}
