//! Analytic performance models (§3 and §5 of the paper).
//!
//! The paper derives closed-form memory-traffic and random-access counts for
//! three executions of one InDegree/SpMV iteration, assuming one "element"
//! of data per node/link/update:
//!
//! | approach | traffic (elements)   | random accesses |
//! |----------|----------------------|-----------------|
//! | Pull     | `2m + 2n`            | `m`             |
//! | Block    | `4m + 3n`            | `(n/c)²`        |
//! | Mixen    | `4αn + 4βm` (Eq. 1)  | `(αn/c)²` (Eq. 2)|
//!
//! `α = r/n` is the regular-node fraction, `β = m̃/m` the regular-subgraph
//! edge fraction, `c` the block side in nodes. The `model_check` benchmark
//! compares these predictions against the cache simulator's measured
//! traffic.

use mixen_graph::{nid, Classification, Graph, NodeClass};

use crate::opts::RegularOrdering;
use crate::FilteredGraph;

/// Inputs of the §5 model for one graph + block configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Node count `n`.
    pub n: usize,
    /// Edge count `m`.
    pub m: usize,
    /// Regular-node fraction `α`.
    pub alpha: f64,
    /// Regular-edge fraction `β`.
    pub beta: f64,
    /// Hub fraction `h`: regular hubs over regular nodes. Not part of the
    /// paper's Eq. 1/2 traffic terms, but the third input of the reorder
    /// policy selection ([`PerfModel::preferred_ordering`]).
    pub hub_frac: f64,
    /// Block side `c` in nodes.
    pub c: usize,
}

impl PerfModel {
    /// Builds the model from a filtered graph and block side. `hub_frac`
    /// reflects the graph *as built*: under `Original` ordering no hub
    /// prefix exists and the fraction is 0.
    pub fn from_filtered(f: &FilteredGraph, c: usize) -> Self {
        Self {
            n: f.n(),
            m: f.m(),
            alpha: f.alpha(),
            beta: f.beta(),
            hub_frac: if f.num_regular() == 0 {
                0.0
            } else {
                f.num_hub() as f64 / f.num_regular() as f64
            },
            c,
        }
    }

    /// Builds the model from a bare classification, *before* any filtered
    /// graph exists — the `--reorder auto` path, where the selected policy
    /// decides how the graph is then built. `β` needs one O(m) edge scan
    /// (regular→regular edges); everything else comes from the class census.
    pub fn from_classification(g: &Graph, class: &Classification, c: usize) -> Self {
        let n = g.n();
        let m = g.m();
        let mut num_regular = 0usize;
        let mut num_hub = 0usize;
        for u in 0..nid(n) {
            if class.class(u) == NodeClass::Regular {
                num_regular += 1;
                if class.is_hub(u) {
                    num_hub += 1;
                }
            }
        }
        let m_tilde = g
            .edges()
            .filter(|&(u, v)| {
                class.class(u) == NodeClass::Regular && class.class(v) == NodeClass::Regular
            })
            .count();
        Self {
            n,
            m,
            alpha: if n == 0 {
                0.0
            } else {
                num_regular as f64 / n as f64
            },
            beta: if m == 0 {
                0.0
            } else {
                m_tilde as f64 / m as f64
            },
            hub_frac: if num_regular == 0 {
                0.0
            } else {
                num_hub as f64 / num_regular as f64
            },
            c,
        }
    }

    /// The relabel policy the model statistics (α, β, hub fraction) predict
    /// to win — the engine's `--reorder auto` selection. The decision tree
    /// lives in [`crate::reorder::select_policy`]; the measured backing is
    /// the EXPERIMENTS.md reordering shoot-out.
    pub fn preferred_ordering(&self) -> RegularOrdering {
        crate::reorder::select_policy(self.alpha, self.beta, self.hub_frac)
    }

    /// Number of regular nodes `r = αn`.
    pub fn r(&self) -> f64 {
        self.alpha * self.n as f64
    }

    /// Regular-subgraph edges `m̃ = βm`.
    pub fn m_tilde(&self) -> f64 {
        self.beta * self.m as f64
    }

    /// Number of blocks per dimension `b = ⌈αn / c⌉`.
    pub fn b(&self) -> f64 {
        (self.r() / self.c as f64).ceil().max(0.0)
    }

    /// Eq. (1): Mixen Main-Phase traffic per iteration, in elements:
    /// `4αn + 4βm`.
    pub fn mixen_traffic(&self) -> f64 {
        4.0 * self.r() + 4.0 * self.m_tilde()
    }

    /// Eq. (2): Mixen random accesses per iteration, `b²`.
    pub fn mixen_random(&self) -> f64 {
        self.b() * self.b()
    }

    /// §3: pulling-flow traffic, `2m + 2n` elements.
    pub fn pull_traffic(&self) -> f64 {
        2.0 * self.m as f64 + 2.0 * self.n as f64
    }

    /// §3: pulling-flow worst-case random accesses, `m`.
    pub fn pull_random(&self) -> f64 {
        self.m as f64
    }

    /// §3: whole-graph blocking traffic, `4m + 3n` elements.
    pub fn block_traffic(&self) -> f64 {
        4.0 * self.m as f64 + 3.0 * self.n as f64
    }

    /// §3: whole-graph blocking random accesses, `(n/c)²`.
    pub fn block_random(&self) -> f64 {
        let b = (self.n as f64 / self.c as f64).ceil();
        b * b
    }

    /// Traffic in bytes for a given element width (the paper's datatypes are
    /// 4 bytes; its worked examples use 1).
    pub fn mixen_traffic_bytes(&self, elem_bytes: usize) -> f64 {
        self.mixen_traffic() * elem_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §3 worked example: wiki with n = 18.2 M, m = 172.2 M,
    /// c = 64 K nodes => ~285² ≈ 81 K blocks for whole-graph blocking.
    #[test]
    fn paper_wiki_example() {
        let m = PerfModel {
            n: 18_200_000,
            m: 172_200_000,
            alpha: 1.0,
            beta: 1.0,
            hub_frac: 0.0,
            c: 64 * 1024,
        };
        let blocks = m.block_random();
        assert!((blocks.sqrt() - 278.0).abs() < 5.0, "b = {}", blocks.sqrt());
        assert_eq!(m.pull_random(), 172_200_000.0);
        // Blocking adds (4m+3n) - (2m+2n) = 2m + n elements of traffic:
        // ≈ 362.6 M elements (the paper's 362.6 MB at 1 B/element).
        let extra = m.block_traffic() - m.pull_traffic();
        assert!(
            (extra - 362_600_000.0).abs() < 1_000_000.0,
            "extra = {extra}"
        );
    }

    #[test]
    fn mixen_degenerates_to_block_when_all_regular() {
        let m = PerfModel {
            n: 1000,
            m: 10_000,
            alpha: 1.0,
            beta: 1.0,
            hub_frac: 0.0,
            c: 100,
        };
        // §5: at α = β = 1, Mixen traffic 4n + 4m exceeds Block's 4m + 3n.
        assert_eq!(m.mixen_traffic(), 4.0 * 1000.0 + 4.0 * 10_000.0);
        assert!(m.mixen_traffic() > m.block_traffic());
        assert_eq!(m.mixen_random(), m.block_random());
    }

    #[test]
    fn mixen_wins_at_low_alpha() {
        let m = PerfModel {
            n: 1_000_000,
            m: 45_000_000,
            alpha: 0.01,
            beta: 0.06,
            hub_frac: 0.02,
            c: 65536,
        };
        assert!(m.mixen_traffic() < 0.2 * m.pull_traffic());
        assert!(m.mixen_random() < m.block_random());
        assert!(m.mixen_random() < m.pull_random());
    }

    #[test]
    fn random_accesses_scale_with_alpha_squared() {
        let base = PerfModel {
            n: 2_000_000,
            m: 30_000_000,
            alpha: 1.0,
            beta: 1.0,
            hub_frac: 0.0,
            c: 1000,
        };
        let half = PerfModel { alpha: 0.5, ..base };
        let ratio = half.mixen_random() / base.mixen_random();
        assert!((ratio - 0.25).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn from_filtered_consistency() {
        let g = mixen_graph::Graph::from_pairs(4, &[(0, 1), (1, 0), (2, 0), (1, 3)]);
        let f = FilteredGraph::new(&g);
        let m = PerfModel::from_filtered(&f, 2);
        assert_eq!(m.n, 4);
        assert_eq!(m.m, 4);
        assert!((m.alpha - 0.5).abs() < 1e-12);
        assert!((m.beta - 0.5).abs() < 1e-12);
        assert_eq!(m.b(), 1.0);
    }

    #[test]
    fn classification_model_agrees_with_filtered_model() {
        use mixen_graph::{Dataset, Scale};
        let g = Dataset::Wiki.generate(Scale::Tiny, 11);
        let class = Classification::of(&g);
        let from_class = PerfModel::from_classification(&g, &class, 65536);
        let f = FilteredGraph::new(&g);
        let from_filtered = PerfModel::from_filtered(&f, 65536);
        assert!((from_class.alpha - from_filtered.alpha).abs() < 1e-12);
        assert!((from_class.beta - from_filtered.beta).abs() < 1e-12);
        assert!((from_class.hub_frac - from_filtered.hub_frac).abs() < 1e-12);
        // Both routes agree on the selected policy, by construction.
        assert_eq!(
            from_class.preferred_ordering(),
            from_filtered.preferred_ordering()
        );
    }

    #[test]
    fn empty_graph_model() {
        let m = PerfModel {
            n: 0,
            m: 0,
            alpha: 0.0,
            beta: 0.0,
            hub_frac: 0.0,
            c: 64,
        };
        assert_eq!(m.mixen_traffic(), 0.0);
        assert_eq!(m.mixen_random(), 0.0);
    }
}
