//! Analytic performance models (§3 and §5 of the paper).
//!
//! The paper derives closed-form memory-traffic and random-access counts for
//! three executions of one InDegree/SpMV iteration, assuming one "element"
//! of data per node/link/update:
//!
//! | approach | traffic (elements)   | random accesses |
//! |----------|----------------------|-----------------|
//! | Pull     | `2m + 2n`            | `m`             |
//! | Block    | `4m + 3n`            | `(n/c)²`        |
//! | Mixen    | `4αn + 4βm` (Eq. 1)  | `(αn/c)²` (Eq. 2)|
//!
//! `α = r/n` is the regular-node fraction, `β = m̃/m` the regular-subgraph
//! edge fraction, `c` the block side in nodes. The `model_check` benchmark
//! compares these predictions against the cache simulator's measured
//! traffic.

use crate::FilteredGraph;

/// Inputs of the §5 model for one graph + block configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Node count `n`.
    pub n: usize,
    /// Edge count `m`.
    pub m: usize,
    /// Regular-node fraction `α`.
    pub alpha: f64,
    /// Regular-edge fraction `β`.
    pub beta: f64,
    /// Block side `c` in nodes.
    pub c: usize,
}

impl PerfModel {
    /// Builds the model from a filtered graph and block side.
    pub fn from_filtered(f: &FilteredGraph, c: usize) -> Self {
        Self {
            n: f.n(),
            m: f.m(),
            alpha: f.alpha(),
            beta: f.beta(),
            c,
        }
    }

    /// Number of regular nodes `r = αn`.
    pub fn r(&self) -> f64 {
        self.alpha * self.n as f64
    }

    /// Regular-subgraph edges `m̃ = βm`.
    pub fn m_tilde(&self) -> f64 {
        self.beta * self.m as f64
    }

    /// Number of blocks per dimension `b = ⌈αn / c⌉`.
    pub fn b(&self) -> f64 {
        (self.r() / self.c as f64).ceil().max(0.0)
    }

    /// Eq. (1): Mixen Main-Phase traffic per iteration, in elements:
    /// `4αn + 4βm`.
    pub fn mixen_traffic(&self) -> f64 {
        4.0 * self.r() + 4.0 * self.m_tilde()
    }

    /// Eq. (2): Mixen random accesses per iteration, `b²`.
    pub fn mixen_random(&self) -> f64 {
        self.b() * self.b()
    }

    /// §3: pulling-flow traffic, `2m + 2n` elements.
    pub fn pull_traffic(&self) -> f64 {
        2.0 * self.m as f64 + 2.0 * self.n as f64
    }

    /// §3: pulling-flow worst-case random accesses, `m`.
    pub fn pull_random(&self) -> f64 {
        self.m as f64
    }

    /// §3: whole-graph blocking traffic, `4m + 3n` elements.
    pub fn block_traffic(&self) -> f64 {
        4.0 * self.m as f64 + 3.0 * self.n as f64
    }

    /// §3: whole-graph blocking random accesses, `(n/c)²`.
    pub fn block_random(&self) -> f64 {
        let b = (self.n as f64 / self.c as f64).ceil();
        b * b
    }

    /// Traffic in bytes for a given element width (the paper's datatypes are
    /// 4 bytes; its worked examples use 1).
    pub fn mixen_traffic_bytes(&self, elem_bytes: usize) -> f64 {
        self.mixen_traffic() * elem_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §3 worked example: wiki with n = 18.2 M, m = 172.2 M,
    /// c = 64 K nodes => ~285² ≈ 81 K blocks for whole-graph blocking.
    #[test]
    fn paper_wiki_example() {
        let m = PerfModel {
            n: 18_200_000,
            m: 172_200_000,
            alpha: 1.0,
            beta: 1.0,
            c: 64 * 1024,
        };
        let blocks = m.block_random();
        assert!((blocks.sqrt() - 278.0).abs() < 5.0, "b = {}", blocks.sqrt());
        assert_eq!(m.pull_random(), 172_200_000.0);
        // Blocking adds (4m+3n) - (2m+2n) = 2m + n elements of traffic:
        // ≈ 362.6 M elements (the paper's 362.6 MB at 1 B/element).
        let extra = m.block_traffic() - m.pull_traffic();
        assert!(
            (extra - 362_600_000.0).abs() < 1_000_000.0,
            "extra = {extra}"
        );
    }

    #[test]
    fn mixen_degenerates_to_block_when_all_regular() {
        let m = PerfModel {
            n: 1000,
            m: 10_000,
            alpha: 1.0,
            beta: 1.0,
            c: 100,
        };
        // §5: at α = β = 1, Mixen traffic 4n + 4m exceeds Block's 4m + 3n.
        assert_eq!(m.mixen_traffic(), 4.0 * 1000.0 + 4.0 * 10_000.0);
        assert!(m.mixen_traffic() > m.block_traffic());
        assert_eq!(m.mixen_random(), m.block_random());
    }

    #[test]
    fn mixen_wins_at_low_alpha() {
        let m = PerfModel {
            n: 1_000_000,
            m: 45_000_000,
            alpha: 0.01,
            beta: 0.06,
            c: 65536,
        };
        assert!(m.mixen_traffic() < 0.2 * m.pull_traffic());
        assert!(m.mixen_random() < m.block_random());
        assert!(m.mixen_random() < m.pull_random());
    }

    #[test]
    fn random_accesses_scale_with_alpha_squared() {
        let base = PerfModel {
            n: 2_000_000,
            m: 30_000_000,
            alpha: 1.0,
            beta: 1.0,
            c: 1000,
        };
        let half = PerfModel { alpha: 0.5, ..base };
        let ratio = half.mixen_random() / base.mixen_random();
        assert!((ratio - 0.25).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn from_filtered_consistency() {
        let g = mixen_graph::Graph::from_pairs(4, &[(0, 1), (1, 0), (2, 0), (1, 3)]);
        let f = FilteredGraph::new(&g);
        let m = PerfModel::from_filtered(&f, 2);
        assert_eq!(m.n, 4);
        assert_eq!(m.m, 4);
        assert!((m.alpha - 0.5).abs() < 1e-12);
        assert!((m.beta - 0.5).abs() < 1e-12);
        assert_eq!(m.b(), 1.0);
    }

    #[test]
    fn empty_graph_model() {
        let m = PerfModel {
            n: 0,
            m: 0,
            alpha: 0.0,
            beta: 0.0,
            c: 64,
        };
        assert_eq!(m.mixen_traffic(), 0.0);
        assert_eq!(m.mixen_random(), 0.0);
    }
}
