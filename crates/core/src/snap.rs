//! Atomic snapshot cell: the serving layer's wait-light publish/subscribe
//! point for immutable rank snapshots.
//!
//! The online ranking service (`mixen-serve`) keeps a resident engine
//! iterating in the background and answers queries from the last published
//! snapshot. The contract between the one ranking loop (writer) and the
//! request workers (readers) is:
//!
//! * **Atomicity** — a reader always observes a `(version, value)` pair
//!   exactly as published; never a torn mix of two publishes.
//! * **Monotonicity** — versions observed by any single reader across
//!   successive [`SnapCell::load`] calls never decrease (no
//!   stale-then-fresh-then-stale sequences).
//! * **Wait-light reads** — readers never contend with the writer's slot
//!   mutex on the fast path: the writer prepares the next snapshot in the
//!   *spare* slot while readers clone from the *live* slot, and the
//!   publication itself is a single release-store of the packed
//!   version/slot word. The only cross-party blocking is a reader still
//!   mid-`Arc`-clone in a slot the *next* publish wants to reuse — a bound
//!   of one refcount increment, not one ranking convergence.
//!
//! The protocol is small enough to model-check: every field goes through
//! the crate's `msync` facade, so `--features model-check` builds explore all
//! interleavings of `load` and `publish` under `mixen-check` (see
//! `crates/check/tests/snap_model.rs`). Release builds compile to plain
//! `std::sync` types.
//!
//! # Protocol
//!
//! State: two slots each holding an `Arc<T>` behind a mutex, plus one
//! atomic word `current` packing `(version << 1) | live_slot_index`.
//!
//! * `load`: read `current` (acquire) → lock the live slot → re-read
//!   `current`; if unchanged, clone the `Arc` and return, else unlock and
//!   retry. The re-check makes the torn case impossible: a slot can only be
//!   overwritten under its mutex, and overwrites are preceded by a
//!   `current` change (the slot must first become the spare), which the
//!   re-check observes because versions strictly increase.
//! * `publish`: serialize writers (writer mutex) → lock the spare slot and
//!   store the new `Arc` → release-store `current` with the spare as the
//!   new live slot and `version + 1`.

use std::sync::Arc;

use crate::msync::atomic::{AtomicU64, Ordering};
use crate::msync::Mutex;

/// An atomically swappable, versioned `Arc<T>` — see the module docs for
/// the protocol and its guarantees.
pub struct SnapCell<T> {
    /// Packed publication word: `(version << 1) | live_slot_index`.
    current: AtomicU64,
    /// Double buffer; `current`'s low bit names the live slot, the other
    /// slot is the writer's staging area.
    slots: [Mutex<Arc<T>>; 2],
    /// Serializes writers so the spare-slot choice cannot race.
    writer: Mutex<()>,
}

impl<T> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The slots stay opaque: locking them inside Debug could interleave
        // with a model execution; the version is the useful identity anyway.
        f.debug_struct("SnapCell")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

impl<T> SnapCell<T> {
    /// A cell whose initial content is `initial` at version 0.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            current: AtomicU64::new(0),
            slots: [Mutex::new(Arc::clone(&initial)), Mutex::new(initial)],
            writer: Mutex::new(()),
        }
    }

    /// The version of the currently live snapshot. Monotonically
    /// non-decreasing; cheap enough to poll (a single atomic load), which
    /// is how request workers detect "a fresh snapshot arrived" without
    /// touching the slots.
    pub fn version(&self) -> u64 {
        self.current.load(Ordering::Acquire) >> 1
    }

    /// Returns the live snapshot and its version.
    ///
    /// Never blocks on the writer's staging work; retries only when a
    /// publish lands between the `current` read and the slot lock (at most
    /// once per concurrent publish).
    pub fn load(&self) -> (u64, Arc<T>) {
        loop {
            let cur = self.current.load(Ordering::Acquire);
            let idx = (cur & 1) as usize;
            let guard = lock_recover(&self.slots[idx]);
            // Re-check under the lock: if `current` moved, this slot may be
            // (or be about to become) the writer's spare — its content then
            // belongs to a publish newer than `cur` and returning it with
            // `cur`'s version would be a torn pair. Versions strictly
            // increase, so an unchanged word proves no publish completed
            // and the slot still holds `cur`'s value.
            if self.current.load(Ordering::Acquire) == cur {
                return (cur >> 1, Arc::clone(&*guard));
            }
        }
    }

    /// Publishes `next` as the new live snapshot; returns its version.
    ///
    /// Writers are serialized internally; readers continue to be served
    /// from the previous snapshot until the final release-store, at which
    /// point new `load`s see `next`.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let _writer = lock_recover(&self.writer);
        let cur = self.current.load(Ordering::Acquire);
        let spare = ((cur & 1) ^ 1) as usize;
        {
            let mut guard = lock_recover(&self.slots[spare]);
            *guard = next;
        }
        let packed = ((cur >> 1) + 1) << 1 | spare as u64;
        self.current.store(packed, Ordering::Release);
        packed >> 1
    }
}

/// Locks, recovering from poisoning: a reader that panicked mid-clone
/// cannot leave the cell unusable (the content is a plain `Arc`, never
/// partially updated under the lock).
fn lock_recover<T>(m: &Mutex<T>) -> impl std::ops::DerefMut<Target = T> + '_ {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_and_publish_bump_versions() {
        let cell = SnapCell::new(Arc::new(10u64));
        assert_eq!(cell.version(), 0);
        let (v, val) = cell.load();
        assert_eq!((v, *val), (0, 10));
        assert_eq!(cell.publish(Arc::new(11)), 1);
        assert_eq!(cell.publish(Arc::new(12)), 2);
        let (v, val) = cell.load();
        assert_eq!((v, *val), (2, 12));
        assert_eq!(cell.version(), 2);
    }

    #[test]
    fn loads_share_the_published_allocation() {
        let snap = Arc::new(vec![1.0f32; 64]);
        let cell = SnapCell::new(Arc::clone(&snap));
        let (_, a) = cell.load();
        let (_, b) = cell.load();
        assert!(Arc::ptr_eq(&a, &snap) && Arc::ptr_eq(&b, &snap));
    }

    /// Stress the protocol with real threads: every observed pair must be
    /// consistent (payload encodes its version) and per-reader versions
    /// must never go backwards.
    #[test]
    fn concurrent_readers_see_consistent_monotonic_pairs() {
        const PUBLISHES: u64 = 400;
        let cell = Arc::new(SnapCell::new(Arc::new(0u64)));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for v in 1..=PUBLISHES {
                    assert_eq!(cell.publish(Arc::new(v)), v);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while last < PUBLISHES {
                        let (version, value) = cell.load();
                        assert_eq!(*value, version, "torn version/payload pair");
                        assert!(version >= last, "version regressed {last} -> {version}");
                        last = last.max(version);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.version(), PUBLISHES);
    }
}
