//! **Mixen** — connectivity-aware link analysis for skewed graphs.
//!
//! Rust implementation of the framework from *"Connectivity-Aware Link
//! Analysis for Skewed Graphs"* (ICPP 2023). Mixen accelerates iterative
//! link-analysis workloads (SpMV / InDegree, PageRank, Collaborative
//! Filtering) on shared-memory multicores by exploiting the irregular
//! connectivity of power-law graphs:
//!
//! 1. [`filter::FilteredGraph`] relabels nodes by connectivity class
//!    (regular / seed / sink / isolated) and moves hubs to the front,
//!    extracting a mixed CSR/CSC representation in a single scan (§4.1).
//! 2. [`block::BlockedSubgraph`] partitions the regular×regular subgraph
//!    into cache-sized 2-D blocks with propagation bins and edge
//!    compression (§4.2).
//! 3. [`engine::MixenEngine`] schedules the computation into a Pre-Phase
//!    (seed contributions cached into static bins), an iterative Main-Phase
//!    running the Scatter–Cache–Gather–Apply (SCGA) model, and a Post-Phase
//!    that finishes sink nodes once (§4.3).
//! 4. [`model`] provides the paper's §5 analytic memory-traffic and
//!    random-access models.
//!
//! # Quick start
//!
//! ```
//! use mixen_core::{MixenEngine, MixenOpts};
//! use mixen_graph::Graph;
//!
//! // 0,1 regular; 2 seed; 3 sink.
//! let g = Graph::from_pairs(4, &[(0, 1), (1, 0), (2, 0), (1, 3)]);
//! let mut engine = MixenEngine::new(&g, MixenOpts::default());
//! // One InDegree (SpMV) iteration: y = A^T 1.
//! let y = engine.iterate::<f32, _, _>(|_| 1.0, |_, sum| sum, 1);
//! assert_eq!(y, vec![2.0, 1.0, 0.0, 1.0]);
//! ```

pub mod bins;
pub mod block;
pub mod delta;
pub mod engine;
pub mod filter;
pub mod model;
pub mod obs;
pub mod opts;
pub mod reorder;
pub mod runner;
pub mod scga;
pub mod snap;
pub mod wengine;

/// Atomics facade for the concurrency-audited sites (the SCGA claim flags
/// and the watchdog handshake): under `model-check` these route through the
/// `mixen-check` instrumented types so schedule exploration sees every
/// access; otherwise they are plain `std::sync::atomic` re-exports and the
/// compiled code is identical to using std directly.
#[cfg(feature = "model-check")]
pub(crate) mod msync {
    pub(crate) use mixen_check::sync::atomic;
    pub(crate) use mixen_check::sync::Mutex;
}
#[cfg(not(feature = "model-check"))]
pub(crate) mod msync {
    pub(crate) use std::sync::atomic;
    pub(crate) use std::sync::Mutex;
}

/// Model probes (`model-check` feature): handles that let `mixen-check`
/// tests drive the SCGA write-path claim flags and the watchdog stall/
/// deadline handshake through the instrumented facade, with synthetic
/// timestamps instead of real clocks.
#[cfg(feature = "model-check")]
pub mod mc {
    pub use crate::runner::mc::WatchdogProbe;
    pub use crate::scga::mc::SegProbe;
}

pub use block::BlockedSubgraph;
pub use delta::DeltaStats;
pub use engine::{MixenEngine, PhaseStats};
pub use filter::FilteredGraph;
pub use model::PerfModel;
pub use obs::{Json, Metrics, MetricsSnapshot, Span};
pub use bins::BinEncoding;
pub use opts::{MixenOpts, RegularOrdering};
pub use reorder::{ReorderChoice, ReorderPolicy};
pub use runner::{
    DegradationEvent, EngineUsed, NumericIssue, Resumed, RobustRunner, RunFailure, RunReport,
    RunnerOpts, ValueCheck,
};
pub use snap::SnapCell;
pub use wengine::WMixenEngine;
