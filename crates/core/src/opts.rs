//! Mixen configuration knobs.
//!
//! Defaults follow the paper's evaluation setup (§6.1): 64 Ki-node block
//! side (a 256 KB property segment at 4 bytes per value, the sweet spot of
//! Fig. 6/7), hub relocation on, the Cache step on, and the 2× load-balance
//! split on. The ablation benchmark toggles each knob individually.

/// How regular nodes are ordered within their relabeled range (step 2 of
/// the filtering procedure, §4.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RegularOrdering {
    /// Keep original relative order (hub relocation ablated away).
    Original,
    /// The paper's scheme: hubs (in-degree > average) first, original
    /// relative order preserved within hubs and within non-hubs.
    #[default]
    HubsFirst,
    /// Extension: full stable sort by descending in-degree — the
    /// degree-reordering strategy of frameworks like Gorder/DegreeSort,
    /// exposed to compare against the paper's cheaper two-bucket split.
    ByInDegree,
    /// Degree-Based Grouping (Faldu et al.): hub extraction, then the
    /// non-hub suffix regrouped into coarse logarithmic degree classes
    /// (stable within each class). See `crate::reorder::DegreeGroup`.
    Dbg,
    /// HubSort (Faldu et al.): hub extraction, then only the hub prefix
    /// sorted by descending in-degree. See `crate::reorder::HubDegreeSort`.
    HubSort,
}

impl RegularOrdering {
    /// Every policy, in shoot-out table order.
    pub const ALL: [RegularOrdering; 5] = [
        RegularOrdering::Original,
        RegularOrdering::HubsFirst,
        RegularOrdering::ByInDegree,
        RegularOrdering::Dbg,
        RegularOrdering::HubSort,
    ];

    /// The CLI/report name of the policy (the `--reorder` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            RegularOrdering::Original => "original",
            RegularOrdering::HubsFirst => "hubs-first",
            RegularOrdering::ByInDegree => "by-in-degree",
            RegularOrdering::Dbg => "dbg",
            RegularOrdering::HubSort => "hubsort",
        }
    }

    /// Parses a policy name as accepted by `--reorder` (without `auto`;
    /// see `crate::reorder::ReorderChoice` for the full flag vocabulary).
    pub fn parse(s: &str) -> Option<Self> {
        RegularOrdering::ALL.into_iter().find(|o| o.name() == s)
    }

    /// Stable numeric ID stamped into the `reorder_policy` obs gauge and
    /// folded into checkpoint fingerprints.
    pub fn policy_id(self) -> u64 {
        match self {
            RegularOrdering::Original => 0,
            RegularOrdering::HubsFirst => 1,
            RegularOrdering::ByInDegree => 2,
            RegularOrdering::Dbg => 3,
            RegularOrdering::HubSort => 4,
        }
    }
}

/// How [`crate::bins::DynamicBins`] store streamed values (§4.2 traffic
/// knob): full-width, or one of the 16-bit compressed encodings that
/// roughly halve Main-Phase bin traffic for 4-byte property types.
///
/// Compression applies only to property types that opt in
/// (`PropValue::ENCODABLE`, i.e. `f32`); other types silently keep
/// full-width streams. Lossy encodings are gated by a measured accuracy
/// budget at Scatter time — see `crate::bins::BinEncoding`.
pub use crate::bins::BinEncoding;

/// Configuration for [`crate::MixenEngine`].
#[derive(Clone, Copy, Debug)]
pub struct MixenOpts {
    /// Block side `c` in nodes: each 2-D block spans `c` source nodes by
    /// `c` destination nodes. The paper's default is 64 Ki nodes = 256 KB.
    pub block_side: usize,
    /// Step 2 of filtering: how the regular range is ordered.
    pub ordering: RegularOrdering,
    /// Use static bins to cache seed→regular contributions (the Cache step
    /// of SCGA). When disabled, seed contributions are recomputed and
    /// re-propagated every iteration (the redundancy the paper eliminates).
    pub cache_step: bool,
    /// Split block-rows whose edge count exceeds `balance_factor`× the
    /// average so no single task dominates (§4.2).
    pub load_balance: bool,
    /// Overload threshold multiplier (the paper uses 2×).
    pub balance_factor: f64,
    /// §6.4: keep at least `min_tasks_per_thread` block-rows per thread by
    /// shrinking the block side on graphs with few regular nodes.
    pub min_tasks_per_thread: usize,
    /// Chunk block-columns whose edge count exceeds `balance_factor`× the
    /// average column load into multiple gather tasks over disjoint
    /// destination sub-ranges — the gather-side mirror of the §4.2 scatter
    /// split. Disabled, every block-column is exactly one gather task.
    pub gather_balance: bool,
    /// Precompute per-row/per-column nonempty-block index lists so the
    /// Scatter/Gather/BFS kernels walk only blocks that hold edges.
    /// Disabled, the skip lists enumerate *every* block — the kernels run
    /// the same code over the naive full walk (the A/B knob of the
    /// `kernels` perf-regression bench).
    pub skip_empty_blocks: bool,
    /// Inner-loop unroll width of the Scatter/Gather value-stream kernels
    /// (1, 2, 4 or 8). Widths > 1 process the bin streams in explicit
    /// chunked copies and combines that the compiler vectorizes; every
    /// width is bit-for-bit identical to the scalar walk (enforced by
    /// `debug_validate` and the width-identity property tests). Default 4,
    /// overridable via `MIXEN_KERNEL_WIDTH`.
    pub kernel_width: usize,
    /// Software-prefetch distance of the streaming kernels, in look-ahead
    /// entries (next dynamic-bin segment on Scatter, next `ChunkIndex`
    /// run on Gather). `0` disables prefetching; the intrinsic compiles to
    /// a no-op on targets without one. Purely a latency hint — never
    /// affects results.
    pub prefetch_distance: usize,
    /// Value encoding of the dynamic bins (full-width `f32`, IEEE `f16`,
    /// or 16-bit fixed-point `q16`). See [`BinEncoding`].
    pub bin_encoding: BinEncoding,
}

impl Default for MixenOpts {
    fn default() -> Self {
        Self {
            block_side: 64 * 1024,
            ordering: RegularOrdering::HubsFirst,
            cache_step: true,
            load_balance: true,
            balance_factor: 2.0,
            min_tasks_per_thread: 4,
            gather_balance: true,
            skip_empty_blocks: true,
            kernel_width: default_kernel_width(),
            prefetch_distance: 1,
            bin_encoding: BinEncoding::F32,
        }
    }
}

/// Kernel widths the Scatter/Gather inner loops specialize for.
pub const KERNEL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The default kernel width: `MIXEN_KERNEL_WIDTH` when set to a supported
/// width, otherwise 4 (one 128-bit lane of `f32`s; CI also exercises 8).
fn default_kernel_width() -> usize {
    match std::env::var("MIXEN_KERNEL_WIDTH") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(w) if KERNEL_WIDTHS.contains(&w) => w,
            _ => 4,
        },
        Err(_) => 4,
    }
}

impl MixenOpts {
    /// Builder-style override of the block side.
    pub fn with_block_side(mut self, c: usize) -> Self {
        assert!(c > 0, "block side must be positive");
        self.block_side = c;
        self
    }

    /// The block side actually used for a regular subgraph of `r` nodes on
    /// `threads` workers: shrunk when `r` is too small to produce
    /// `min_tasks_per_thread × threads` block-rows (§6.4), floored at 256
    /// nodes so blocks never degenerate.
    pub fn effective_block_side(&self, r: usize, threads: usize) -> usize {
        if r == 0 {
            return self.block_side;
        }
        let want_tasks = (self.min_tasks_per_thread * threads.max(1)).max(1);
        let cap = r.div_ceil(want_tasks).max(256);
        self.block_side.min(cap).max(1)
    }

    /// GRASP-style cache-domain sizing: the hub prefix `0..num_hub` is a
    /// pinned domain whose property values stay hot across every block-row,
    /// so regular-region blocks are sized to the budget left after the hub
    /// working set — `block_side − num_hub` destination values instead of
    /// `block_side`. Pinning engages only while the hub set leaves at least
    /// half the budget (a larger hub set cannot stay resident anyway, and
    /// carving it out would just shred the grid), and the result keeps both
    /// the §6.4 small-graph shrink and the 256-node floor of
    /// [`MixenOpts::effective_block_side`].
    pub fn effective_block_side_domain(&self, r: usize, num_hub: usize, threads: usize) -> usize {
        let base = self.effective_block_side(r, threads);
        if num_hub == 0 || num_hub * 2 > self.block_side {
            return base;
        }
        base.min((self.block_side - num_hub).max(256))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = MixenOpts::default();
        assert_eq!(o.block_side, 65536);
        assert_eq!(o.ordering, RegularOrdering::HubsFirst);
        assert!(o.cache_step && o.load_balance);
        assert_eq!(o.balance_factor, 2.0);
        assert!(o.gather_balance && o.skip_empty_blocks);
        // Raw-speed pass defaults: width 4 (env-overridable), one-entry
        // prefetch look-ahead, full-width bins.
        let want_width = match std::env::var("MIXEN_KERNEL_WIDTH") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(w) if KERNEL_WIDTHS.contains(&w) => w,
                _ => 4,
            },
            Err(_) => 4,
        };
        assert_eq!(o.kernel_width, want_width);
        assert_eq!(o.prefetch_distance, 1);
        assert_eq!(o.bin_encoding, BinEncoding::F32);
    }

    #[test]
    fn effective_side_shrinks_for_small_graphs() {
        let o = MixenOpts::default();
        // 20 threads, 4 tasks each => 80 tasks wanted; r = 100_000 =>
        // side <= 1250, floored at 256.
        let c = o.effective_block_side(100_000, 20);
        assert!((256..=1250).contains(&c), "c = {c}");
    }

    #[test]
    fn effective_side_keeps_default_for_large_graphs() {
        let o = MixenOpts::default();
        assert_eq!(o.effective_block_side(100_000_000, 20), 65536);
    }

    #[test]
    fn effective_side_handles_zero_regular() {
        let o = MixenOpts::default();
        assert_eq!(o.effective_block_side(0, 8), o.block_side);
    }

    #[test]
    #[should_panic(expected = "block side must be positive")]
    fn zero_block_side_rejected() {
        let _ = MixenOpts::default().with_block_side(0);
    }

    #[test]
    fn policy_names_round_trip() {
        for o in RegularOrdering::ALL {
            assert_eq!(RegularOrdering::parse(o.name()), Some(o));
        }
        assert_eq!(RegularOrdering::parse("auto"), None);
        // IDs are distinct and stable (checkpoint fingerprints rely on
        // them).
        let ids: Vec<u64> = RegularOrdering::ALL.iter().map(|o| o.policy_id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hub_domain_shrinks_the_block_side() {
        let o = MixenOpts::default();
        // Large graph, 16 Ki hubs pinned: 64 Ki − 16 Ki = 48 Ki leftover.
        let c = o.effective_block_side_domain(100_000_000, 16 * 1024, 1);
        assert_eq!(c, 48 * 1024);
    }

    #[test]
    fn hub_domain_pinning_disengages_when_hubs_overflow_the_budget() {
        let o = MixenOpts::default();
        // No hubs: identical to the plain sizing.
        assert_eq!(
            o.effective_block_side_domain(100_000_000, 0, 1),
            o.effective_block_side(100_000_000, 1)
        );
        // Hub set above half the budget: pinning off.
        assert_eq!(
            o.effective_block_side_domain(100_000_000, 40 * 1024, 1),
            o.effective_block_side(100_000_000, 1)
        );
    }

    #[test]
    fn hub_domain_respects_the_small_graph_shrink_and_floor() {
        let o = MixenOpts::default();
        // Small-graph cap still applies (and is already below the leftover).
        let plain = o.effective_block_side(100_000, 20);
        assert_eq!(o.effective_block_side_domain(100_000, 1024, 20), plain);
        // The 256-node floor holds even with a near-half-budget hub set.
        let c = o.effective_block_side_domain(100_000_000, 32 * 1024 - 100, 1);
        assert!(c >= 256, "c = {c}");
    }
}
