//! Adaptive (delta) iteration — an extension beyond the paper.
//!
//! Dense synchronous engines re-propagate every node every iteration even
//! when most values have converged. Because the in-sum is *linear* in the
//! propagated values, it can be maintained incrementally: each iteration
//! only the nodes whose value changed by more than `epsilon` scatter their
//! *delta* along the out-edges, reusing the same blocked structure and the
//! sparse merge path built for BFS. With `epsilon = 0` the result is exact
//! (modulo float rounding); with a small positive `epsilon` the computation
//! skips converged regions, which is how frameworks like GPOP/GraphMat run
//! convergence-driven PageRank.
//!
//! Seeds fit naturally: their contribution enters the persistent sums once
//! (through the static bin) and their delta is zero forever after — the
//! Cache step's insight, taken to every node.

use mixen_graph::nid;
use mixen_graph::NodeId;
use rayon::prelude::*;

use crate::engine::MixenEngine;

/// Outcome statistics of an adaptive run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeltaStats {
    /// Iterations executed (including the initializing full pass).
    pub iterations: usize,
    /// Total node-scatters across all iterations (the dense equivalent is
    /// `iterations × r` — the ratio is the work saved).
    pub scattered_nodes: u64,
    /// Whether the active set emptied before `max_iters`.
    pub converged: bool,
}

impl MixenEngine {
    /// Runs `x'[v] = apply(v, Σ_{u→v} x[u])` adaptively: after a full first
    /// iteration, only nodes whose value changed by more than `epsilon`
    /// propagate (their delta). Returns final values in original-ID order
    /// plus [`DeltaStats`]. Restricted to `f32` because deltas need
    /// subtraction.
    pub fn iterate_delta<FI, FA>(
        &self,
        init: FI,
        apply: FA,
        epsilon: f32,
        max_iters: usize,
    ) -> (Vec<f32>, DeltaStats)
    where
        FI: Fn(NodeId) -> f32 + Sync,
        FA: Fn(NodeId, f32) -> f32 + Sync,
    {
        let f = self.filtered();
        let r = f.num_regular();
        let s = f.num_seed();
        let mut stats = DeltaStats::default();

        if max_iters == 0 {
            let out: Vec<f32> = (0..nid(f.n())).into_par_iter().map(&init).collect();
            return (out, stats);
        }

        let seed_vals: Vec<f32> = (0..s)
            .into_par_iter()
            .map(|i| init(f.to_old(nid(r + i))))
            .collect();

        // Persistent in-sums, seeded with the Pre-Phase contributions.
        let sta = crate::bins::StaticBin::<f32>::compute(f.seed_csr(), &seed_vals, r);
        let mut sums: Vec<f32> = sta.values().to_vec();

        // Initializing full pass: everyone scatters x0.
        let mut x: Vec<f32> = (0..r)
            .into_par_iter()
            .map(|v| init(f.to_old(nid(v))))
            .collect();
        {
            let deltas: Vec<f32> = x.clone();
            let all: Vec<u32> = (0..nid(r)).collect();
            self.scatter_deltas(&all, &deltas, &mut sums);
            stats.scattered_nodes += r as u64;
            stats.iterations = 1;
        }

        for _ in 1..max_iters {
            // Apply on the maintained sums; collect deltas above epsilon.
            let new_x: Vec<f32> = (0..r)
                .into_par_iter()
                .map(|v| apply(f.to_old(nid(v)), sums[v]))
                .collect();
            let active: Vec<u32> = (0..nid(r))
                .into_par_iter()
                .filter(|&v| (new_x[v as usize] - x[v as usize]).abs() > epsilon)
                .collect();
            let deltas: Vec<f32> = active
                .par_iter()
                .map(|&v| new_x[v as usize] - x[v as usize])
                .collect();
            x = new_x;
            stats.iterations += 1;
            if active.is_empty() {
                stats.converged = true;
                break;
            }
            // `active` is produced in ascending order by the range iterator.
            self.scatter_deltas_sparse(&active, &deltas, &mut sums);
            stats.scattered_nodes += active.len() as u64;
        }

        // Final values: one more Apply so the output reflects the last
        // deltas. `x` still holds the previous iteration's values — the
        // messages of the final propagation — which is what the Post-Phase
        // must use (parity with the dense engine's semantics).
        let x_prev = x;
        let x_final: Vec<f32> = (0..r)
            .into_par_iter()
            .map(|v| apply(f.to_old(nid(v)), sums[v]))
            .collect();

        // Post-Phase: sinks pull the final propagated values; results are
        // mapped back to original IDs.
        let sink_base = r + s;
        let by_new: Vec<f32> = (0..f.n())
            .into_par_iter()
            .map(|new| {
                let old = f.to_old(nid(new));
                if new < r {
                    x_final[new]
                } else if new < r + s {
                    apply(old, 0.0)
                } else if new < sink_base + f.num_sink() {
                    let k = nid(new - sink_base);
                    let mut sum = 0.0f32;
                    for &v in f.sink_csc().neighbors(k) {
                        sum += if (v as usize) < r {
                            x_prev[v as usize]
                        } else {
                            seed_vals[v as usize - r]
                        };
                    }
                    apply(old, sum)
                } else {
                    apply(old, 0.0)
                }
            })
            .collect();
        (f.unpermute(&by_new), stats)
    }

    /// Dense-delta scatter: every listed (ascending) source adds its delta
    /// into the persistent sums of its out-neighbours, through the blocked
    /// structure (parallel per column block, no atomics).
    fn scatter_deltas(&self, active: &[u32], deltas: &[f32], sums: &mut [f32]) {
        self.scatter_deltas_impl(active, deltas, sums, true);
    }

    /// Sparse-delta scatter: `deltas[i]` belongs to `active[i]`.
    fn scatter_deltas_sparse(&self, active: &[u32], deltas: &[f32], sums: &mut [f32]) {
        self.scatter_deltas_impl(active, deltas, sums, false);
    }

    fn scatter_deltas_impl(
        &self,
        active: &[u32],
        deltas: &[f32],
        sums: &mut [f32],
        dense_index: bool,
    ) {
        let blocked = self.blocked();
        let rows = blocked.rows();
        // Per task and column block: (position, delta) lists.
        let staged: Vec<Vec<Vec<(u32, f32)>>> = rows
            .par_iter()
            .map(|row| {
                let lo = active.partition_point(|&u| u < row.src_start);
                let hi = active.partition_point(|&u| u < row.src_end);
                let local: Vec<(u32, f32)> = active[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(off, &u)| {
                        let delta = if dense_index {
                            deltas[u as usize]
                        } else {
                            deltas[lo + off]
                        };
                        (u - row.src_start, delta)
                    })
                    .collect();
                row.blocks
                    .iter()
                    .map(|blk| {
                        let ids: Vec<u32> = local.iter().map(|&(u, _)| u).collect();
                        crate::scga::merge_positions(&blk.src_ids, &ids)
                            .into_iter()
                            .map(|k| {
                                let src = blk.src_ids[k as usize];
                                let pos = local.partition_point(|&(u, _)| u < src);
                                (k, local[pos].1)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Gather per column block.
        let mut segs: Vec<&mut [f32]> = Vec::with_capacity(blocked.n_col_blocks());
        let mut rest = sums;
        for j in 0..blocked.n_col_blocks() {
            let len = blocked.col_range(j).len();
            let (seg, tail) = rest.split_at_mut(len);
            segs.push(seg);
            rest = tail;
            let _ = j;
        }
        segs.par_iter_mut().enumerate().for_each(|(j, seg)| {
            for (row, stage) in rows.iter().zip(&staged) {
                let blk = &row.blocks[j];
                for &(k, delta) in &stage[j] {
                    for &d in blk.dests_of(k as usize) {
                        seg[d as usize] += delta;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixenOpts;
    use mixen_graph::{Dataset, Graph, Scale};

    fn small_opts() -> MixenOpts {
        MixenOpts {
            block_side: 4,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        }
    }

    fn pagerank_kernel(
        g: &Graph,
    ) -> (
        impl Fn(NodeId) -> f32 + Sync + '_,
        impl Fn(NodeId, f32) -> f32 + Sync + '_,
    ) {
        let n = g.n().max(1) as f32;
        let base = 0.15 / n;
        let init = move |v: NodeId| {
            let odeg = g.out_degree(v).max(1) as f32;
            (if g.in_degree(v) == 0 { base } else { 1.0 / n }) / odeg
        };
        let apply = move |v: NodeId, s: f32| (base + 0.85 * s) / g.out_degree(v).max(1) as f32;
        (init, apply)
    }

    #[test]
    fn zero_epsilon_matches_dense_engine() {
        let g = Dataset::Wiki.generate(Scale::Tiny, 44);
        let e = MixenEngine::new(&g, MixenOpts::default());
        let (init, apply) = pagerank_kernel(&g);
        let (adaptive, stats) = e.iterate_delta(&init, &apply, 0.0, 30);
        let dense = e.iterate::<f32, _, _>(&init, &apply, stats.iterations);
        for (i, (a, b)) in adaptive.iter().zip(&dense).enumerate() {
            assert!((a - b).abs() < 1e-5, "node {i}: {a} vs {b}");
        }
    }

    #[test]
    fn small_epsilon_reduces_work_and_stays_close() {
        let g = Dataset::Wiki.generate(Scale::Tiny, 44);
        let e = MixenEngine::new(&g, MixenOpts::default());
        let (init, apply) = pagerank_kernel(&g);
        let (exact, exact_stats) = e.iterate_delta(&init, &apply, 0.0, 50);
        let (approx, approx_stats) = e.iterate_delta(&init, &apply, 1e-7, 50);
        assert!(
            approx_stats.scattered_nodes < exact_stats.scattered_nodes,
            "{} vs {}",
            approx_stats.scattered_nodes,
            exact_stats.scattered_nodes
        );
        let max_err = exact
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "max error {max_err}");
    }

    #[test]
    fn converges_and_reports_it() {
        // A contraction converges quickly; the active set must empty.
        let g = Graph::from_pairs(5, &[(0, 1), (1, 2), (2, 0), (3, 1), (2, 4)]);
        let e = MixenEngine::new(&g, small_opts());
        let (vals, stats) = e.iterate_delta(|_| 1.0, |_, s| 0.25 * s + 0.5, 1e-9, 200);
        assert!(stats.converged, "{stats:?}");
        assert!(stats.iterations < 60);
        // Agree with the dense fixed point.
        let dense = e.iterate::<f32, _, _>(|_| 1.0, |_, s| 0.25 * s + 0.5, 100);
        for (a, b) in vals.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_iterations_returns_init() {
        let g = Graph::from_pairs(3, &[(0, 1)]);
        let e = MixenEngine::new(&g, small_opts());
        let (vals, stats) = e.iterate_delta(|v| v as f32, |_, _| f32::NAN, 0.0, 0);
        assert_eq!(vals, vec![0.0, 1.0, 2.0]);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn seed_heavy_graph_still_exact() {
        let g = Dataset::Weibo.generate(Scale::Tiny, 21);
        let e = MixenEngine::new(&g, MixenOpts::default());
        let (init, apply) = pagerank_kernel(&g);
        let (adaptive, stats) = e.iterate_delta(&init, &apply, 0.0, 10);
        let dense = e.iterate::<f32, _, _>(&init, &apply, stats.iterations);
        for (a, b) in adaptive.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
