//! 2-D partitioning of the regular subgraph (§4.2).
//!
//! The `r × r` regular adjacency is cut into cache-sized blocks. Block-rows
//! (source ranges) are the parallel unit of the Scatter step; fixed-width
//! block-columns (destination ranges) are the parallel unit of the Gather
//! step. Each block stores a *compressed local CSR*:
//!
//! * `src_ids`  — local source indices with ≥ 1 edge into this block,
//! * `dest_ptr` — per-source offsets into `dests`,
//! * `dests`    — local destination indices.
//!
//! A dynamic bin streams exactly **one value per `src_ids` entry** per
//! iteration — the paper's edge-compression technique [Lakhotia et al.,
//! ATC'18]: messages from one source to many destinations inside a block
//! collapse into a single transmission. (The paper encodes the same
//! information with an MSB flag on the first destination of each source;
//! the explicit `src_ids`/`dest_ptr` arrays carry identical content and
//! additionally enable the sparse frontier traversal used by BFS.)
//!
//! Load balancing (§4.2): block-row heights start at the block side `c`,
//! but any row range whose edge count exceeds `balance_factor ×` the
//! average block-row load is split greedily, so the number of non-zeros per
//! scatter task stays bounded.

use mixen_graph::nid;
use mixen_graph::{Csr, GraphError};
use rayon::prelude::*;

use crate::MixenOpts;

/// One cache-sized block: the edges from a source row range into one
/// destination column range, in compressed-local-CSR form.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Local source indices (ascending) that own at least one edge here.
    pub src_ids: Box<[u32]>,
    /// Offsets into `dests`; length `src_ids.len() + 1`.
    pub dest_ptr: Box<[u32]>,
    /// Local destination indices, grouped by source.
    pub dests: Box<[u32]>,
}

impl Block {
    /// Number of edges stored in the block.
    pub fn nnz(&self) -> usize {
        self.dests.len()
    }

    /// Number of values a dynamic bin streams for this block per iteration
    /// (the compressed message count).
    pub fn msg_count(&self) -> usize {
        self.src_ids.len()
    }

    /// The destinations of the `k`-th active source.
    #[inline]
    pub fn dests_of(&self, k: usize) -> &[u32] {
        &self.dests[self.dest_ptr[k] as usize..self.dest_ptr[k + 1] as usize]
    }
}

/// A load-balanced block-row: one scatter task.
#[derive(Clone, Debug)]
pub struct BlockRow {
    /// Source node range (new IDs within the regular subgraph).
    pub src_start: u32,
    /// Exclusive end of the source range.
    pub src_end: u32,
    /// One block per block-column.
    pub blocks: Vec<Block>,
    /// Total edges in this row range.
    pub nnz: usize,
}

/// The blocked regular subgraph.
#[derive(Clone, Debug)]
pub struct BlockedSubgraph {
    r: usize,
    c: usize,
    n_col_blocks: usize,
    rows: Vec<BlockRow>,
}

impl BlockedSubgraph {
    /// Partitions `reg_csr` (which must be square, `r × r`) according to
    /// `opts`, using `threads` to pick the effective block side (§6.4).
    pub fn new(reg_csr: &Csr, opts: &MixenOpts, threads: usize) -> Self {
        assert_eq!(
            reg_csr.n_rows(),
            reg_csr.n_cols(),
            "regular CSR must be square"
        );
        let r = reg_csr.n_rows();
        let c = opts.effective_block_side(r, threads);
        let n_col_blocks = if r == 0 { 0 } else { r.div_ceil(c) };

        // Row ranges: start from fixed height c, split overloaded ranges.
        let ranges = plan_row_ranges(reg_csr, c, opts);

        let rows: Vec<BlockRow> = ranges
            .par_iter()
            .map(|&(lo, hi)| build_block_row(reg_csr, lo, hi, c, n_col_blocks))
            .collect();

        Self {
            r,
            c,
            n_col_blocks,
            rows,
        }
    }

    /// Regular node count.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Effective block side in nodes.
    pub fn block_side(&self) -> usize {
        self.c
    }

    /// Number of block-columns (gather tasks).
    pub fn n_col_blocks(&self) -> usize {
        self.n_col_blocks
    }

    /// The destination node range of block-column `j`.
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        let lo = j * self.c;
        lo..((lo + self.c).min(self.r))
    }

    /// Block-rows (scatter tasks).
    pub fn rows(&self) -> &[BlockRow] {
        &self.rows
    }

    /// Total edges across all blocks (must equal the regular subgraph nnz).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|row| row.nnz).sum()
    }

    /// Total compressed message slots (the per-iteration dynamic-bin value
    /// traffic, in values).
    pub fn total_msg_slots(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|row| row.blocks.iter())
            .map(Block::msg_count)
            .sum()
    }

    /// Deep structural validation of the 2-D partition (§4.2) against the
    /// CSR and options it was built from: row ranges tile `0..r`
    /// contiguously, every block's local-CSR metadata is well-formed and
    /// in-bounds, per-range edge counts match the source CSR, and — when
    /// load balancing is on — no multi-node range exceeds the balance cap.
    /// Used by the `strict-invariants` feature at engine construction and
    /// callable directly from tests.
    pub fn debug_validate(&self, reg_csr: &Csr, opts: &MixenOpts) -> Result<(), GraphError> {
        let invariant = |msg: String| Err(GraphError::Invariant(msg));
        if reg_csr.n_rows() != self.r || reg_csr.n_cols() != self.r {
            return invariant(format!(
                "blocked over {} rows but CSR is {}x{}",
                self.r,
                reg_csr.n_rows(),
                reg_csr.n_cols()
            ));
        }
        let expected_cols = if self.r == 0 {
            0
        } else {
            self.r.div_ceil(self.c)
        };
        if self.n_col_blocks != expected_cols {
            return invariant(format!(
                "{} column blocks for r = {} and c = {}, expected {expected_cols}",
                self.n_col_blocks, self.r, self.c
            ));
        }
        // Row ranges tile 0..r contiguously.
        let mut expected_start = 0u32;
        for (t, row) in self.rows.iter().enumerate() {
            if row.src_start != expected_start || row.src_end <= row.src_start {
                return invariant(format!(
                    "row range {t} is {}..{}, expected to start at {expected_start}",
                    row.src_start, row.src_end
                ));
            }
            expected_start = row.src_end;
            let height = (row.src_end - row.src_start) as usize;
            if row.blocks.len() != self.n_col_blocks {
                return invariant(format!(
                    "row range {t} has {} blocks, expected {}",
                    row.blocks.len(),
                    self.n_col_blocks
                ));
            }
            let mut row_nnz = 0usize;
            for (j, blk) in row.blocks.iter().enumerate() {
                let width = self.col_range(j).len();
                if blk.dest_ptr.len() != blk.src_ids.len() + 1
                    || blk.dest_ptr.first().copied().unwrap_or(0) != 0
                    || blk.dest_ptr.last().copied().unwrap_or(0) as usize != blk.dests.len()
                    || blk.dest_ptr.windows(2).any(|w| w[0] > w[1])
                {
                    return invariant(format!("block ({t},{j}) has malformed dest_ptr metadata"));
                }
                if blk.src_ids.windows(2).any(|w| w[0] >= w[1])
                    || blk.src_ids.iter().any(|&s| s as usize >= height)
                {
                    return invariant(format!(
                        "block ({t},{j}) src_ids not strictly ascending within 0..{height}"
                    ));
                }
                if blk.dests.iter().any(|&d| d as usize >= width) {
                    return invariant(format!(
                        "block ({t},{j}) has a local destination out of 0..{width}"
                    ));
                }
                row_nnz += blk.nnz();
            }
            let csr_nnz =
                reg_csr.ptr()[row.src_end as usize] - reg_csr.ptr()[row.src_start as usize];
            if row_nnz != row.nnz || row_nnz != csr_nnz {
                return invariant(format!(
                    "row range {t} stores {row_nnz} edges, metadata says {}, CSR says {csr_nnz}",
                    row.nnz
                ));
            }
        }
        if expected_start as usize != self.r {
            return invariant(format!(
                "row ranges cover 0..{expected_start}, expected 0..{}",
                self.r
            ));
        }
        // Load-balance cap (§4.2): recompute the cap exactly as planning did.
        if opts.load_balance && !self.rows.is_empty() {
            let base_len = self.r.div_ceil(self.c);
            let avg = (reg_csr.nnz() as f64 / base_len as f64).max(1.0);
            let cap = (opts.balance_factor * avg).ceil() as usize;
            for (t, row) in self.rows.iter().enumerate() {
                if row.src_end - row.src_start > 1 && row.nnz > cap {
                    return invariant(format!(
                        "row range {t} holds {} edges, above the balance cap {cap}",
                        row.nnz
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Greedy row-range planning with the 2× overload split.
fn plan_row_ranges(reg_csr: &Csr, c: usize, opts: &MixenOpts) -> Vec<(u32, u32)> {
    let r = reg_csr.n_rows();
    if r == 0 {
        return Vec::new();
    }
    let base: Vec<(u32, u32)> = (0..r.div_ceil(c))
        .map(|i| (nid(i * c), nid(((i + 1) * c).min(r))))
        .collect();
    if !opts.load_balance {
        return base;
    }
    let total_nnz = reg_csr.nnz();
    let avg = (total_nnz as f64 / base.len() as f64).max(1.0);
    let cap = (opts.balance_factor * avg).ceil() as usize;
    let mut out = Vec::with_capacity(base.len());
    for (lo, hi) in base {
        let ptr = reg_csr.ptr();
        let range_nnz = ptr[hi as usize] - ptr[lo as usize];
        if range_nnz <= cap {
            out.push((lo, hi));
            continue;
        }
        // Split greedily at the cap (a single huge row still forms its own
        // range — it cannot be split without breaking bin disjointness).
        let mut start = lo;
        let mut acc = 0usize;
        for u in lo..hi {
            let deg = ptr[u as usize + 1] - ptr[u as usize];
            if acc > 0 && acc + deg > cap {
                out.push((start, u));
                start = u;
                acc = 0;
            }
            acc += deg;
        }
        if start < hi {
            out.push((start, hi));
        }
    }
    out
}

/// Builds the per-column blocks of one row range in a single pass over the
/// rows (neighbour lists are sorted, so each row contributes one ascending
/// run per touched column block).
fn build_block_row(reg_csr: &Csr, lo: u32, hi: u32, c: usize, n_col_blocks: usize) -> BlockRow {
    struct Builder {
        src_ids: Vec<u32>,
        dest_ptr: Vec<u32>,
        dests: Vec<u32>,
    }
    let mut builders: Vec<Builder> = (0..n_col_blocks)
        .map(|_| Builder {
            src_ids: Vec::new(),
            dest_ptr: vec![0],
            dests: Vec::new(),
        })
        .collect();
    let mut nnz = 0usize;
    for u in lo..hi {
        let local_src = u - lo;
        let neigh = reg_csr.neighbors(u);
        nnz += neigh.len();
        let mut k = 0usize;
        while k < neigh.len() {
            let j = neigh[k] as usize / c;
            let col_base = nid(j * c);
            let b = &mut builders[j];
            b.src_ids.push(local_src);
            while k < neigh.len() && (neigh[k] as usize) / c == j {
                b.dests.push(neigh[k] - col_base);
                k += 1;
            }
            b.dest_ptr.push(nid(b.dests.len()));
        }
    }
    BlockRow {
        src_start: lo,
        src_end: hi,
        blocks: builders
            .into_iter()
            .map(|b| Block {
                src_ids: b.src_ids.into_boxed_slice(),
                dest_ptr: b.dest_ptr.into_boxed_slice(),
                dests: b.dests.into_boxed_slice(),
            })
            .collect(),
        nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::Csr;

    fn opts(c: usize) -> MixenOpts {
        MixenOpts {
            block_side: c,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        }
    }

    fn grid_csr() -> Csr {
        // 8 nodes; edges spread over two 4-wide column blocks with c = 4.
        Csr::from_edges(
            8,
            &[
                (0, 1),
                (0, 5),
                (1, 4),
                (2, 3),
                (3, 0),
                (5, 6),
                (6, 2),
                (7, 7),
                (0, 2),
            ],
        )
    }

    #[test]
    fn covers_every_edge_exactly_once() {
        let csr = grid_csr();
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.nnz(), csr.nnz());
        // Reconstruct the edge multiset from the blocks.
        let mut got: Vec<(u32, u32)> = Vec::new();
        for row in b.rows() {
            for (j, blk) in row.blocks.iter().enumerate() {
                let col_base = (j * b.block_side()) as u32;
                for (k, &src) in blk.src_ids.iter().enumerate() {
                    for &d in blk.dests_of(k) {
                        got.push((row.src_start + src, col_base + d));
                    }
                }
            }
        }
        got.sort_unstable();
        let mut want: Vec<(u32, u32)> = csr.edges().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn block_geometry() {
        let csr = grid_csr();
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.n_col_blocks(), 2);
        assert_eq!(b.col_range(0), 0..4);
        assert_eq!(b.col_range(1), 4..8);
        // Local indices stay inside the block.
        for row in b.rows() {
            for blk in &row.blocks {
                assert!(blk.dests.iter().all(|&d| (d as usize) < b.block_side()));
                assert!(blk.src_ids.iter().all(|&s| s < row.src_end - row.src_start));
            }
        }
    }

    #[test]
    fn msg_count_compresses_multi_dest_sources() {
        // One source with 3 edges into the same block => 1 message slot.
        let csr = Csr::from_edges(4, &[(0, 0), (0, 1), (0, 2)]);
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.total_msg_slots(), 1);
        assert_eq!(b.nnz(), 3);
    }

    #[test]
    fn load_balance_splits_hot_row_ranges() {
        // Node 0 has 12 edges, everyone else 0 or 1: with c = 4 and factor
        // 2, the first range would hold nearly all edges and must split.
        let mut edges = vec![];
        for d in 0..12u32 {
            edges.push((0u32, d % 16));
        }
        for u in 1..16u32 {
            edges.push((u, (u + 1) % 16));
        }
        let csr = Csr::from_edges(16, &edges);
        let balanced = BlockedSubgraph::new(&csr, &opts(4), 1);
        let unbalanced = BlockedSubgraph::new(
            &csr,
            &MixenOpts {
                load_balance: false,
                ..opts(4)
            },
            1,
        );
        assert_eq!(unbalanced.rows().len(), 4);
        assert!(balanced.rows().len() >= unbalanced.rows().len());
        assert_eq!(balanced.nnz(), csr.nnz());
        // No multi-row range exceeds the cap.
        let avg = csr.nnz() as f64 / 4.0;
        for row in balanced.rows() {
            if row.src_end - row.src_start > 1 {
                assert!(row.nnz as f64 <= 2.0 * avg + avg, "row nnz {}", row.nnz);
            }
        }
    }

    #[test]
    fn empty_subgraph() {
        let csr = Csr::empty(0);
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.rows().len(), 0);
        assert_eq!(b.n_col_blocks(), 0);
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn single_node_self_loop() {
        let csr = Csr::from_edges(1, &[(0, 0)]);
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.rows().len(), 1);
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.col_range(0), 0..1);
    }

    #[test]
    fn row_ranges_cover_r_exactly() {
        let csr = grid_csr();
        for c in [1usize, 2, 3, 4, 8, 100] {
            let b = BlockedSubgraph::new(&csr, &opts(c), 1);
            let mut expected_start = 0u32;
            for row in b.rows() {
                assert_eq!(row.src_start, expected_start);
                assert!(row.src_end > row.src_start);
                expected_start = row.src_end;
            }
            assert_eq!(expected_start as usize, csr.n_rows());
        }
    }

    #[test]
    fn debug_validate_accepts_fresh_partitions() {
        let csr = grid_csr();
        for c in [1usize, 2, 4, 100] {
            let o = opts(c);
            let b = BlockedSubgraph::new(&csr, &o, 1);
            b.debug_validate(&csr, &o).unwrap();
        }
    }

    #[test]
    fn debug_validate_rejects_lost_edges() {
        let csr = grid_csr();
        let o = opts(4);
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        // Drop one destination from the first non-empty block.
        let blk = b
            .rows
            .iter_mut()
            .flat_map(|r| r.blocks.iter_mut())
            .find(|blk| blk.nnz() > 0)
            .unwrap();
        let shorter: Box<[u32]> = blk.dests[..blk.dests.len() - 1].into();
        blk.dests = shorter;
        assert!(b.debug_validate(&csr, &o).is_err());
    }

    #[test]
    fn debug_validate_rejects_wrong_row_tiling() {
        let csr = grid_csr();
        let o = opts(4);
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.rows[0].src_end += 1;
        assert!(b.debug_validate(&csr, &o).is_err());
    }
}
