//! 2-D partitioning of the regular subgraph (§4.2).
//!
//! The `r × r` regular adjacency is cut into cache-sized blocks. Block-rows
//! (source ranges) are the parallel unit of the Scatter step; fixed-width
//! block-columns (destination ranges) are the parallel unit of the Gather
//! step. Each block stores a *compressed local CSR*:
//!
//! * `src_ids`  — local source indices with ≥ 1 edge into this block,
//! * `dest_ptr` — per-source offsets into `dests`,
//! * `dests`    — local destination indices.
//!
//! A dynamic bin streams exactly **one value per `src_ids` entry** per
//! iteration — the paper's edge-compression technique [Lakhotia et al.,
//! ATC'18]: messages from one source to many destinations inside a block
//! collapse into a single transmission. (The paper encodes the same
//! information with an MSB flag on the first destination of each source;
//! the explicit `src_ids`/`dest_ptr` arrays carry identical content and
//! additionally enable the sparse frontier traversal used by BFS.)
//!
//! Load balancing (§4.2): block-row heights start at the block side `c`,
//! but any row range whose edge count exceeds `balance_factor ×` the
//! average block-row load is split greedily, so the number of non-zeros per
//! scatter task stays bounded. The gather side is balanced the same way:
//! block-columns whose edge count exceeds the cap are chunked into several
//! [`GatherTask`]s over disjoint destination sub-ranges.
//!
//! Skew also leaves many `(row, col)` blocks completely empty — in a
//! power-law graph most of the edge mass concentrates in the hub columns.
//! The partition therefore precomputes *nonempty-block skip lists*: per
//! block-row the column indices with at least one edge
//! ([`BlockRow::nonempty_cols`]), and per block-column the row indices with
//! at least one edge ([`BlockedSubgraph::nonempty_rows`]). Scatter, Gather
//! and both BFS level kernels iterate the lists instead of the full grid,
//! so empty blocks cost nothing per iteration.

use mixen_graph::nid;
use mixen_graph::{Csr, GraphError};
use rayon::prelude::*;

use crate::MixenOpts;

/// One cache-sized block: the edges from a source row range into one
/// destination column range, in compressed-local-CSR form.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Local source indices (ascending) that own at least one edge here.
    pub src_ids: Box<[u32]>,
    /// Offsets into `dests`; length `src_ids.len() + 1`.
    pub dest_ptr: Box<[u32]>,
    /// Local destination indices, grouped by source.
    pub dests: Box<[u32]>,
}

impl Block {
    /// Number of edges stored in the block.
    pub fn nnz(&self) -> usize {
        self.dests.len()
    }

    /// Number of values a dynamic bin streams for this block per iteration
    /// (the compressed message count).
    pub fn msg_count(&self) -> usize {
        self.src_ids.len()
    }

    /// The destinations of the `k`-th active source.
    #[inline]
    pub fn dests_of(&self, k: usize) -> &[u32] {
        &self.dests[self.dest_ptr[k] as usize..self.dest_ptr[k + 1] as usize]
    }
}

/// A load-balanced block-row: one scatter task.
#[derive(Clone, Debug)]
pub struct BlockRow {
    /// Source node range (new IDs within the regular subgraph).
    pub src_start: u32,
    /// Exclusive end of the source range.
    pub src_end: u32,
    /// One block per block-column.
    pub blocks: Vec<Block>,
    /// Total edges in this row range.
    pub nnz: usize,
    /// Skip list: indices of block-columns with at least one edge here
    /// (ascending). With `skip_empty_blocks` off it enumerates every
    /// column, so kernels run identical code over the naive full walk.
    pub nonempty_cols: Box<[u32]>,
}

/// One gather task: a block-column (or, when the column is overloaded, one
/// destination sub-range of it). Tasks tile `0..r` contiguously in
/// `(col, d_lo)` order, so each owns a disjoint destination segment of the
/// accumulator — the no-atomics contract of the Gather step.
#[derive(Clone, Copy, Debug)]
pub struct GatherTask {
    /// Block-column index.
    pub col: u32,
    /// Local destination range start within the column (inclusive).
    pub d_lo: u32,
    /// Local destination range end within the column (exclusive).
    pub d_hi: u32,
    /// Edges this task drains per iteration.
    pub nnz: usize,
}

impl GatherTask {
    /// Destinations this task owns.
    pub fn len(&self) -> usize {
        (self.d_hi - self.d_lo) as usize
    }

    /// Whether the destination range is empty (only on an empty subgraph).
    pub fn is_empty(&self) -> bool {
        self.d_hi == self.d_lo
    }

    /// Whether the task spans its whole block-column of `width`
    /// destinations — the fast path that needs no range filtering.
    #[inline]
    pub fn is_full_column(&self, width: usize) -> bool {
        self.d_lo == 0 && self.d_hi as usize == width
    }
}

/// One destination's contribution list within a chunked gather task: the
/// next `len` entries of [`ChunkIndex::slots`] combine into local
/// destination `d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DestRun {
    /// Local destination within the block-column (`d_lo ≤ d < d_hi`).
    pub d: u32,
    /// Number of contributions (edges) into `d` from this block.
    pub len: u32,
}

/// Destination-major index of one *chunked* gather task, built once at
/// partition time. For each nonempty block-row of the task's column (same
/// order as [`BlockedSubgraph::nonempty_rows`]) it stores a small CSC
/// fragment: one [`DestRun`] per task-owned destination with ≥ 1 edge in
/// that block, plus one message-slot reference per edge.
///
/// The representation matters: filtering the column's message list at run
/// time (or source-major slice lists) costs per *(message, chunk)*
/// incidence, and in a hub column nearly every message intersects every
/// chunk — the §4.2 split would multiply the column's per-iteration index
/// traffic by its chunk count. Destination-major, a chunk streams
/// `8 bytes × active destinations + 4 bytes × own edges`, proportional to
/// the work it actually owns.
///
/// Per destination, contributions are ordered (block-row ascending,
/// message slot ascending) — exactly the full-column walk's combine
/// order, so chunked and unchunked gathers are bit-for-bit identical.
#[derive(Clone, Debug, Default)]
pub struct ChunkIndex {
    /// Offsets into `runs`, parallel to the column's skip list (`+ 1`).
    pub block_ptr: Box<[u32]>,
    /// Per-block destination runs, `d` ascending within each block.
    pub runs: Box<[DestRun]>,
    /// Per edge: the message slot (streamed-bin value index) it draws
    /// from, grouped by run, in run order.
    pub slots: Box<[u32]>,
    /// Per edge, parallel to `slots`: its absolute position in the
    /// block's `dests` — the per-edge weight index for the weighted
    /// engine, whose weights sit parallel to `dests`.
    pub wpos: Box<[u32]>,
}

impl ChunkIndex {
    /// The destination runs of the `bi`-th nonempty block-row of the
    /// task's column. `slots`/`wpos` entries for these runs follow the
    /// walk order (blocks outer, runs inner), so kernels keep one running
    /// cursor across the whole task.
    #[inline]
    pub fn runs_of(&self, bi: usize) -> &[DestRun] {
        &self.runs[self.block_ptr[bi] as usize..self.block_ptr[bi + 1] as usize]
    }
}

/// How the §4.2 nnz-proportional split shaped the task lists — the
/// engine-metadata view surfaced as the `tasks_split` / `max_task_nnz`
/// observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Scatter tasks (load-balanced block-rows).
    pub scatter_tasks: usize,
    /// Extra scatter tasks beyond the fixed-height base grid — how many
    /// subdivisions the 2×-average nnz cap forced.
    pub scatter_splits: usize,
    /// Gather tasks (block-columns, possibly chunked).
    pub gather_tasks: usize,
    /// Extra gather tasks beyond one-per-column.
    pub gather_splits: usize,
    /// Heaviest scatter task, in edges.
    pub max_scatter_task_nnz: usize,
    /// Heaviest gather task, in edges.
    pub max_gather_task_nnz: usize,
}

impl SplitStats {
    /// Total subdivisions the balancer performed on either side.
    pub fn tasks_split(&self) -> u64 {
        (self.scatter_splits + self.gather_splits) as u64
    }

    /// Heaviest task on either side, in edges — the straggler bound.
    pub fn max_task_nnz(&self) -> u64 {
        self.max_scatter_task_nnz.max(self.max_gather_task_nnz) as u64
    }
}

/// The blocked regular subgraph.
#[derive(Clone, Debug)]
pub struct BlockedSubgraph {
    r: usize,
    c: usize,
    /// End of the pinned hub domain (`0..hub_end`; 0 = no domain).
    hub_end: usize,
    n_col_blocks: usize,
    rows: Vec<BlockRow>,
    /// Skip list per block-column: indices of block-rows with at least one
    /// edge there (ascending). Mirrors [`BlockRow::nonempty_cols`].
    nonempty_rows: Vec<Box<[u32]>>,
    /// Load-balanced gather task list tiling `0..r` in destination order.
    gather_tasks: Vec<GatherTask>,
    /// Per gather task: `Some` precomputed message slices iff the task is a
    /// chunk of its column (full-column tasks filter nothing).
    chunk_indexes: Vec<Option<ChunkIndex>>,
    split_stats: SplitStats,
    /// Inner-loop unroll width the SCGA kernels run at (1, 2, 4 or 8).
    kernel_width: usize,
    /// Software-prefetch look-ahead of the kernels (0 disables).
    prefetch_distance: usize,
}

impl BlockedSubgraph {
    /// Partitions `reg_csr` (which must be square, `r × r`) according to
    /// `opts`, using `threads` to pick the effective block side (§6.4).
    /// No hub domain: [`BlockedSubgraph::with_hub_domain`] with `num_hub = 0`.
    pub fn new(reg_csr: &Csr, opts: &MixenOpts, threads: usize) -> Self {
        Self::with_hub_domain(reg_csr, opts, threads, 0)
    }

    /// Partitions `reg_csr` treating the hub prefix `0..num_hub` as a
    /// GRASP-style pinned cache domain: the block side is sized to the
    /// budget left after the hub working set
    /// ([`MixenOpts::effective_block_side_domain`]), and scatter block-rows
    /// are split at the domain boundary and at half the balance cap inside
    /// it, so the hub domain's (heaviest) tasks land on mixen-pool lanes
    /// first and spread across all of them.
    pub fn with_hub_domain(
        reg_csr: &Csr,
        opts: &MixenOpts,
        threads: usize,
        num_hub: usize,
    ) -> Self {
        assert_eq!(
            reg_csr.n_rows(),
            reg_csr.n_cols(),
            "regular CSR must be square"
        );
        assert!(
            crate::opts::KERNEL_WIDTHS.contains(&opts.kernel_width),
            "kernel_width {} is not one of {:?}",
            opts.kernel_width,
            crate::opts::KERNEL_WIDTHS
        );
        let r = reg_csr.n_rows();
        let hub_end = num_hub.min(r);
        let c = opts.effective_block_side_domain(r, hub_end, threads);
        let n_col_blocks = if r == 0 { 0 } else { r.div_ceil(c) };

        // Row ranges: start from fixed height c, split overloaded ranges,
        // then refine the hub domain.
        let ranges = plan_row_ranges(reg_csr, c, opts, hub_end);

        let rows: Vec<BlockRow> = ranges
            .par_iter()
            .map(|&(lo, hi)| build_block_row(reg_csr, lo, hi, c, n_col_blocks, opts))
            .collect();

        // Column-side skip lists, mirroring the per-row lists.
        let nonempty_rows: Vec<Box<[u32]>> = (0..n_col_blocks)
            .into_par_iter()
            .map(|j| {
                rows.iter()
                    .enumerate()
                    .filter(|(_, row)| !opts.skip_empty_blocks || row.blocks[j].msg_count() > 0)
                    .map(|(t, _)| nid(t))
                    .collect::<Vec<u32>>()
                    .into_boxed_slice()
            })
            .collect();

        let gather_tasks = plan_gather_tasks(&rows, r, c, n_col_blocks, opts);
        let chunk_indexes = build_chunk_indexes(&rows, &nonempty_rows, &gather_tasks, r, c);

        let base_rows = if r == 0 { 0 } else { r.div_ceil(c) };
        let split_stats = SplitStats {
            scatter_tasks: rows.len(),
            scatter_splits: rows.len() - base_rows,
            gather_tasks: gather_tasks.len(),
            gather_splits: gather_tasks.len() - n_col_blocks,
            max_scatter_task_nnz: rows.iter().map(|row| row.nnz).max().unwrap_or(0),
            max_gather_task_nnz: gather_tasks.iter().map(|t| t.nnz).max().unwrap_or(0),
        };

        Self {
            r,
            c,
            hub_end,
            n_col_blocks,
            rows,
            nonempty_rows,
            gather_tasks,
            chunk_indexes,
            split_stats,
            kernel_width: opts.kernel_width,
            prefetch_distance: opts.prefetch_distance,
        }
    }

    /// Inner-loop unroll width of the SCGA kernels over this partition
    /// ([`MixenOpts::kernel_width`]; bit-for-bit identical across widths).
    #[inline]
    pub fn kernel_width(&self) -> usize {
        self.kernel_width
    }

    /// Software-prefetch look-ahead of the SCGA kernels
    /// ([`MixenOpts::prefetch_distance`]; 0 disables).
    #[inline]
    pub fn prefetch_distance(&self) -> usize {
        self.prefetch_distance
    }

    /// End of the pinned hub domain (`0` when no domain was declared).
    pub fn hub_domain(&self) -> usize {
        self.hub_end
    }

    /// Regular node count.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Effective block side in nodes.
    pub fn block_side(&self) -> usize {
        self.c
    }

    /// Number of block-columns (gather tasks).
    pub fn n_col_blocks(&self) -> usize {
        self.n_col_blocks
    }

    /// The destination node range of block-column `j`.
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        let lo = j * self.c;
        lo..((lo + self.c).min(self.r))
    }

    /// Block-rows (scatter tasks).
    pub fn rows(&self) -> &[BlockRow] {
        &self.rows
    }

    /// Skip list of block-column `j`: indices of block-rows whose block
    /// `(row, j)` holds at least one edge, ascending. With
    /// `skip_empty_blocks` off this enumerates every row.
    #[inline]
    pub fn nonempty_rows(&self, j: usize) -> &[u32] {
        &self.nonempty_rows[j]
    }

    /// Load-balanced gather tasks, tiling `0..r` in destination order. One
    /// per block-column, except columns whose edge count exceeds the
    /// balance cap, which are chunked into several destination sub-ranges
    /// (when `gather_balance` is on).
    pub fn gather_tasks(&self) -> &[GatherTask] {
        &self.gather_tasks
    }

    /// Per-task precomputed message slices, parallel to [`gather_tasks`]
    /// (`Some` exactly for chunk tasks). The gather kernels zip this with
    /// the task list: `None` takes the full-column path, `Some` walks the
    /// prebuilt slices with no run-time searching.
    ///
    /// [`gather_tasks`]: Self::gather_tasks
    pub fn chunk_indexes(&self) -> &[Option<ChunkIndex>] {
        &self.chunk_indexes
    }

    /// How the §4.2 nnz-proportional split shaped the task lists.
    pub fn split_stats(&self) -> SplitStats {
        self.split_stats
    }

    /// Total edges across all blocks (must equal the regular subgraph nnz).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|row| row.nnz).sum()
    }

    /// Total compressed message slots (the per-iteration dynamic-bin value
    /// traffic, in values).
    pub fn total_msg_slots(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|row| row.blocks.iter())
            .map(Block::msg_count)
            .sum()
    }

    /// Deep structural validation of the 2-D partition (§4.2) against the
    /// CSR and options it was built from: row ranges tile `0..r`
    /// contiguously, every block's local-CSR metadata is well-formed and
    /// in-bounds, per-range edge counts match the source CSR, and — when
    /// load balancing is on — no multi-node range exceeds the balance cap.
    /// Used by the `strict-invariants` feature at engine construction and
    /// callable directly from tests.
    pub fn debug_validate(&self, reg_csr: &Csr, opts: &MixenOpts) -> Result<(), GraphError> {
        let invariant = |msg: String| Err(GraphError::Invariant(msg));
        if reg_csr.n_rows() != self.r || reg_csr.n_cols() != self.r {
            return invariant(format!(
                "blocked over {} rows but CSR is {}x{}",
                self.r,
                reg_csr.n_rows(),
                reg_csr.n_cols()
            ));
        }
        let expected_cols = if self.r == 0 {
            0
        } else {
            self.r.div_ceil(self.c)
        };
        if self.n_col_blocks != expected_cols {
            return invariant(format!(
                "{} column blocks for r = {} and c = {}, expected {expected_cols}",
                self.n_col_blocks, self.r, self.c
            ));
        }
        // Row ranges tile 0..r contiguously.
        let mut expected_start = 0u32;
        for (t, row) in self.rows.iter().enumerate() {
            if row.src_start != expected_start || row.src_end <= row.src_start {
                return invariant(format!(
                    "row range {t} is {}..{}, expected to start at {expected_start}",
                    row.src_start, row.src_end
                ));
            }
            expected_start = row.src_end;
            let height = (row.src_end - row.src_start) as usize;
            if row.blocks.len() != self.n_col_blocks {
                return invariant(format!(
                    "row range {t} has {} blocks, expected {}",
                    row.blocks.len(),
                    self.n_col_blocks
                ));
            }
            let mut row_nnz = 0usize;
            for (j, blk) in row.blocks.iter().enumerate() {
                let width = self.col_range(j).len();
                if blk.dest_ptr.len() != blk.src_ids.len() + 1
                    || blk.dest_ptr.first().copied().unwrap_or(0) != 0
                    || blk.dest_ptr.last().copied().unwrap_or(0) as usize != blk.dests.len()
                    || blk.dest_ptr.windows(2).any(|w| w[0] > w[1])
                {
                    return invariant(format!("block ({t},{j}) has malformed dest_ptr metadata"));
                }
                if blk.src_ids.windows(2).any(|w| w[0] >= w[1])
                    || blk.src_ids.iter().any(|&s| s as usize >= height)
                {
                    return invariant(format!(
                        "block ({t},{j}) src_ids not strictly ascending within 0..{height}"
                    ));
                }
                if blk.dests.iter().any(|&d| d as usize >= width) {
                    return invariant(format!(
                        "block ({t},{j}) has a local destination out of 0..{width}"
                    ));
                }
                // Sorted per-source destination runs are what lets the
                // chunk-index builder slice each run into per-task
                // contiguous sub-runs.
                for k in 0..blk.msg_count() {
                    if blk.dests_of(k).windows(2).any(|w| w[0] > w[1]) {
                        return invariant(format!(
                            "block ({t},{j}) destination run for source slot {k} is not sorted"
                        ));
                    }
                }
                row_nnz += blk.nnz();
            }
            let csr_nnz =
                reg_csr.ptr()[row.src_end as usize] - reg_csr.ptr()[row.src_start as usize];
            if row_nnz != row.nnz || row_nnz != csr_nnz {
                return invariant(format!(
                    "row range {t} stores {row_nnz} edges, metadata says {}, CSR says {csr_nnz}",
                    row.nnz
                ));
            }
        }
        if expected_start as usize != self.r {
            return invariant(format!(
                "row ranges cover 0..{expected_start}, expected 0..{}",
                self.r
            ));
        }
        // Load-balance cap (§4.2): recompute the cap exactly as planning did.
        if opts.load_balance && !self.rows.is_empty() {
            let base_len = self.r.div_ceil(self.c);
            let avg = (reg_csr.nnz() as f64 / base_len as f64).max(1.0);
            // lint: allow(truncation) reason=guarded: positive finite f64 cap far below 2^53
            let cap = (opts.balance_factor * avg).ceil() as usize;
            for (t, row) in self.rows.iter().enumerate() {
                if row.src_end - row.src_start > 1 && row.nnz > cap {
                    return invariant(format!(
                        "row range {t} holds {} edges, above the balance cap {cap}",
                        row.nnz
                    ));
                }
            }
        }
        // Skip lists must agree with the blocks they index: with skipping
        // on, exactly the nonempty blocks; with it off, every block.
        for (t, row) in self.rows.iter().enumerate() {
            let expected: Vec<u32> = row
                .blocks
                .iter()
                .enumerate()
                .filter(|(_, blk)| !opts.skip_empty_blocks || blk.msg_count() > 0)
                .map(|(j, _)| nid(j))
                .collect();
            if row.nonempty_cols.as_ref() != expected.as_slice() {
                return invariant(format!(
                    "row range {t} skip list {:?} disagrees with its blocks (expected {:?})",
                    row.nonempty_cols, expected
                ));
            }
        }
        if self.nonempty_rows.len() != self.n_col_blocks {
            return invariant(format!(
                "{} column skip lists for {} column blocks",
                self.nonempty_rows.len(),
                self.n_col_blocks
            ));
        }
        for (j, list) in self.nonempty_rows.iter().enumerate() {
            let expected: Vec<u32> = self
                .rows
                .iter()
                .enumerate()
                .filter(|(_, row)| !opts.skip_empty_blocks || row.blocks[j].msg_count() > 0)
                .map(|(t, _)| nid(t))
                .collect();
            if list.as_ref() != expected.as_slice() {
                return invariant(format!(
                    "column {j} skip list {list:?} disagrees with its blocks (expected {expected:?})"
                ));
            }
        }
        // Gather tasks tile every column's destination range contiguously,
        // account for every edge, and respect the balance cap.
        let mut idx = 0usize;
        for j in 0..self.n_col_blocks {
            let width = self.col_range(j).len();
            let col_nnz: usize = self.rows.iter().map(|row| row.blocks[j].nnz()).sum();
            let mut covered = 0u32;
            let mut task_nnz = 0usize;
            while idx < self.gather_tasks.len() && self.gather_tasks[idx].col as usize == j {
                let t = self.gather_tasks[idx];
                idx += 1;
                if t.d_lo != covered || t.d_hi <= t.d_lo || t.d_hi as usize > width {
                    return invariant(format!(
                        "gather task over column {j} spans {}..{}, expected to start at {covered} within 0..{width}",
                        t.d_lo, t.d_hi
                    ));
                }
                covered = t.d_hi;
                task_nnz += t.nnz;
            }
            if covered as usize != width {
                return invariant(format!(
                    "gather tasks cover 0..{covered} of column {j}, expected 0..{width}"
                ));
            }
            if task_nnz != col_nnz {
                return invariant(format!(
                    "gather tasks over column {j} account for {task_nnz} edges, blocks hold {col_nnz}"
                ));
            }
        }
        if idx != self.gather_tasks.len() {
            return invariant("gather task list has tasks beyond the last column".into());
        }
        if opts.gather_balance && self.n_col_blocks > 0 {
            let avg = (reg_csr.nnz() as f64 / self.n_col_blocks as f64).max(1.0);
            // lint: allow(truncation) reason=guarded: positive finite f64 cap far below 2^53
            let cap = (opts.balance_factor * avg).ceil() as usize;
            for t in &self.gather_tasks {
                if t.d_hi - t.d_lo > 1 && t.nnz > cap {
                    return invariant(format!(
                        "gather task over column {} holds {} edges, above the balance cap {cap}",
                        t.col, t.nnz
                    ));
                }
            }
        }
        // Chunk indexes must be exactly the build-time resolution of each
        // chunk task's run intersections — the gather kernels trust the
        // `lo..hi` ranges with unchecked destination writes.
        if self.chunk_indexes.len() != self.gather_tasks.len() {
            return invariant(format!(
                "{} chunk indexes for {} gather tasks",
                self.chunk_indexes.len(),
                self.gather_tasks.len()
            ));
        }
        let expected_indexes = build_chunk_indexes(
            &self.rows,
            &self.nonempty_rows,
            &self.gather_tasks,
            self.r,
            self.c,
        );
        for (ti, (got, want)) in self.chunk_indexes.iter().zip(&expected_indexes).enumerate() {
            let matches = match (got, want) {
                (None, None) => true,
                (Some(g), Some(w)) => {
                    g.block_ptr == w.block_ptr
                        && g.runs == w.runs
                        && g.slots == w.slots
                        && g.wpos == w.wpos
                }
                _ => false,
            };
            if !matches {
                return invariant(format!(
                    "chunk index of gather task {ti} disagrees with its task's run intersections"
                ));
            }
        }
        // Kernel-width identity: the configured unroll width must walk the
        // partition bit-for-bit like the scalar path — the contract the
        // unchecked SIMD-width loops in `scga` cite in their SAFETY
        // comments.
        crate::scga::width_identity_check(self)?;
        Ok(())
    }
}

/// Greedy row-range planning with the 2× overload split, plus the GRASP
/// hub-domain refinement: ranges straddling `hub_end` are cut at the domain
/// boundary, and ranges inside the domain are re-split at half the balance
/// cap, so the pinned domain's tasks are both isolated and fine-grained
/// enough to spread across every mixen-pool lane at dispatch time (they sit
/// at the head of the task list).
fn plan_row_ranges(reg_csr: &Csr, c: usize, opts: &MixenOpts, hub_end: usize) -> Vec<(u32, u32)> {
    let r = reg_csr.n_rows();
    if r == 0 {
        return Vec::new();
    }
    let base: Vec<(u32, u32)> = (0..r.div_ceil(c))
        .map(|i| (nid(i * c), nid(((i + 1) * c).min(r))))
        .collect();
    if !opts.load_balance {
        return base;
    }
    let ptr = reg_csr.ptr();
    let total_nnz = reg_csr.nnz();
    let avg = (total_nnz as f64 / base.len() as f64).max(1.0);
    // lint: allow(truncation) reason=guarded: positive finite f64 cap far below 2^53
    let cap = (opts.balance_factor * avg).ceil() as usize;
    // Split `(lo, hi)` greedily so no multi-node piece exceeds `limit` (a
    // single huge row still forms its own range — it cannot be split
    // without breaking bin disjointness).
    let split_at = |lo: u32, hi: u32, limit: usize, out: &mut Vec<(u32, u32)>| {
        let range_nnz = ptr[hi as usize] - ptr[lo as usize];
        if range_nnz <= limit {
            out.push((lo, hi));
            return;
        }
        let mut start = lo;
        let mut acc = 0usize;
        for u in lo..hi {
            let deg = ptr[u as usize + 1] - ptr[u as usize];
            if acc > 0 && acc + deg > limit {
                out.push((start, u));
                start = u;
                acc = 0;
            }
            acc += deg;
        }
        if start < hi {
            out.push((start, hi));
        }
    };
    let hub_cap = (cap / 2).max(1);
    let mut out = Vec::with_capacity(base.len());
    for (lo, hi) in base {
        if (lo as usize) >= hub_end {
            split_at(lo, hi, cap, &mut out);
        } else if (hi as usize) <= hub_end {
            split_at(lo, hi, hub_cap, &mut out);
        } else {
            // Straddles the domain boundary: cut there first.
            split_at(lo, nid(hub_end), hub_cap, &mut out);
            split_at(nid(hub_end), hi, cap, &mut out);
        }
    }
    out
}

/// Builds the per-column blocks of one row range in a single pass over the
/// rows (neighbour lists are sorted, so each row contributes one ascending
/// run per touched column block).
fn build_block_row(
    reg_csr: &Csr,
    lo: u32,
    hi: u32,
    c: usize,
    n_col_blocks: usize,
    opts: &MixenOpts,
) -> BlockRow {
    struct Builder {
        src_ids: Vec<u32>,
        dest_ptr: Vec<u32>,
        dests: Vec<u32>,
    }
    let mut builders: Vec<Builder> = (0..n_col_blocks)
        .map(|_| Builder {
            src_ids: Vec::new(),
            dest_ptr: vec![0],
            dests: Vec::new(),
        })
        .collect();
    let mut nnz = 0usize;
    for u in lo..hi {
        let local_src = u - lo;
        let neigh = reg_csr.neighbors(u);
        nnz += neigh.len();
        let mut k = 0usize;
        while k < neigh.len() {
            let j = neigh[k] as usize / c;
            let col_base = nid(j * c);
            let b = &mut builders[j];
            b.src_ids.push(local_src);
            while k < neigh.len() && (neigh[k] as usize) / c == j {
                b.dests.push(neigh[k] - col_base);
                k += 1;
            }
            b.dest_ptr.push(nid(b.dests.len()));
        }
    }
    let blocks: Vec<Block> = builders
        .into_iter()
        .map(|b| Block {
            src_ids: b.src_ids.into_boxed_slice(),
            dest_ptr: b.dest_ptr.into_boxed_slice(),
            dests: b.dests.into_boxed_slice(),
        })
        .collect();
    let nonempty_cols: Box<[u32]> = blocks
        .iter()
        .enumerate()
        .filter(|(_, blk)| !opts.skip_empty_blocks || blk.msg_count() > 0)
        .map(|(j, _)| nid(j))
        .collect::<Vec<u32>>()
        .into_boxed_slice();
    BlockRow {
        src_start: lo,
        src_end: hi,
        blocks,
        nnz,
        nonempty_cols,
    }
}

/// Plans the gather task list: one task per block-column, except columns
/// whose edge count exceeds `balance_factor ×` the average column load —
/// those are chunked greedily at the cap along the per-destination in-edge
/// counts, mirroring the scatter-side row split (§4.2).
fn plan_gather_tasks(
    rows: &[BlockRow],
    r: usize,
    c: usize,
    n_col_blocks: usize,
    opts: &MixenOpts,
) -> Vec<GatherTask> {
    if n_col_blocks == 0 {
        return Vec::new();
    }
    let col_nnz: Vec<usize> = (0..n_col_blocks)
        .into_par_iter()
        .map(|j| rows.iter().map(|row| row.blocks[j].nnz()).sum())
        .collect();
    let total_nnz: usize = col_nnz.iter().sum();
    let avg = (total_nnz as f64 / n_col_blocks as f64).max(1.0);
    // lint: allow(truncation) reason=guarded: positive finite f64 cap far below 2^53
    let cap = (opts.balance_factor * avg).ceil() as usize;
    let mut tasks = Vec::with_capacity(n_col_blocks);
    for (j, &nnz) in col_nnz.iter().enumerate() {
        let lo = j * c;
        let width = nid(((lo + c).min(r)) - lo);
        if !opts.gather_balance || nnz <= cap || width <= 1 {
            tasks.push(GatherTask {
                col: nid(j),
                d_lo: 0,
                d_hi: width,
                nnz,
            });
            continue;
        }
        // Per-destination in-edge counts within this column, then the same
        // greedy at-the-cap split as the row planner (a single overloaded
        // destination still forms its own chunk — per-destination combines
        // cannot be split without atomics).
        let mut deg = vec![0usize; width as usize];
        for row in rows {
            for &d in row.blocks[j].dests.iter() {
                deg[d as usize] += 1;
            }
        }
        let mut start = 0u32;
        let mut acc = 0usize;
        for (d, &cnt) in deg.iter().enumerate() {
            if acc > 0 && acc + cnt > cap {
                tasks.push(GatherTask {
                    col: nid(j),
                    d_lo: start,
                    d_hi: nid(d),
                    nnz: acc,
                });
                start = nid(d);
                acc = 0;
            }
            acc += cnt;
        }
        if start < width {
            tasks.push(GatherTask {
                col: nid(j),
                d_lo: start,
                d_hi: width,
                nnz: acc,
            });
        }
    }
    tasks
}

/// Resolves each chunk task's destination-major index once, at partition
/// time (see [`ChunkIndex`]). Full-column tasks map to `None`. A counting
/// sort per (task, block) groups the task's edges by destination while
/// keeping message slots ascending within each destination — the stable
/// order the bitwise-determinism contract needs.
fn build_chunk_indexes(
    rows: &[BlockRow],
    nonempty_rows: &[Box<[u32]>],
    tasks: &[GatherTask],
    r: usize,
    c: usize,
) -> Vec<Option<ChunkIndex>> {
    tasks
        .par_iter()
        .map(|t| {
            let j = t.col as usize;
            let lo = j * c;
            let width = (lo + c).min(r) - lo;
            if t.is_full_column(width) {
                return None;
            }
            let w = (t.d_hi - t.d_lo) as usize;
            let list = &nonempty_rows[j];
            let mut block_ptr = Vec::with_capacity(list.len() + 1);
            block_ptr.push(0u32);
            let mut runs = Vec::new();
            let mut slots = Vec::new();
            let mut wpos = Vec::new();
            let mut cnt = vec![0u32; w];
            for &ti in list.iter() {
                let blk = &rows[ti as usize].blocks[j];
                cnt.fill(0);
                // Pass 1: count this block's edges per task-owned
                // destination. Runs are sorted (debug_validate), so the
                // task's share of each is one contiguous sub-run.
                for k in 0..blk.msg_count() {
                    let run = blk.dests_of(k);
                    let a = run.partition_point(|&d| d < t.d_lo);
                    let b = run.partition_point(|&d| d < t.d_hi);
                    for &d in &run[a..b] {
                        cnt[(d - t.d_lo) as usize] += 1;
                    }
                }
                let base_out = slots.len();
                let mut off = Vec::with_capacity(w);
                let mut total = 0u32;
                for (d, &n) in cnt.iter().enumerate() {
                    off.push(total);
                    total += n;
                    if n > 0 {
                        runs.push(DestRun {
                            d: t.d_lo + nid(d),
                            len: n,
                        });
                    }
                }
                slots.resize(base_out + total as usize, 0);
                wpos.resize(base_out + total as usize, 0);
                // Pass 2: place each edge, slots ascending per destination
                // because `k` ascends.
                for k in 0..blk.msg_count() {
                    let base = blk.dest_ptr[k] as usize;
                    let run = blk.dests_of(k);
                    let a = run.partition_point(|&d| d < t.d_lo);
                    let b = run.partition_point(|&d| d < t.d_hi);
                    for (p, &d) in run[a..b].iter().enumerate() {
                        let slot = &mut off[(d - t.d_lo) as usize];
                        let out = base_out + *slot as usize;
                        slots[out] = nid(k);
                        wpos[out] = nid(base + a + p);
                        *slot += 1;
                    }
                }
                block_ptr.push(nid(runs.len()));
            }
            Some(ChunkIndex {
                block_ptr: block_ptr.into_boxed_slice(),
                runs: runs.into_boxed_slice(),
                slots: slots.into_boxed_slice(),
                wpos: wpos.into_boxed_slice(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::Csr;

    fn opts(c: usize) -> MixenOpts {
        MixenOpts {
            block_side: c,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        }
    }

    fn grid_csr() -> Csr {
        // 8 nodes; edges spread over two 4-wide column blocks with c = 4.
        Csr::from_edges(
            8,
            &[
                (0, 1),
                (0, 5),
                (1, 4),
                (2, 3),
                (3, 0),
                (5, 6),
                (6, 2),
                (7, 7),
                (0, 2),
            ],
        )
    }

    #[test]
    fn covers_every_edge_exactly_once() {
        let csr = grid_csr();
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.nnz(), csr.nnz());
        // Reconstruct the edge multiset from the blocks.
        let mut got: Vec<(u32, u32)> = Vec::new();
        for row in b.rows() {
            for (j, blk) in row.blocks.iter().enumerate() {
                let col_base = (j * b.block_side()) as u32;
                for (k, &src) in blk.src_ids.iter().enumerate() {
                    for &d in blk.dests_of(k) {
                        got.push((row.src_start + src, col_base + d));
                    }
                }
            }
        }
        got.sort_unstable();
        let mut want: Vec<(u32, u32)> = csr.edges().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn block_geometry() {
        let csr = grid_csr();
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.n_col_blocks(), 2);
        assert_eq!(b.col_range(0), 0..4);
        assert_eq!(b.col_range(1), 4..8);
        // Local indices stay inside the block.
        for row in b.rows() {
            for blk in &row.blocks {
                assert!(blk.dests.iter().all(|&d| (d as usize) < b.block_side()));
                assert!(blk.src_ids.iter().all(|&s| s < row.src_end - row.src_start));
            }
        }
    }

    #[test]
    fn msg_count_compresses_multi_dest_sources() {
        // One source with 3 edges into the same block => 1 message slot.
        let csr = Csr::from_edges(4, &[(0, 0), (0, 1), (0, 2)]);
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.total_msg_slots(), 1);
        assert_eq!(b.nnz(), 3);
    }

    #[test]
    fn load_balance_splits_hot_row_ranges() {
        // Node 0 has 12 edges, everyone else 0 or 1: with c = 4 and factor
        // 2, the first range would hold nearly all edges and must split.
        let mut edges = vec![];
        for d in 0..12u32 {
            edges.push((0u32, d % 16));
        }
        for u in 1..16u32 {
            edges.push((u, (u + 1) % 16));
        }
        let csr = Csr::from_edges(16, &edges);
        let balanced = BlockedSubgraph::new(&csr, &opts(4), 1);
        let unbalanced = BlockedSubgraph::new(
            &csr,
            &MixenOpts {
                load_balance: false,
                ..opts(4)
            },
            1,
        );
        assert_eq!(unbalanced.rows().len(), 4);
        assert!(balanced.rows().len() >= unbalanced.rows().len());
        assert_eq!(balanced.nnz(), csr.nnz());
        // No multi-row range exceeds the cap.
        let avg = csr.nnz() as f64 / 4.0;
        for row in balanced.rows() {
            if row.src_end - row.src_start > 1 {
                assert!(row.nnz as f64 <= 2.0 * avg + avg, "row nnz {}", row.nnz);
            }
        }
    }

    #[test]
    fn empty_subgraph() {
        let csr = Csr::empty(0);
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.rows().len(), 0);
        assert_eq!(b.n_col_blocks(), 0);
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn single_node_self_loop() {
        let csr = Csr::from_edges(1, &[(0, 0)]);
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        assert_eq!(b.rows().len(), 1);
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.col_range(0), 0..1);
    }

    #[test]
    fn row_ranges_cover_r_exactly() {
        let csr = grid_csr();
        for c in [1usize, 2, 3, 4, 8, 100] {
            let b = BlockedSubgraph::new(&csr, &opts(c), 1);
            let mut expected_start = 0u32;
            for row in b.rows() {
                assert_eq!(row.src_start, expected_start);
                assert!(row.src_end > row.src_start);
                expected_start = row.src_end;
            }
            assert_eq!(expected_start as usize, csr.n_rows());
        }
    }

    #[test]
    fn debug_validate_accepts_fresh_partitions() {
        let csr = grid_csr();
        for c in [1usize, 2, 4, 100] {
            let o = opts(c);
            let b = BlockedSubgraph::new(&csr, &o, 1);
            b.debug_validate(&csr, &o).unwrap();
        }
    }

    #[test]
    fn debug_validate_rejects_lost_edges() {
        let csr = grid_csr();
        let o = opts(4);
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        // Drop one destination from the first non-empty block.
        let blk = b
            .rows
            .iter_mut()
            .flat_map(|r| r.blocks.iter_mut())
            .find(|blk| blk.nnz() > 0)
            .unwrap();
        let shorter: Box<[u32]> = blk.dests[..blk.dests.len() - 1].into();
        blk.dests = shorter;
        assert!(b.debug_validate(&csr, &o).is_err());
    }

    #[test]
    fn debug_validate_rejects_wrong_row_tiling() {
        let csr = grid_csr();
        let o = opts(4);
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.rows[0].src_end += 1;
        assert!(b.debug_validate(&csr, &o).is_err());
    }

    #[test]
    fn skip_lists_index_exactly_the_nonempty_blocks() {
        let csr = grid_csr();
        let o = opts(4);
        let b = BlockedSubgraph::new(&csr, &o, 1);
        for row in b.rows() {
            for (j, blk) in row.blocks.iter().enumerate() {
                assert_eq!(
                    row.nonempty_cols.contains(&nid(j)),
                    blk.msg_count() > 0,
                    "row {}..{} col {j}",
                    row.src_start,
                    row.src_end
                );
            }
        }
        for j in 0..b.n_col_blocks() {
            for (t, row) in b.rows().iter().enumerate() {
                assert_eq!(
                    b.nonempty_rows(j).contains(&nid(t)),
                    row.blocks[j].msg_count() > 0
                );
            }
        }
    }

    #[test]
    fn skip_lists_enumerate_everything_when_disabled() {
        let csr = grid_csr();
        let o = MixenOpts {
            skip_empty_blocks: false,
            ..opts(4)
        };
        let b = BlockedSubgraph::new(&csr, &o, 1);
        b.debug_validate(&csr, &o).unwrap();
        let all: Vec<u32> = (0..b.n_col_blocks()).map(nid).collect();
        for row in b.rows() {
            assert_eq!(row.nonempty_cols.as_ref(), all.as_slice());
        }
        let all_rows: Vec<u32> = (0..b.rows().len()).map(nid).collect();
        for j in 0..b.n_col_blocks() {
            assert_eq!(b.nonempty_rows(j), all_rows.as_slice());
        }
    }

    #[test]
    fn gather_tasks_tile_each_column_and_chunk_hot_ones() {
        // Column block 0 absorbs nearly all edges: every node points at
        // destinations 0..4, so with c = 4 the first column must be chunked.
        let mut edges = Vec::new();
        for u in 0..16u32 {
            for d in 0..4u32 {
                edges.push((u, d));
            }
        }
        edges.push((1, 9));
        let csr = Csr::from_edges(16, &edges);
        let o = opts(4);
        let b = BlockedSubgraph::new(&csr, &o, 1);
        b.debug_validate(&csr, &o).unwrap();
        let stats = b.split_stats();
        assert!(stats.gather_splits > 0, "stats: {stats:?}");
        assert_eq!(stats.gather_tasks, b.gather_tasks().len());
        assert_eq!(
            stats.tasks_split(),
            (stats.scatter_splits + stats.gather_splits) as u64
        );
        // Tasks tile each column contiguously and cover all edges.
        let total: usize = b.gather_tasks().iter().map(|t| t.nnz).sum();
        assert_eq!(total, csr.nnz());
        let covered: usize = b.gather_tasks().iter().map(GatherTask::len).sum();
        assert_eq!(covered, csr.n_rows());
        // Unbalanced planning keeps one task per column.
        let o2 = MixenOpts {
            gather_balance: false,
            ..o
        };
        let b2 = BlockedSubgraph::new(&csr, &o2, 1);
        b2.debug_validate(&csr, &o2).unwrap();
        assert_eq!(b2.gather_tasks().len(), b2.n_col_blocks());
        assert_eq!(b2.split_stats().gather_splits, 0);
    }

    #[test]
    fn split_stats_track_the_heaviest_tasks() {
        let csr = grid_csr();
        let b = BlockedSubgraph::new(&csr, &opts(4), 1);
        let stats = b.split_stats();
        assert_eq!(stats.scatter_tasks, b.rows().len());
        assert_eq!(
            stats.max_scatter_task_nnz,
            b.rows().iter().map(|r| r.nnz).max().unwrap()
        );
        assert_eq!(
            stats.max_gather_task_nnz,
            b.gather_tasks().iter().map(|t| t.nnz).max().unwrap()
        );
        assert_eq!(
            stats.max_task_nnz(),
            stats.max_scatter_task_nnz.max(stats.max_gather_task_nnz) as u64
        );
    }

    #[test]
    fn debug_validate_rejects_broken_skip_lists_and_gather_tasks() {
        let csr = grid_csr();
        let o = opts(4);
        // Corrupted row skip list.
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.rows[0].nonempty_cols = Box::new([]);
        assert!(b.debug_validate(&csr, &o).is_err());
        // Corrupted column skip list.
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.nonempty_rows[0] = Box::new([]);
        assert!(b.debug_validate(&csr, &o).is_err());
        // Gather task with a hole in its column tiling.
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.gather_tasks[0].d_lo += 1;
        assert!(b.debug_validate(&csr, &o).is_err());
        // Gather task nnz no longer matching its blocks.
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.gather_tasks[0].nnz += 1;
        assert!(b.debug_validate(&csr, &o).is_err());
        // Chunk index present on a full-column task.
        let mut b = BlockedSubgraph::new(&csr, &o, 1);
        b.chunk_indexes[0] = Some(ChunkIndex::default());
        assert!(b.debug_validate(&csr, &o).is_err());
    }

    #[test]
    fn chunk_indexes_resolve_exactly_the_tasks_run_intersections() {
        // 16 sources all hitting column block 0 forces the gather balancer
        // to chunk it; the full-column tasks must carry no index and the
        // chunk tasks must partition each message's run by destination.
        let mut edges = Vec::new();
        for u in 0..16u32 {
            for d in 0..4u32 {
                edges.push((u, d));
            }
        }
        let csr = Csr::from_edges(16, &edges);
        let o = opts(4);
        let b = BlockedSubgraph::new(&csr, &o, 1);
        assert!(b.split_stats().gather_splits > 0);
        b.debug_validate(&csr, &o).expect("partition is valid");
        let mut chunked = 0usize;
        for (t, idx) in b.gather_tasks().iter().zip(b.chunk_indexes()) {
            let j = t.col as usize;
            let width = b.col_range(j).len();
            match idx {
                None => assert!(t.is_full_column(width)),
                Some(ci) => {
                    chunked += 1;
                    assert!(!t.is_full_column(width));
                    assert_eq!(ci.block_ptr.len(), b.nonempty_rows(j).len() + 1);
                    assert_eq!(ci.wpos.len(), ci.slots.len());
                    // Runs hold exactly the task's nnz, every run sits in
                    // the task's range, and every contribution points back
                    // at a real (slot, dests-position) edge of its block.
                    let mut cursor = 0usize;
                    for (bi, &ti) in b.nonempty_rows(j).iter().enumerate() {
                        let blk = &b.rows()[ti as usize].blocks[j];
                        for run in ci.runs_of(bi) {
                            assert!(t.d_lo <= run.d && run.d < t.d_hi);
                            assert!(run.len > 0);
                            let span = cursor..cursor + run.len as usize;
                            for (&k, &p) in ci.slots[span.clone()].iter().zip(&ci.wpos[span]) {
                                assert_eq!(blk.dests[p as usize], run.d);
                                let (k, p) = (k as usize, p as usize);
                                assert!((blk.dest_ptr[k] as usize..blk.dest_ptr[k + 1] as usize)
                                    .contains(&p));
                            }
                            cursor += run.len as usize;
                        }
                    }
                    assert_eq!(cursor, ci.slots.len());
                    assert_eq!(cursor, t.nnz);
                }
            }
        }
        assert!(chunked > 1, "the hot column should yield several chunks");
    }
}
