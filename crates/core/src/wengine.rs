//! Weighted Mixen engine — general-semiring SCGA.
//!
//! The unweighted engine computes `x'[v] = apply(v, ⊕_{u→v} x[u])`; this
//! one computes `x'[v] = apply(v, ⊕_{u→v} x[u] ⊗ w(u,v))`, where `⊗` is
//! [`mixen_graph::PropValue::scale_edge`]. With `(+, ×)` that is weighted
//! SpMV (the general matrix the paper's §1 SpMV formulation implies); with
//! the tropical `(min, +)` it is shortest-path relaxation.
//!
//! All of Mixen's machinery carries over unchanged, because weights ride
//! along the *static* side of the data path:
//! * filtering/relabeling only looks at topology,
//! * dynamic bins still stream one (unweighted) value per source per block
//!   — the edge weight is applied at Gather time from a weight array
//!   aligned with each block's destination list, preserving the edge
//!   compression,
//! * the static bin caches `⊕ seed ⊗ w` — weighted seed contributions are
//!   just as constant as unweighted ones,
//! * the Post-Phase pulls `x ⊗ w` for sinks once.

use mixen_graph::nid;

use mixen_graph::{NodeId, PropValue, WGraph};
use rayon::prelude::*;

use crate::bins::DynamicBins;
use crate::block::BlockedSubgraph;
use crate::engine::PhaseStats;
use crate::filter::FilteredGraph;
use crate::obs::{Metrics, Span};
use crate::opts::MixenOpts;
use crate::scga;

/// Weighted-graph Mixen engine.
pub struct WMixenEngine {
    filtered: FilteredGraph,
    blocked: BlockedSubgraph,
    /// Per (task, col-block): weights aligned with the block's `dests`.
    block_weights: Vec<Vec<Box<[f32]>>>,
    /// Weights aligned with `filtered.seed_csr().idx()`.
    seed_weights: Box<[f32]>,
    /// Weights aligned with `filtered.sink_csc().idx()`.
    sink_weights: Box<[f32]>,
    build_seconds: f64,
    metrics: Metrics,
}

impl WMixenEngine {
    /// Preprocesses a weighted graph: topology filtering + blocking as in
    /// the unweighted engine, plus weight alignment for every
    /// sub-structure.
    pub fn new(wg: &WGraph, opts: MixenOpts) -> Self {
        let mut build_seconds = 0.0;
        let build_span = Span::new(&mut build_seconds);
        let g = wg.topology();
        let filtered = FilteredGraph::with_ordering(g, opts.ordering);
        let blocked = BlockedSubgraph::new(filtered.reg_csr(), &opts, rayon::current_num_threads());
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = filtered.debug_validate() {
                // lint: allow(panic) reason=strict-invariants mode turns violated preprocessing invariants into loud failures
                panic!("strict-invariants: {e}");
            }
            if let Err(e) = blocked.debug_validate(filtered.reg_csr(), &opts) {
                // lint: allow(panic) reason=strict-invariants mode turns violated partition invariants into loud failures
                panic!("strict-invariants: {e}");
            }
        }
        let weight_of = |new_src: NodeId, new_dst: NodeId| -> f32 {
            wg.weight(filtered.to_old(new_src), filtered.to_old(new_dst))
                // lint: allow(panic) reason=filtered structure is derived from wg so the edge exists; a miss is a construction bug
                .expect("edge present in filtered structure must exist in the graph")
        };

        let block_weights: Vec<Vec<Box<[f32]>>> = blocked
            .rows()
            .par_iter()
            .map(|row| {
                row.blocks
                    .iter()
                    .enumerate()
                    .map(|(j, blk)| {
                        let col_base = nid(j * blocked.block_side());
                        let mut w = Vec::with_capacity(blk.dests.len());
                        for (k, &src) in blk.src_ids.iter().enumerate() {
                            let new_src = row.src_start + src;
                            for &d in blk.dests_of(k) {
                                w.push(weight_of(new_src, col_base + d));
                            }
                        }
                        w.into_boxed_slice()
                    })
                    .collect()
            })
            .collect();

        let r = nid(filtered.num_regular());
        let seed_weights: Box<[f32]> = (0..nid(filtered.num_seed()))
            .into_par_iter()
            .flat_map_iter(|s| {
                let new_src = r + s;
                filtered
                    .seed_csr()
                    .neighbors(s)
                    .iter()
                    .map(move |&dst| weight_of(new_src, dst))
                    .collect::<Vec<f32>>()
            })
            .collect::<Vec<f32>>()
            .into_boxed_slice();

        let sink_base = nid(filtered.num_regular() + filtered.num_seed());
        let sink_weights: Box<[f32]> = (0..nid(filtered.num_sink()))
            .into_par_iter()
            .flat_map_iter(|k| {
                let new_dst = sink_base + k;
                filtered
                    .sink_csc()
                    .neighbors(k)
                    .iter()
                    .map(move |&src| weight_of(src, new_dst))
                    .collect::<Vec<f32>>()
            })
            .collect::<Vec<f32>>()
            .into_boxed_slice();

        drop(build_span);
        let metrics = Metrics::default();
        let stats = blocked.split_stats();
        metrics.tasks_split.set(stats.tasks_split());
        metrics.max_task_nnz.set(stats.max_task_nnz());
        Self {
            filtered,
            blocked,
            block_weights,
            seed_weights,
            sink_weights,
            build_seconds,
            metrics,
        }
    }

    /// The filtered topology.
    pub fn filtered(&self) -> &FilteredGraph {
        &self.filtered
    }

    /// Preprocessing wall-clock.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// The engine's live metrics registry (same catalogue and semantics as
    /// [`crate::MixenEngine::metrics`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs `iters` iterations of
    /// `x'[v] = apply(v, ⊕_{u→v} x[u] ⊗ w(u,v))`; closures take original
    /// node IDs.
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.run(init, apply, iters, None, &mut PhaseStats::default())
            .0
    }

    /// Like [`WMixenEngine::iterate`], additionally returning the per-phase
    /// wall-clock breakdown (same vocabulary as the unweighted engine).
    pub fn iterate_with_stats<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> (Vec<V>, PhaseStats)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let mut stats = PhaseStats::default();
        let (vals, performed) = self.run(init, apply, iters, None, &mut stats);
        stats.iterations = performed;
        (vals, stats)
    }

    /// Iterates until the max-norm step difference is at most `tol`.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.run(
            init,
            apply,
            max_iters,
            Some(tol),
            &mut PhaseStats::default(),
        )
    }

    fn run<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        max_iters: usize,
        tol: Option<f64>,
        stats: &mut PhaseStats,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let f = &self.filtered;
        let n = f.n();
        let r = f.num_regular();
        let s = f.num_seed();
        if max_iters == 0 {
            return ((0..nid(n)).into_par_iter().map(&init).collect(), 0);
        }

        let seed_vals: Vec<V> = (0..s)
            .into_par_iter()
            .map(|i| init(f.to_old(nid(r + i))))
            .collect();

        // Pre-Phase: weighted seed contributions (the weighted static bin).
        let sta: Vec<V> = {
            let _span = Span::new(&mut stats.pre_seconds);
            self.metrics.static_bin_recomputes.inc();
            let mut acc = vec![V::identity(); r];
            let mut e = 0usize;
            for srow in 0..nid(s) {
                let val = seed_vals[srow as usize];
                for &dst in f.seed_csr().neighbors(srow) {
                    acc[dst as usize].combine(val.scale_edge(self.seed_weights[e]));
                    e += 1;
                }
            }
            acc
        };
        self.metrics.static_bin_entries.set(sta.len() as u64);

        let mut x: Vec<V> = (0..r)
            .into_par_iter()
            .map(|v| init(f.to_old(nid(v))))
            .collect();
        let mut y: Vec<V> = sta.clone();
        self.metrics.static_bin_reuses.inc();
        let mut bins: DynamicBins<V> = DynamicBins::new(&self.blocked);
        self.metrics
            .dynamic_bin_slots
            .set(self.blocked.total_msg_slots() as u64);
        let split = self.blocked.split_stats();
        self.metrics.tasks_split.set(split.tasks_split());
        self.metrics.max_task_nnz.set(split.max_task_nnz());
        let mut prev: Vec<V> = if tol.is_some() { x.clone() } else { Vec::new() };

        let mut performed = 0usize;
        for t in 0..max_iters {
            let last_fixed = tol.is_none() && t + 1 == max_iters;
            if tol.is_some() {
                prev.copy_from_slice(&x);
            }
            let cache_from = (!last_fixed).then_some(&sta[..]);
            {
                let _span = Span::new(&mut stats.scatter_seconds);
                scga::scatter_with(
                    &self.blocked,
                    &mut x,
                    &mut bins,
                    cache_from,
                    Some(&self.metrics),
                );
                if cache_from.is_some() {
                    self.metrics.static_bin_reuses.inc();
                }
            }
            {
                let _span = Span::new(&mut stats.gather_seconds);
                self.gather_weighted(&bins, &mut y, |new, sum| apply(f.to_old(new), sum));
            }
            std::mem::swap(&mut x, &mut y);
            performed += 1;
            if let Some(tol) = tol {
                let diff = mixen_graph::max_diff(&x, &prev);
                self.metrics.static_bin_reuses.inc();
                y.copy_from_slice(&sta);
                if diff <= tol {
                    break;
                }
            }
        }
        let x_prev: &[V] = if tol.is_some() { &prev } else { &y };

        let _post_span = Span::new(&mut stats.post_seconds);
        // Post-Phase + assembly.
        let sink_base = r + s;
        let sink_ptr = f.sink_csc().ptr();
        let by_new: Vec<V> = (0..n)
            .into_par_iter()
            .map(|new| {
                let old = f.to_old(nid(new));
                if new < r {
                    x[new]
                } else if new < sink_base {
                    apply(old, V::identity())
                } else if new < sink_base + f.num_sink() {
                    let k = nid(new - sink_base);
                    let mut sum = V::identity();
                    let base = sink_ptr[k as usize];
                    for (i, &v) in f.sink_csc().neighbors(k).iter().enumerate() {
                        let msg = if (v as usize) < r {
                            x_prev[v as usize]
                        } else {
                            seed_vals[v as usize - r]
                        };
                        sum.combine(msg.scale_edge(self.sink_weights[base + i]));
                    }
                    apply(old, sum)
                } else {
                    apply(old, V::identity())
                }
            })
            .collect();
        (f.unpermute(&by_new), performed)
    }

    /// Weighted Gather + Apply: like [`scga::gather`], but each destination
    /// combine applies the edge weight to the streamed value. Scheduled over
    /// the same load-balanced [`BlockedSubgraph::gather_tasks`] list, with
    /// weights addressed through `dest_ptr` so chunked tasks pick up each
    /// source's weight sub-run at the matching offset.
    fn gather_weighted<V, FA>(&self, bins: &DynamicBins<V>, y: &mut [V], finish: FA)
    where
        V: PropValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.metrics.edges_gathered.add(self.blocked.nnz() as u64);
        self.metrics
            .bin_bytes_streamed
            .add((self.blocked.total_msg_slots() * std::mem::size_of::<V>()) as u64);
        let rows = self.blocked.rows();
        let c = self.blocked.block_side();
        let tasks = self.blocked.gather_tasks();
        let bin_tasks = bins.tasks();
        let mut segs: Vec<&mut [V]> = Vec::with_capacity(tasks.len());
        let mut rest = y;
        for t in tasks {
            let (seg, tail) = rest.split_at_mut(t.len());
            segs.push(seg);
            rest = tail;
        }
        let idxs = self.blocked.chunk_indexes();
        segs.par_iter_mut()
            .zip(tasks.par_iter().zip(idxs.par_iter()))
            .for_each(|(yseg, (t, idx))| {
                let j = t.col as usize;
                // Hoisted out of the per-run loop: the chunk base is
                // invariant across the whole task (mirrors `scga`).
                let d_lo = t.d_lo;
                let mut cursor = 0usize;
                for (bi, &ti) in self.blocked.nonempty_rows(j).iter().enumerate() {
                    let blk = &rows[ti as usize].blocks[j];
                    let wblk = &self.block_weights[ti as usize][j];
                    let vals = bin_tasks[ti as usize].col(j);
                    match idx {
                        None => {
                            for (k, &val) in vals.iter().enumerate() {
                                let wbase = blk.dest_ptr[k] as usize;
                                for (i, &d) in blk.dests_of(k).iter().enumerate() {
                                    yseg[d as usize].combine(val.scale_edge(wblk[wbase + i]));
                                }
                            }
                        }
                        // Chunk task: destination-major walk; `wpos` maps
                        // each contribution back to its position in the
                        // block's `dests`, which is also its per-edge
                        // weight index.
                        Some(ci) => {
                            for run in ci.runs_of(bi) {
                                let y = &mut yseg[(run.d - d_lo) as usize];
                                let span = cursor..cursor + run.len as usize;
                                for (&k, &p) in ci.slots[span.clone()].iter().zip(&ci.wpos[span]) {
                                    y.combine(vals[k as usize].scale_edge(wblk[p as usize]));
                                }
                                cursor += run.len as usize;
                            }
                        }
                    }
                }
                let col_base = nid(j * c) + t.d_lo;
                for (d, yv) in yseg.iter_mut().enumerate() {
                    *yv = finish(col_base + nid(d), *yv);
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::{Graph, MinF32};

    /// Serial weighted reference.
    fn reference<V: PropValue>(
        wg: &WGraph,
        init: impl Fn(NodeId) -> V,
        apply: impl Fn(NodeId, V) -> V,
        iters: usize,
    ) -> Vec<V> {
        let n = wg.n();
        let mut x: Vec<V> = (0..n as NodeId).map(&init).collect();
        for _ in 0..iters {
            x = (0..n as NodeId)
                .map(|v| {
                    let mut sum = V::identity();
                    for (u, w) in wg.in_edges(v) {
                        sum.combine(x[u as usize].scale_edge(w));
                    }
                    apply(v, sum)
                })
                .collect();
        }
        x
    }

    fn toy() -> WGraph {
        // regular 0,1,2; seed 3; sink 4.
        WGraph::from_triples(
            5,
            &[
                (0, 1, 2.0),
                (1, 2, 0.5),
                (2, 0, 1.5),
                (3, 0, 4.0),
                (3, 4, 1.0),
                (1, 4, 3.0),
            ],
        )
    }

    fn opts() -> MixenOpts {
        MixenOpts {
            block_side: 2,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        }
    }

    #[test]
    fn weighted_spmv_matches_reference() {
        let wg = toy();
        let e = WMixenEngine::new(&wg, opts());
        // Seed-fixed-point contract: in-degree-0 nodes start at apply(v, 0).
        let g = wg.topology().clone();
        let apply = |_: NodeId, s: f32| 0.5 * s + 1.0;
        let init = move |v: NodeId| {
            if g.in_degree(v) == 0 {
                1.0
            } else {
                (v + 1) as f32
            }
        };
        for iters in 0..5 {
            let got = e.iterate::<f32, _, _>(&init, apply, iters);
            let want = reference::<f32>(&wg, &init, apply, iters);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "iters {iters}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn one_shot_weighted_spmv_by_hand() {
        let wg = toy();
        let e = WMixenEngine::new(&wg, opts());
        let y = e.iterate::<f32, _, _>(|v| (v + 1) as f32, |_, s| s, 1);
        // y[0] = 1.5*x[2] + 4*x[3] = 4.5 + 16 = 20.5
        // y[1] = 2*x[0] = 2; y[2] = 0.5*x[1] = 1
        // y[4] = 1*x[3] + 3*x[1] = 4 + 6 = 10
        assert_eq!(y, vec![20.5, 2.0, 1.0, 0.0, 10.0]);
    }

    #[test]
    fn tropical_semiring_gives_shortest_paths() {
        let wg = toy();
        let e = WMixenEngine::new(&wg, opts());
        let root = 3u32;
        let init = |v: NodeId| {
            if v == root {
                MinF32(0.0)
            } else {
                MinF32::identity()
            }
        };
        let apply = move |v: NodeId, s: MinF32| {
            let mut out = s;
            out.combine(if v == root {
                MinF32(0.0)
            } else {
                MinF32::identity()
            });
            out
        };
        let (dist, _) = e.iterate_until(init, apply, 0.0, 50);
        // 3->0 = 4; 3->0->1 = 6; ->2 = 6.5; 3->4 = 1 (vs 3->0->1->4 = 9).
        assert_eq!(dist[3].0, 0.0);
        assert_eq!(dist[0].0, 4.0);
        assert_eq!(dist[1].0, 6.0);
        assert_eq!(dist[2].0, 6.5);
        assert_eq!(dist[4].0, 1.0);
    }

    #[test]
    fn unit_weights_match_unweighted_engine() {
        let g = Graph::from_pairs(6, &[(0, 1), (1, 2), (2, 0), (3, 1), (3, 4), (2, 4), (0, 5)]);
        let wg = WGraph::from_graph(&g, |_, _| 1.0);
        let weighted = WMixenEngine::new(&wg, opts());
        let unweighted = crate::MixenEngine::new(&g, opts());
        // Both engines share the same seed semantics, so any init agrees.
        let a = weighted.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, 3);
        let b = unweighted.iterate::<f32, _, _>(|v| v as f32, |_, s| 0.5 * s + 1.0, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn phase_stats_and_metrics_are_recorded() {
        let wg = toy();
        let e = WMixenEngine::new(&wg, opts());
        let (vals, stats) = e.iterate_with_stats::<f32, _, _>(|v| (v + 1) as f32, |_, s| s, 3);
        assert_eq!(stats.iterations, 3);
        assert!(stats.pre_seconds >= 0.0);
        assert!(stats.main_seconds() >= 0.0);
        assert!(stats.post_seconds >= 0.0);
        let plain = e.iterate::<f32, _, _>(|v| (v + 1) as f32, |_, s| s, 3);
        assert_eq!(vals, plain);
        let snap = e.metrics().snapshot();
        let reg_nnz = e.filtered().reg_csr().nnz() as u64;
        // Two runs of 3 iterations each hit the gather kernel 6 times.
        assert_eq!(snap.get("edges_gathered"), 6 * reg_nnz);
        assert_eq!(snap.get("edges_scattered"), 6 * reg_nnz);
        // One weighted static-bin build per run entry.
        assert_eq!(snap.get("static_bin_recomputes"), 2);
    }

    #[test]
    fn zero_iterations_and_empty_graph() {
        let wg = WGraph::from_triples(0, &[]);
        let e = WMixenEngine::new(&wg, opts());
        assert!(e.iterate::<f32, _, _>(|_| 1.0, |_, s| s, 3).is_empty());
        let wg = toy();
        let e = WMixenEngine::new(&wg, opts());
        let got = e.iterate::<f32, _, _>(|v| v as f32, |_, _| f32::NAN, 0);
        assert_eq!(got, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
