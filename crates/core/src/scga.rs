//! Reusable Scatter/Gather kernels over a [`BlockedSubgraph`].
//!
//! [`crate::MixenEngine`] composes these with its Cache step and phase
//! scheduling; the GPOP-style whole-graph blocking baseline uses them
//! directly (its Scatter–Gather–Apply model is the same data path without
//! filtering or seed caching).
//!
//! Parallel safety without atomics:
//! * Scatter parallelizes over block-rows; each task owns a disjoint source
//!   segment of `x` (which it may also overwrite — Mixen's Cache step).
//! * Gather parallelizes over block-columns; each task owns a disjoint
//!   destination segment of `y`.

use mixen_graph::nid;
use mixen_graph::{NodeId, PropValue};
use rayon::prelude::*;

use crate::bins::DynamicBins;
use crate::block::BlockedSubgraph;
use crate::obs::Metrics;

/// Scatter step: stream each block-row's source values into its dynamic
/// bins (one value per compressed message slot). If `prime` is given, the
/// now-dead source segment is overwritten with the corresponding slice of
/// `prime` afterwards — Mixen's Cache step.
pub fn scatter<V: PropValue>(
    blocked: &BlockedSubgraph,
    x: &mut [V],
    bins: &mut DynamicBins<V>,
    prime: Option<&[V]>,
) {
    scatter_with(blocked, x, bins, prime, None);
}

/// [`scatter`] with optional metrics: advances `edges_scattered` by the
/// subgraph's edge count and `bin_bytes_streamed` by the compressed slot
/// bytes actually written. The kernel streams every block unconditionally,
/// so these per-call totals are exact.
pub fn scatter_with<V: PropValue>(
    blocked: &BlockedSubgraph,
    x: &mut [V],
    bins: &mut DynamicBins<V>,
    prime: Option<&[V]>,
    metrics: Option<&Metrics>,
) {
    if let Some(m) = metrics {
        m.edges_scattered.add(blocked.nnz() as u64);
        m.bin_bytes_streamed
            .add((blocked.total_msg_slots() * std::mem::size_of::<V>()) as u64);
    }
    let rows = blocked.rows();
    let segs = split_by_rows(x, blocked);
    segs.par_iter()
        .zip(bins.tasks_mut().par_iter_mut())
        .zip(rows.par_iter())
        .for_each(|((xseg, task), row)| {
            // SAFETY: segments are disjoint sub-slices, one per task.
            let xseg = unsafe { xseg.as_slice_mut() };
            for (j, blk) in row.blocks.iter().enumerate() {
                let vals = task.col_mut(j);
                for (slot, &src) in vals.iter_mut().zip(blk.src_ids.iter()) {
                    *slot = xseg[src as usize];
                }
            }
            if let Some(p) = prime {
                xseg.copy_from_slice(&p[row.src_start as usize..row.src_end as usize]);
            }
        });
}

/// Gather + Apply step: drain the bins column-wise, combining into `y`
/// (which the caller pre-initializes — to the identity for plain GAS, or to
/// the static-bin contents for Mixen), then map every destination through
/// `finish(new_id, accumulated)` in the same parallel region.
pub fn gather<V, F>(blocked: &BlockedSubgraph, bins: &DynamicBins<V>, y: &mut [V], finish: F)
where
    V: PropValue,
    F: Fn(NodeId, V) -> V + Sync,
{
    gather_with(blocked, bins, y, finish, None);
}

/// [`gather`] with optional metrics: advances `edges_gathered` by the
/// subgraph's edge count (every compressed message fans out to all of its
/// destinations, so the drained-edge total per call is exact).
pub fn gather_with<V, F>(
    blocked: &BlockedSubgraph,
    bins: &DynamicBins<V>,
    y: &mut [V],
    finish: F,
    metrics: Option<&Metrics>,
) where
    V: PropValue,
    F: Fn(NodeId, V) -> V + Sync,
{
    if let Some(m) = metrics {
        m.edges_gathered.add(blocked.nnz() as u64);
    }
    let rows = blocked.rows();
    let c = blocked.block_side();
    let mut segs: Vec<&mut [V]> = Vec::with_capacity(blocked.n_col_blocks());
    let mut rest = y;
    for j in 0..blocked.n_col_blocks() {
        let len = blocked.col_range(j).len();
        let (seg, tail) = rest.split_at_mut(len);
        segs.push(seg);
        rest = tail;
    }
    segs.par_iter_mut().enumerate().for_each(|(j, yseg)| {
        for (row, task) in rows.iter().zip(bins.tasks()) {
            let blk = &row.blocks[j];
            for (k, &val) in task.col(j).iter().enumerate() {
                for &d in blk.dests_of(k) {
                    yseg[d as usize].combine(val);
                }
            }
        }
        let col_base = nid(j * c);
        for (d, yv) in yseg.iter_mut().enumerate() {
            *yv = finish(col_base + nid(d), *yv);
        }
    });
}

/// One sparse BFS level over the blocked structure: merge-join the sorted
/// `frontier` against each block's `src_ids`, then relax destinations per
/// block-column with CAS claims on `depth`. Returns the (unsorted) next
/// frontier.
pub fn bfs_level_sparse(
    blocked: &BlockedSubgraph,
    depth: &[std::sync::atomic::AtomicI32],
    frontier: &[u32],
    level: i32,
) -> Vec<u32> {
    use std::sync::atomic::Ordering;
    let rows = blocked.rows();
    let active: Vec<Vec<Vec<u32>>> = rows
        .par_iter()
        .map(|row| {
            let lo = frontier.partition_point(|&u| u < row.src_start);
            let hi = frontier.partition_point(|&u| u < row.src_end);
            let local: Vec<u32> = frontier[lo..hi]
                .iter()
                .map(|&u| u - row.src_start)
                .collect();
            row.blocks
                .iter()
                .map(|blk| merge_positions(&blk.src_ids, &local))
                .collect()
        })
        .collect();
    (0..blocked.n_col_blocks())
        .into_par_iter()
        .flat_map_iter(|j| {
            let col_base = nid(j * blocked.block_side());
            let mut next = Vec::new();
            for (row, acts) in rows.iter().zip(&active) {
                let blk = &row.blocks[j];
                for &k in &acts[j] {
                    for &d in blk.dests_of(k as usize) {
                        let v = col_base + d;
                        if depth[v as usize]
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                }
            }
            next
        })
        .collect()
}

/// One dense BFS level: walk every block, activating sources whose depth
/// equals `level`. Returns the (unsorted) next frontier.
pub fn bfs_level_dense(
    blocked: &BlockedSubgraph,
    depth: &[std::sync::atomic::AtomicI32],
    level: i32,
) -> Vec<u32> {
    use std::sync::atomic::Ordering;
    let rows = blocked.rows();
    (0..blocked.n_col_blocks())
        .into_par_iter()
        .flat_map_iter(|j| {
            let col_base = nid(j * blocked.block_side());
            let mut next = Vec::new();
            for row in rows {
                let blk = &row.blocks[j];
                for (k, &src) in blk.src_ids.iter().enumerate() {
                    let u = row.src_start + src;
                    if depth[u as usize].load(Ordering::Relaxed) != level {
                        continue;
                    }
                    for &d in blk.dests_of(k) {
                        let v = col_base + d;
                        if depth[v as usize]
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                }
            }
            next
        })
        .collect()
}

/// Positions in `src_ids` whose value occurs in the sorted `active` list.
pub fn merge_positions(src_ids: &[u32], active: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < src_ids.len() && j < active.len() {
        match src_ids[i].cmp(&active[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(nid(i));
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Disjoint mutable segment handles, one per block-row, shareable across a
/// parallel region. Constructed from non-overlapping `split_at_mut` pieces.
pub(crate) struct SegPtr<'a, V> {
    ptr: *mut V,
    len: usize,
    /// Double-materialization guard: `as_slice_mut`'s contract says exactly
    /// one task may claim the segment; under `debug_assertions` or the
    /// `race-detector` feature a second claim panics instead of aliasing.
    #[cfg(any(debug_assertions, feature = "race-detector"))]
    claimed: std::sync::atomic::AtomicBool,
    _marker: std::marker::PhantomData<&'a mut [V]>,
}

// SAFETY: SegPtr borrows a disjoint sub-slice produced by `split_by_rows`
// (via split_at_mut), whose lifetime it captures; moving it to another thread
// moves only the pointer, which is safe whenever `V: Send`.
unsafe impl<V: Send> Send for SegPtr<'_, V> {}
// SAFETY: `&SegPtr` exposes mutation only through the `unsafe fn
// as_slice_mut`, whose contract requires exactly one scatter task (the
// block-row owner) to materialize the slice — distinct SegPtrs never alias
// and a single segment is never shared by two tasks.
unsafe impl<V: Send> Sync for SegPtr<'_, V> {}

impl<V> SegPtr<'_, V> {
    /// SAFETY: each segment wraps a distinct sub-slice; only the one scatter
    /// task owning the block-row may call this, and at most once.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn as_slice_mut(&self) -> &mut [V] {
        #[cfg(any(debug_assertions, feature = "race-detector"))]
        if self
            .claimed
            .swap(true, std::sync::atomic::Ordering::Relaxed)
        {
            // lint: allow(panic) reason=race detector turning a double-claimed segment into a diagnosable failure
            panic!("SegPtr race detected: segment materialized more than once");
        }
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

pub(crate) fn split_by_rows<'a, V>(
    x: &'a mut [V],
    blocked: &BlockedSubgraph,
) -> Vec<SegPtr<'a, V>> {
    let mut segs = Vec::with_capacity(blocked.rows().len());
    let mut rest: &mut [V] = x;
    let mut offset = 0u32;
    for row in blocked.rows() {
        debug_assert_eq!(row.src_start, offset);
        let len = (row.src_end - row.src_start) as usize;
        let (seg, tail) = rest.split_at_mut(len);
        segs.push(SegPtr {
            ptr: seg.as_mut_ptr(),
            len,
            #[cfg(any(debug_assertions, feature = "race-detector"))]
            claimed: std::sync::atomic::AtomicBool::new(false),
            _marker: std::marker::PhantomData,
        });
        rest = tail;
        offset = row.src_end;
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixenOpts;
    use mixen_graph::Csr;

    /// The race detector must catch a segment claimed by two "tasks".
    #[test]
    #[cfg(any(debug_assertions, feature = "race-detector"))]
    #[should_panic(expected = "SegPtr race detected")]
    fn race_detector_catches_double_claim() {
        let csr = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let b = blocked(&csr, 2);
        let mut x = vec![0.0f32; 4];
        let segs = split_by_rows(&mut x, &b);
        // SAFETY: first claim is the legitimate owner's.
        let _first = unsafe { segs[0].as_slice_mut() };
        // SAFETY: deliberately violates the single-claim contract; the
        // detector must panic before any aliasing mutation happens.
        let _second = unsafe { segs[0].as_slice_mut() };
    }

    fn blocked(csr: &Csr, c: usize) -> BlockedSubgraph {
        BlockedSubgraph::new(
            csr,
            &MixenOpts {
                block_side: c,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            1,
        )
    }

    #[test]
    fn scatter_gather_computes_transpose_spmv() {
        // y = A^T x over a 6-node graph, c = 2.
        let csr = Csr::from_edges(6, &[(0, 3), (0, 4), (1, 0), (2, 0), (5, 5), (3, 1)]);
        let b = blocked(&csr, 2);
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut x: Vec<f32> = (0..6).map(|i| (i + 1) as f32).collect();
        let mut y = vec![0.0f32; 6];
        scatter(&b, &mut x, &mut bins, None);
        gather(&b, &bins, &mut y, |_, s| s);
        // In-sums: node 0 <- {1,2} = 2+3=5; 1 <- {3} = 4; 3 <- {0} = 1;
        // 4 <- {0} = 1; 5 <- {5} = 6.
        assert_eq!(y, vec![5.0, 4.0, 0.0, 1.0, 1.0, 6.0]);
        // x untouched without priming.
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn scatter_priming_overwrites_source_segments() {
        let csr = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let b = blocked(&csr, 2);
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        let prime = vec![9.0f32, 8.0, 7.0, 6.0];
        scatter(&b, &mut x, &mut bins, Some(&prime));
        assert_eq!(x, prime);
    }

    #[test]
    fn gather_finish_sees_new_ids() {
        let csr = Csr::from_edges(3, &[(0, 2)]);
        let b = blocked(&csr, 3);
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut x = vec![5.0f32, 0.0, 0.0];
        let mut y = vec![0.0f32; 3];
        scatter(&b, &mut x, &mut bins, None);
        gather(&b, &bins, &mut y, |v, s| s + v as f32 * 100.0);
        assert_eq!(y, vec![0.0, 100.0, 205.0]);
    }
}
