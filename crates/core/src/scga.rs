//! Reusable Scatter/Gather kernels over a [`BlockedSubgraph`].
//!
//! [`crate::MixenEngine`] composes these with its Cache step and phase
//! scheduling; the GPOP-style whole-graph blocking baseline uses them
//! directly (its Scatter–Gather–Apply model is the same data path without
//! filtering or seed caching).
//!
//! Parallel safety without atomics:
//! * Scatter parallelizes over block-rows; each task owns a disjoint source
//!   segment of `x` (which it may also overwrite — Mixen's Cache step).
//! * Gather parallelizes over block-columns; each task owns a disjoint
//!   destination segment of `y`.

use mixen_graph::nid;
use mixen_graph::{GraphError, NodeId, PropValue};
use rayon::prelude::*;

use crate::bins::{plan_codec, BinCodec, DynamicBins};
use crate::block::{Block, BlockedSubgraph, ChunkIndex};
use crate::obs::Metrics;

/// Best-effort read prefetch of the cache line holding `p`. Compiles to a
/// single `prefetcht0` on x86-64 and to nothing elsewhere (aarch64's
/// `_prefetch` intrinsic is not stable) — a pure latency hint that never
/// reads or writes memory, so it cannot affect results.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint instruction; it performs no memory
    // access and is architecturally defined for any address, valid or not.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Read-side view of one (task, column) bin stream, monomorphized per
/// representation so the gather inner loops stay branch-free: full-width
/// streams read `V` directly, packed streams decode 16-bit words through
/// the Scatter round's codec.
trait BinRead<V>: Copy {
    /// Number of message slots in the stream.
    fn len(self) -> usize;
    /// Reads slot `k`.
    ///
    /// SAFETY: callers must keep `k < self.len()`; the kernels derive `k`
    /// from partition metadata that `debug_validate` checks against the
    /// stream sizes.
    unsafe fn get(self, k: usize) -> V;
    /// Stream base address — a software-prefetch target only.
    fn base_ptr(self) -> *const u8;
}

#[derive(Clone, Copy)]
struct FullRead<'a, V>(&'a [V]);

impl<V: PropValue> BinRead<V> for FullRead<'_, V> {
    #[inline(always)]
    fn len(self) -> usize {
        self.0.len()
    }

    // SAFETY: caller proves `k < self.len()` (the `BinRead::get` contract).
    #[inline(always)]
    unsafe fn get(self, k: usize) -> V {
        *self.0.get_unchecked(k) // width: k < len is the BinRead::get contract, proved at every call site
    }

    #[inline(always)]
    fn base_ptr(self) -> *const u8 {
        self.0.as_ptr() as *const u8
    }
}

#[derive(Clone, Copy)]
struct PackedRead<'a> {
    data: &'a [u16],
    codec: BinCodec,
}

impl<V: PropValue> BinRead<V> for PackedRead<'_> {
    #[inline(always)]
    fn len(self) -> usize {
        self.data.len()
    }

    // SAFETY: caller proves `k < self.len()` (the `BinRead::get` contract).
    #[inline(always)]
    unsafe fn get(self, k: usize) -> V {
        V::from_stream_f32(self.codec.decode(*self.data.get_unchecked(k))) // width: k < len is the BinRead::get contract, proved at every call site
    }

    #[inline(always)]
    fn base_ptr(self) -> *const u8 {
        self.data.as_ptr() as *const u8
    }
}

/// Scatter step: stream each block-row's source values into its dynamic
/// bins (one value per compressed message slot). If `prime` is given, the
/// now-dead source segment is overwritten with the corresponding slice of
/// `prime` afterwards — Mixen's Cache step.
///
/// Panics if the bins use a compressed encoding and `x` violates the
/// accuracy budget; fallible callers use [`try_scatter_with`].
pub fn scatter<V: PropValue>(
    blocked: &BlockedSubgraph,
    x: &mut [V],
    bins: &mut DynamicBins<V>,
    prime: Option<&[V]>,
) {
    scatter_with(blocked, x, bins, prime, None);
}

/// [`scatter`] with optional metrics: advances `edges_scattered` by the
/// subgraph's edge count, `bin_bytes_streamed` by the compressed slot
/// bytes actually written (2 per slot under a 16-bit encoding), and
/// `bin_bytes_saved` by the traffic a compressed encoding avoided relative
/// to full-width slots. Every nonempty block streams its full slot list
/// per call, so these per-call totals are exact.
pub fn scatter_with<V: PropValue>(
    blocked: &BlockedSubgraph,
    x: &mut [V],
    bins: &mut DynamicBins<V>,
    prime: Option<&[V]>,
    metrics: Option<&Metrics>,
) {
    try_scatter_with(blocked, x, bins, prime, metrics).unwrap_or_else(|e| {
        // lint: allow(panic) reason=infallible for full-width bins; compressed encodings surface budget violations through try_scatter_with
        panic!("scatter: {e}")
    });
}

/// Fallible [`scatter_with`]: under a compressed bin encoding the round's
/// codec is planned against `x` first ([`plan_codec`]) and a violated
/// accuracy budget surfaces as [`GraphError::Numeric`] before anything is
/// streamed. Full-width bins never fail.
pub fn try_scatter_with<V: PropValue>(
    blocked: &BlockedSubgraph,
    x: &mut [V],
    bins: &mut DynamicBins<V>,
    prime: Option<&[V]>,
    metrics: Option<&Metrics>,
) -> Result<(), GraphError> {
    try_scatter_at_width(blocked, x, bins, prime, metrics, blocked.kernel_width())
}

/// Width-pinned [`try_scatter_with`], backing [`width_identity_check`] and
/// the cross-width identity tests. Production callers go through the
/// partition's configured [`BlockedSubgraph::kernel_width`].
pub fn try_scatter_at_width<V: PropValue>(
    blocked: &BlockedSubgraph,
    x: &mut [V],
    bins: &mut DynamicBins<V>,
    prime: Option<&[V]>,
    metrics: Option<&Metrics>,
    width: usize,
) -> Result<(), GraphError> {
    let codec = plan_codec::<V>(bins.encoding(), x)?;
    bins.set_codec(codec);
    if let Some(m) = metrics {
        m.edges_scattered.add(blocked.nnz() as u64);
        let slots = blocked.total_msg_slots() as u64;
        let bps = bins.bytes_per_slot();
        m.bin_bytes_streamed.add(slots * bps as u64);
        let full = std::mem::size_of::<V>();
        if bps < full {
            m.bin_bytes_saved.add(slots * (full - bps) as u64);
        }
    }
    let packed = bins.encoding().is_compressed();
    let dist = blocked.prefetch_distance();
    let rows = blocked.rows();
    let segs = split_by_rows(x, blocked);
    segs.par_iter()
        .zip(bins.tasks_mut().par_iter_mut())
        .zip(rows.par_iter())
        .for_each(|((xseg, task), row)| {
            // SAFETY: segments are disjoint sub-slices, one per task.
            let xseg = unsafe { xseg.as_slice_mut() };
            let cols = &row.nonempty_cols;
            for (i, &j) in cols.iter().enumerate() {
                if dist > 0 {
                    if let Some(&ja) = cols.get(i + dist) {
                        // Touch the bin stream this task will fill `dist`
                        // blocks from now, hiding its first-write miss.
                        prefetch_read(task.col_prefetch_ptr(ja as usize));
                    }
                }
                let blk = &row.blocks[j as usize];
                if packed {
                    stream_block_packed(blk, xseg, task.packed_col_mut(j as usize), codec, width);
                } else {
                    stream_block_full(blk, xseg, task.col_mut(j as usize), width);
                }
            }
            if let Some(p) = prime {
                xseg.copy_from_slice(&p[row.src_start as usize..row.src_end as usize]);
            }
        });
    Ok(())
}

/// Streams one block's source values into its full-width bin slots:
/// `vals[k] = xseg[src_ids[k]]`, at unroll width `width`.
///
/// When the block's active sources form a contiguous run (common in the
/// hub-dense front columns after relocation), the loop collapses to a
/// straight `copy_from_slice` — a memcpy the compiler vectorizes
/// regardless of the configured width. The general path is a `width`-wide
/// chunked unchecked gather ([`copy_slots`]).
#[inline]
fn stream_block_full<V: PropValue>(blk: &Block, xseg: &[V], vals: &mut [V], width: usize) {
    let ids = &blk.src_ids;
    debug_assert_eq!(vals.len(), ids.len());
    debug_assert!(ids.iter().all(|&s| (s as usize) < xseg.len()));
    let (Some(&first), Some(&last)) = (ids.first(), ids.last()) else {
        return; // Empty block (only reachable with skip lists disabled).
    };
    let len = ids.len();
    if (last - first) as usize + 1 == len {
        // `src_ids` is strictly ascending, so a span equal to the length
        // means every source in `first..=last` is present, in order.
        vals.copy_from_slice(&xseg[first as usize..first as usize + len]);
        return;
    }
    match width {
        1 => copy_slots::<V, 1>(ids, xseg, vals),
        2 => copy_slots::<V, 2>(ids, xseg, vals),
        4 => copy_slots::<V, 4>(ids, xseg, vals),
        _ => copy_slots::<V, 8>(ids, xseg, vals),
    }
}

/// The general scatter copy at unroll width `W`: explicit `W`-wide chunks
/// of independent unchecked loads feeding one contiguous store, plus a
/// checked scalar tail. Copies are element-wise, so the width can never
/// change the stored values — `width_identity_check` pins every width
/// bit-for-bit against the scalar walk.
#[inline]
fn copy_slots<V: PropValue, const W: usize>(ids: &[u32], xseg: &[V], vals: &mut [V]) {
    let len = ids.len();
    debug_assert_eq!(vals.len(), len);
    let mut k = 0;
    while k + W <= len {
        // SAFETY: `BlockedSubgraph` construction guarantees (and
        // `debug_validate` re-checks, together with its width-identity
        // check) that every `src_ids` entry is below the block-row height,
        // which is exactly `xseg.len()`; `k + W <= len` keeps the id reads
        // in bounds.
        let loaded: [V; W] = std::array::from_fn(|i| unsafe {
            *xseg.get_unchecked(*ids.get_unchecked(k + i) as usize) // width: W independent loads under the chunk bound k + W <= len
        });
        vals[k..k + W].copy_from_slice(&loaded);
        k += W;
    }
    for i in k..len {
        vals[i] = xseg[ids[i] as usize];
    }
}

/// [`stream_block_full`] for the 16-bit compressed representation: values
/// are encoded through the Scatter round's codec on the way into the
/// stream. No memcpy fast path exists across representations, so the
/// contiguous-run case goes through the same chunked encode.
#[inline]
fn stream_block_packed<V: PropValue>(
    blk: &Block,
    xseg: &[V],
    out: &mut [u16],
    codec: BinCodec,
    width: usize,
) {
    let ids = &blk.src_ids;
    debug_assert_eq!(out.len(), ids.len());
    debug_assert!(ids.iter().all(|&s| (s as usize) < xseg.len()));
    if ids.is_empty() {
        return; // Empty block (only reachable with skip lists disabled).
    }
    match width {
        1 => encode_slots::<V, 1>(ids, xseg, out, codec),
        2 => encode_slots::<V, 2>(ids, xseg, out, codec),
        4 => encode_slots::<V, 4>(ids, xseg, out, codec),
        _ => encode_slots::<V, 8>(ids, xseg, out, codec),
    }
}

/// [`copy_slots`] through a 16-bit codec: `W` independent unchecked loads
/// are encoded and stored as one contiguous chunk, plus a checked scalar
/// tail. Encoding is per-element, so the width cannot change the stored
/// words.
#[inline]
fn encode_slots<V: PropValue, const W: usize>(
    ids: &[u32],
    xseg: &[V],
    out: &mut [u16],
    codec: BinCodec,
) {
    let len = ids.len();
    debug_assert_eq!(out.len(), len);
    let mut k = 0;
    while k + W <= len {
        // SAFETY: same bounds proof as `copy_slots` — validated `src_ids`
        // below `xseg.len()`, id reads under the chunk bound.
        let enc: [u16; W] = std::array::from_fn(|i| {
            codec.encode(
                unsafe { *xseg.get_unchecked(*ids.get_unchecked(k + i) as usize) } // SAFETY: ids validated below xseg.len(); width: W loads under the chunk bound k + W <= len
                    .to_stream_f32(),
            )
        });
        out[k..k + W].copy_from_slice(&enc);
        k += W;
    }
    for i in k..len {
        out[i] = codec.encode(xseg[ids[i] as usize].to_stream_f32());
    }
}

/// Gather + Apply step: drain the bins column-wise, combining into `y`
/// (which the caller pre-initializes — to the identity for plain GAS, or to
/// the static-bin contents for Mixen), then map every destination through
/// `finish(new_id, accumulated)` in the same parallel region.
pub fn gather<V, F>(blocked: &BlockedSubgraph, bins: &DynamicBins<V>, y: &mut [V], finish: F)
where
    V: PropValue,
    F: Fn(NodeId, V) -> V + Sync,
{
    gather_with(blocked, bins, y, finish, None);
}

/// [`gather`] with optional metrics: advances `edges_gathered` by the
/// subgraph's edge count (every compressed message fans out to all of its
/// destinations, so the drained-edge total per call is exact) and
/// `bin_bytes_streamed` by the compressed slot bytes drained — the counter
/// tracks bin traffic in *both* directions, see `obs.rs`.
///
/// Work is scheduled over [`BlockedSubgraph::gather_tasks`]: one task per
/// block-column, except columns the §4.2 balancer chunked into destination
/// sub-ranges. Tasks tile `0..r` contiguously, so each owns a disjoint
/// `y` segment and the per-destination combine order (block-rows ascending,
/// sources ascending within a block) is identical to the unchunked walk —
/// results are bit-for-bit independent of the split, and — enforced by
/// [`width_identity_check`] — of the kernel width.
pub fn gather_with<V, F>(
    blocked: &BlockedSubgraph,
    bins: &DynamicBins<V>,
    y: &mut [V],
    finish: F,
    metrics: Option<&Metrics>,
) where
    V: PropValue,
    F: Fn(NodeId, V) -> V + Sync,
{
    gather_at_width(blocked, bins, y, finish, metrics, blocked.kernel_width());
}

/// Width-pinned [`gather_with`], backing [`width_identity_check`] and the
/// cross-width identity tests.
pub fn gather_at_width<V, F>(
    blocked: &BlockedSubgraph,
    bins: &DynamicBins<V>,
    y: &mut [V],
    finish: F,
    metrics: Option<&Metrics>,
    width: usize,
) where
    V: PropValue,
    F: Fn(NodeId, V) -> V + Sync,
{
    if let Some(m) = metrics {
        m.edges_gathered.add(blocked.nnz() as u64);
        m.bin_bytes_streamed
            .add((blocked.total_msg_slots() * bins.bytes_per_slot()) as u64);
    }
    let bin_tasks = bins.tasks();
    if bins.encoding().is_compressed() {
        let codec = bins.codec();
        gather_impl(blocked, y, finish, width, |ti, j| PackedRead {
            data: bin_tasks[ti].packed_col(j),
            codec,
        });
    } else {
        gather_impl(blocked, y, finish, width, |ti, j| FullRead(bin_tasks[ti].col(j)));
    }
}

/// The gather scheduling skeleton, generic over the bin representation
/// (`mk(task, col)` builds the stream reader) with the inner loops
/// dispatched once per block to the const-width kernels.
fn gather_impl<V, F, R, MK>(blocked: &BlockedSubgraph, y: &mut [V], finish: F, width: usize, mk: MK)
where
    V: PropValue,
    F: Fn(NodeId, V) -> V + Sync,
    R: BinRead<V>,
    MK: Fn(usize, usize) -> R + Sync,
{
    let rows = blocked.rows();
    let c = blocked.block_side();
    let dist = blocked.prefetch_distance();
    let tasks = blocked.gather_tasks();
    let mut segs: Vec<&mut [V]> = Vec::with_capacity(tasks.len());
    let mut rest = y;
    for t in tasks {
        let (seg, tail) = rest.split_at_mut(t.len());
        segs.push(seg);
        rest = tail;
    }
    let idxs = blocked.chunk_indexes();
    segs.par_iter_mut()
        .zip(tasks.par_iter().zip(idxs.par_iter()))
        .for_each(|(yseg, (t, idx))| {
            let j = t.col as usize;
            let list = blocked.nonempty_rows(j);
            match idx {
                // Full-column task: drain every run whole.
                None => {
                    for (i, &ti) in list.iter().enumerate() {
                        if dist > 0 {
                            if let Some(&ta) = list.get(i + dist) {
                                // Touch the bin stream drained `dist`
                                // blocks from now — the next dynamic-bin
                                // segment of this column walk.
                                prefetch_read(mk(ta as usize, j).base_ptr());
                            }
                        }
                        let blk = &rows[ti as usize].blocks[j];
                        let r = mk(ti as usize, j);
                        debug_assert_eq!(r.len(), blk.msg_count());
                        match width {
                            1 => drain_full::<V, R, 1>(blk, r, yseg),
                            2 => drain_full::<V, R, 2>(blk, r, yseg),
                            4 => drain_full::<V, R, 4>(blk, r, yseg),
                            _ => drain_full::<V, R, 8>(blk, r, yseg),
                        }
                    }
                }
                // Chunk task: destination-major walk over the prebuilt
                // index — traffic proportional to the edges this chunk
                // owns, not to the column's message count (which every
                // chunk of a hub column would otherwise re-scan).
                Some(ci) => {
                    // Hoisted out of the unchecked run loop: the chunk base
                    // is invariant across the whole task.
                    let d_lo = t.d_lo;
                    let mut cursor = 0usize;
                    for (bi, &ti) in list.iter().enumerate() {
                        if dist > 0 {
                            if let Some(&ta) = list.get(bi + dist) {
                                prefetch_read(mk(ta as usize, j).base_ptr());
                            }
                        }
                        let r = mk(ti as usize, j);
                        match width {
                            1 => drain_chunk::<V, R, 1>(ci, bi, r, yseg, d_lo, &mut cursor, dist),
                            2 => drain_chunk::<V, R, 2>(ci, bi, r, yseg, d_lo, &mut cursor, dist),
                            4 => drain_chunk::<V, R, 4>(ci, bi, r, yseg, d_lo, &mut cursor, dist),
                            _ => drain_chunk::<V, R, 8>(ci, bi, r, yseg, d_lo, &mut cursor, dist),
                        }
                    }
                }
            }
            let base = nid(j * c) + t.d_lo;
            for (d, yv) in yseg.iter_mut().enumerate() {
                *yv = finish(base + nid(d), *yv);
            }
        });
}

/// Drains one block's full message stream into the column's `y` segment at
/// unroll width `W`: the next `W` streamed values are loaded up front,
/// then fanned out to their destination runs in slot order — exactly the
/// scalar walk's per-destination combine order, so results are bit-for-bit
/// width-independent (enforced by [`width_identity_check`]).
#[inline]
fn drain_full<V: PropValue, R: BinRead<V>, const W: usize>(blk: &Block, r: R, yseg: &mut [V]) {
    let n = r.len();
    let mut k = 0;
    while k + W <= n {
        // SAFETY: `k + W <= n` keeps every front-loaded read below the
        // stream length (the `BinRead::get` contract).
        let vals: [V; W] = std::array::from_fn(|i| unsafe { r.get(k + i) });
        for (i, v) in vals.into_iter().enumerate() {
            for &d in blk.dests_of(k + i) {
                // SAFETY: `debug_validate` guarantees every local
                // destination is below the column width, which is exactly
                // `yseg.len()` on the full-column path; its width-identity
                // check additionally pins this walk bit-for-bit to the
                // scalar combine order.
                unsafe { yseg.get_unchecked_mut(d as usize) }.combine(v); // width: W-slot fan-out in ascending slot order, same as scalar
            }
        }
        k += W;
    }
    for i in k..n {
        // SAFETY: `i < n` — scalar tail of the same walk.
        let v = unsafe { r.get(i) };
        for &d in blk.dests_of(i) {
            // SAFETY: same destination bound proof as the chunked loop above.
            unsafe { yseg.get_unchecked_mut(d as usize) }.combine(v); // width: scalar tail, destinations below the column width
        }
    }
}

/// Drains one block's runs of a chunk task at unroll width `W`. Each run
/// combines into a single destination accumulator strictly sequentially —
/// the `W`-wide part only front-loads slot reads — so the width never
/// changes the combine order (enforced by [`width_identity_check`]).
#[inline]
fn drain_chunk<V: PropValue, R: BinRead<V>, const W: usize>(
    ci: &ChunkIndex,
    bi: usize,
    r: R,
    yseg: &mut [V],
    d_lo: u32,
    cursor: &mut usize,
    dist: usize,
) {
    let runs = ci.runs_of(bi);
    for (ri, run) in runs.iter().enumerate() {
        if dist > 0 {
            if let Some(ahead) = runs.get(ri + dist) {
                // Touch the destination of the run `dist` ahead — the
                // y side is the random access of a chunk walk.
                if let Some(slot) = yseg.get((ahead.d - d_lo) as usize) {
                    prefetch_read(slot);
                }
            }
        }
        // Hoisted invariants: the run's destination and length are loop
        // constants for the inner slot walk (`d_lo` is hoisted one level
        // further, being task-invariant).
        let rl = run.len as usize;
        let span = &ci.slots[*cursor..*cursor + rl];
        // SAFETY: `debug_validate` rebuilds the chunk index from the
        // blocks and compares exactly, so `run.d` lies in `[d_lo, d_hi)`
        // and the shifted index is below `yseg.len()`; its width-identity
        // check additionally pins every width to the scalar combine order.
        let y = unsafe { yseg.get_unchecked_mut((run.d - d_lo) as usize) }; // width: run destination, invariant across the run (hoisted load)
        let mut i = 0;
        while i + W <= rl {
            // SAFETY: `i + W <= rl` keeps the span reads in bounds, and
            // every slot is a valid message index of this block (same
            // rebuild check).
            let vals: [V; W] = std::array::from_fn(|p| unsafe {
                r.get(*span.get_unchecked(i + p) as usize) // width: W front-loaded slot reads under the chunk bound i + W <= rl
            });
            // Strictly sequential fold — the exact scalar combine order.
            for v in vals {
                y.combine(v);
            }
            i += W;
        }
        for p in i..rl {
            // SAFETY: `p < rl` — scalar tail over the same validated span.
            y.combine(unsafe { r.get(*span.get_unchecked(p) as usize) }); // width: scalar tail under the span bound
        }
        *cursor += rl;
    }
}

/// Runs one `f32` scatter+gather round over `blocked` at the scalar width
/// and at its configured kernel width, and verifies the two outputs are
/// bit-for-bit identical — the invariant every `// width:` annotated
/// unchecked loop in this module cites. Wired into
/// [`BlockedSubgraph::debug_validate`] (strict-invariants builds and
/// tests), never the hot path.
pub fn width_identity_check(blocked: &BlockedSubgraph) -> Result<(), GraphError> {
    let w = blocked.kernel_width();
    if w == 1 || blocked.r() == 0 {
        return Ok(());
    }
    let run = |width: usize| -> Result<Vec<f32>, GraphError> {
        let mut bins: DynamicBins<f32> = DynamicBins::new(blocked);
        let mut x: Vec<f32> = (0..blocked.r())
            .map(|i| (i as f32).mul_add(1e-3, 1.0).sin())
            .collect();
        let mut y = vec![0.0f32; blocked.r()];
        try_scatter_at_width(blocked, &mut x, &mut bins, None, None, width)?;
        gather_at_width(blocked, &bins, &mut y, |_, s| s, None, width);
        Ok(y)
    };
    if run(1)? != run(w)? {
        return Err(GraphError::Invariant(format!(
            "kernel width {w} diverged bit-for-bit from the scalar walk"
        )));
    }
    Ok(())
}

/// One sparse BFS level over the blocked structure: merge-join the sorted
/// `frontier` against each block's `src_ids`, then relax destinations per
/// block-column with CAS claims on `depth`. Returns the (unsorted) next
/// frontier.
pub fn bfs_level_sparse(
    blocked: &BlockedSubgraph,
    depth: &[std::sync::atomic::AtomicI32],
    frontier: &[u32],
    level: i32,
) -> Vec<u32> {
    use std::sync::atomic::Ordering;
    let rows = blocked.rows();
    // Per row: positions of frontier sources per block-column. A row whose
    // frontier slice is empty contributes an empty outer Vec — no per-block
    // allocations at all; columns the row has no edges into stay `Vec::new`.
    let active: Vec<Vec<Vec<u32>>> = rows
        .par_iter()
        .map(|row| {
            let lo = frontier.partition_point(|&u| u < row.src_start);
            let hi = frontier.partition_point(|&u| u < row.src_end);
            if lo == hi {
                return Vec::new();
            }
            let local: Vec<u32> = frontier[lo..hi]
                .iter()
                .map(|&u| u - row.src_start)
                .collect();
            let mut acts = vec![Vec::new(); row.blocks.len()];
            for &j in row.nonempty_cols.iter() {
                acts[j as usize] = merge_positions(&row.blocks[j as usize].src_ids, &local);
            }
            acts
        })
        .collect();
    (0..blocked.n_col_blocks())
        .into_par_iter()
        .flat_map_iter(|j| {
            let col_base = nid(j * blocked.block_side());
            let mut next = Vec::new();
            for &ti in blocked.nonempty_rows(j) {
                let acts = &active[ti as usize];
                if acts.is_empty() {
                    continue; // Row had no frontier sources this level.
                }
                let blk = &rows[ti as usize].blocks[j];
                for &k in &acts[j] {
                    for &d in blk.dests_of(k as usize) {
                        let v = col_base + d;
                        if depth[v as usize]
                            // ordering: the depth claim only needs
                            // same-location atomicity — the next frontier is
                            // consumed after the rayon join, which orders
                            // every claim before any reader.
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                }
            }
            next
        })
        .collect()
}

/// One dense BFS level: walk every block, activating sources whose depth
/// equals `level`. Returns the (unsorted) next frontier.
pub fn bfs_level_dense(
    blocked: &BlockedSubgraph,
    depth: &[std::sync::atomic::AtomicI32],
    level: i32,
) -> Vec<u32> {
    use std::sync::atomic::Ordering;
    let rows = blocked.rows();
    (0..blocked.n_col_blocks())
        .into_par_iter()
        .flat_map_iter(|j| {
            let col_base = nid(j * blocked.block_side());
            let mut next = Vec::new();
            for &ti in blocked.nonempty_rows(j) {
                let row = &rows[ti as usize];
                let blk = &row.blocks[j];
                for (k, &src) in blk.src_ids.iter().enumerate() {
                    let u = row.src_start + src;
                    // ordering: depths at `level` were published by the
                    // previous level's rayon join; this level only claims
                    // unvisited slots, so plain atomicity suffices.
                    if depth[u as usize].load(Ordering::Relaxed) != level {
                        continue;
                    }
                    for &d in blk.dests_of(k) {
                        let v = col_base + d;
                        if depth[v as usize]
                            // ordering: same claim protocol as the sparse
                            // level — the join orders claims before readers.
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            next.push(v);
                        }
                    }
                }
            }
            next
        })
        .collect()
}

/// Positions in `src_ids` whose value occurs in the sorted `active` list.
pub fn merge_positions(src_ids: &[u32], active: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < src_ids.len() && j < active.len() {
        match src_ids[i].cmp(&active[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(nid(i));
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Disjoint mutable segment handles, one per block-row, shareable across a
/// parallel region. Constructed from non-overlapping `split_at_mut` pieces.
pub(crate) struct SegPtr<'a, V> {
    ptr: *mut V,
    len: usize,
    /// Double-materialization guard: `as_slice_mut`'s contract says exactly
    /// one task may claim the segment; under `debug_assertions` or the
    /// `race-detector` feature a second claim panics instead of aliasing.
    /// Routed through [`crate::msync`] so `model-check` builds explore the
    /// claim protocol itself.
    #[cfg(any(debug_assertions, feature = "race-detector"))]
    claimed: crate::msync::atomic::AtomicBool,
    _marker: std::marker::PhantomData<&'a mut [V]>,
}

// SAFETY: SegPtr borrows a disjoint sub-slice produced by `split_by_rows`
// (via split_at_mut), whose lifetime it captures; moving it to another thread
// moves only the pointer, which is safe whenever `V: Send`.
unsafe impl<V: Send> Send for SegPtr<'_, V> {}
// SAFETY: `&SegPtr` exposes mutation only through the `unsafe fn
// as_slice_mut`, whose contract requires exactly one scatter task (the
// block-row owner) to materialize the slice — distinct SegPtrs never alias
// and a single segment is never shared by two tasks.
unsafe impl<V: Send> Sync for SegPtr<'_, V> {}

impl<V> SegPtr<'_, V> {
    /// SAFETY: each segment wraps a distinct sub-slice; only the one scatter
    /// task owning the block-row may call this, and at most once.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn as_slice_mut(&self) -> &mut [V] {
        #[cfg(any(debug_assertions, feature = "race-detector"))]
        if self
            .claimed
            // ordering: the claim flag is a diagnostic tripwire, not a
            // synchronization point — the segment memory itself is handed to
            // the task by the pool's scope machinery, so the swap needs only
            // same-location atomicity to make a double claim observable.
            .swap(true, crate::msync::atomic::Ordering::Relaxed)
        {
            // lint: allow(panic) reason=race detector turning a double-claimed segment into a diagnosable failure
            panic!("SegPtr race detected: segment materialized more than once");
        }
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

pub(crate) fn split_by_rows<'a, V>(
    x: &'a mut [V],
    blocked: &BlockedSubgraph,
) -> Vec<SegPtr<'a, V>> {
    let mut segs = Vec::with_capacity(blocked.rows().len());
    let mut rest: &mut [V] = x;
    let mut offset = 0u32;
    for row in blocked.rows() {
        debug_assert_eq!(row.src_start, offset);
        let len = (row.src_end - row.src_start) as usize;
        let (seg, tail) = rest.split_at_mut(len);
        segs.push(SegPtr {
            ptr: seg.as_mut_ptr(),
            len,
            #[cfg(any(debug_assertions, feature = "race-detector"))]
            claimed: crate::msync::atomic::AtomicBool::new(false),
            _marker: std::marker::PhantomData,
        });
        rest = tail;
        offset = row.src_end;
    }
    segs
}

/// Model probes over the SCGA write path, compiled only under `model-check`.
#[cfg(feature = "model-check")]
pub mod mc {
    use super::SegPtr;

    /// A single scatter segment over a leaked buffer, exposing the
    /// [`SegPtr`] double-materialization guard to `mixen-check` model tests:
    /// concurrent model threads race `try_claim` and the checker proves
    /// exactly one can win under every schedule.
    #[derive(Clone, Copy)]
    pub struct SegProbe {
        seg: &'static SegPtr<'static, f32>,
    }

    impl SegProbe {
        /// Builds a probe over a fresh leaked `len`-value segment (leaking
        /// keeps the probe `'static` and trivially shareable across model
        /// threads; model tests are short-lived processes).
        pub fn new(len: usize) -> Self {
            let buf: &'static mut [f32] = Vec::leak(vec![0.0; len]);
            let seg = Box::leak(Box::new(SegPtr {
                ptr: buf.as_mut_ptr(),
                len,
                #[cfg(any(debug_assertions, feature = "race-detector"))]
                claimed: crate::msync::atomic::AtomicBool::new(false),
                _marker: std::marker::PhantomData,
            }));
            SegProbe { seg }
        }

        /// Claims the segment exactly as a scatter task would. Returns
        /// `true` when this caller is the legitimate first owner and `false`
        /// when the race detector caught a double claim.
        pub fn try_claim(&self) -> bool {
            // SAFETY: the probe materializes the slice only to exercise the
            // claim guard and drops it immediately; the guard itself ensures
            // at most one materialization can coexist.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                let _ = self.seg.as_slice_mut();
            }))
            .is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixenOpts;
    use mixen_graph::Csr;

    /// The race detector must catch a segment claimed by two "tasks".
    #[test]
    #[cfg(any(debug_assertions, feature = "race-detector"))]
    #[should_panic(expected = "SegPtr race detected")]
    fn race_detector_catches_double_claim() {
        let csr = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let b = blocked(&csr, 2);
        let mut x = vec![0.0f32; 4];
        let segs = split_by_rows(&mut x, &b);
        // SAFETY: first claim is the legitimate owner's.
        let _first = unsafe { segs[0].as_slice_mut() };
        // SAFETY: deliberately violates the single-claim contract; the
        // detector must panic before any aliasing mutation happens.
        let _second = unsafe { segs[0].as_slice_mut() };
    }

    fn blocked(csr: &Csr, c: usize) -> BlockedSubgraph {
        BlockedSubgraph::new(
            csr,
            &MixenOpts {
                block_side: c,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            1,
        )
    }

    #[test]
    fn scatter_gather_computes_transpose_spmv() {
        // y = A^T x over a 6-node graph, c = 2.
        let csr = Csr::from_edges(6, &[(0, 3), (0, 4), (1, 0), (2, 0), (5, 5), (3, 1)]);
        let b = blocked(&csr, 2);
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut x: Vec<f32> = (0..6).map(|i| (i + 1) as f32).collect();
        let mut y = vec![0.0f32; 6];
        scatter(&b, &mut x, &mut bins, None);
        gather(&b, &bins, &mut y, |_, s| s);
        // In-sums: node 0 <- {1,2} = 2+3=5; 1 <- {3} = 4; 3 <- {0} = 1;
        // 4 <- {0} = 1; 5 <- {5} = 6.
        assert_eq!(y, vec![5.0, 4.0, 0.0, 1.0, 1.0, 6.0]);
        // x untouched without priming.
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn scatter_priming_overwrites_source_segments() {
        let csr = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let b = blocked(&csr, 2);
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        let prime = vec![9.0f32, 8.0, 7.0, 6.0];
        scatter(&b, &mut x, &mut bins, Some(&prime));
        assert_eq!(x, prime);
    }

    #[test]
    fn gather_finish_sees_new_ids() {
        let csr = Csr::from_edges(3, &[(0, 2)]);
        let b = blocked(&csr, 3);
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut x = vec![5.0f32, 0.0, 0.0];
        let mut y = vec![0.0f32; 3];
        scatter(&b, &mut x, &mut bins, None);
        gather(&b, &bins, &mut y, |v, s| s + v as f32 * 100.0);
        assert_eq!(y, vec![0.0, 100.0, 205.0]);
    }

    /// Reference `y = A^T x` combined serially from the CSR.
    fn spmv_reference(csr: &Csr, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; csr.n_cols()];
        for (u, v) in csr.edges() {
            y[v as usize] += x[u as usize];
        }
        y
    }

    /// Runs one scatter+gather round under `opts` and returns `y`.
    fn spmv_under(csr: &Csr, opts: &MixenOpts, x: &[f32]) -> Vec<f32> {
        let b = BlockedSubgraph::new(csr, opts, 1);
        b.debug_validate(csr, opts).unwrap();
        let mut bins: DynamicBins<f32> = DynamicBins::new(&b);
        let mut xv = x.to_vec();
        let mut y = vec![0.0f32; csr.n_cols()];
        scatter(&b, &mut xv, &mut bins, None);
        gather(&b, &bins, &mut y, |_, s| s);
        y
    }

    #[test]
    fn merge_positions_empty_inputs() {
        assert!(merge_positions(&[], &[]).is_empty());
        assert!(merge_positions(&[1, 2, 3], &[]).is_empty());
        assert!(merge_positions(&[], &[1, 2, 3]).is_empty());
    }

    #[test]
    fn merge_positions_all_match() {
        let ids = [2u32, 5, 9, 11];
        assert_eq!(merge_positions(&ids, &ids), vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_positions_is_duplicate_free_and_sorted() {
        // Active list with entries absent from src_ids, interleaved.
        let ids = [1u32, 4, 6, 7, 10];
        let active = [0u32, 4, 5, 7, 8, 10, 12];
        let got = merge_positions(&ids, &active);
        assert_eq!(got, vec![1, 3, 4]);
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(got, dedup, "positions must be strictly ascending");
    }

    #[test]
    fn scatter_gather_with_fully_empty_block_rows_and_columns() {
        // 12 nodes, c = 2: edges only touch the first and last block, so
        // block-rows 1..4 and block-columns 1..4 are completely empty.
        let csr = Csr::from_edges(12, &[(0, 1), (1, 0), (10, 11), (11, 10), (0, 11)]);
        let o = MixenOpts {
            block_side: 2,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let b = BlockedSubgraph::new(&csr, &o, 1);
        b.debug_validate(&csr, &o).unwrap();
        // Middle rows/columns really are skipped.
        assert!(b.rows()[2].nonempty_cols.is_empty());
        assert!(b.nonempty_rows(2).is_empty());
        let x: Vec<f32> = (0..12).map(|i| (i + 1) as f32).collect();
        assert_eq!(spmv_under(&csr, &o, &x), spmv_reference(&csr, &x));
    }

    #[test]
    fn skip_lists_off_reproduces_the_naive_walk_bitwise() {
        // The A/B knob of the kernels bench: with every tuning knob off the
        // kernels walk the full grid, and outputs must be bit-identical.
        let mut edges = Vec::new();
        for d in 0..40u32 {
            edges.push((3u32, d % 24)); // hub row and hub column load
            edges.push((d % 24, 5u32));
        }
        for u in 0..24u32 {
            edges.push((u, (u * 7 + 1) % 24));
        }
        let csr = Csr::from_edges(24, &edges);
        let x: Vec<f32> = (0..24).map(|i| (i as f32).sin()).collect();
        let tuned = MixenOpts {
            block_side: 4,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let naive = MixenOpts {
            load_balance: false,
            gather_balance: false,
            skip_empty_blocks: false,
            ..tuned
        };
        let a = spmv_under(&csr, &tuned, &x);
        let b = spmv_under(&csr, &naive, &x);
        assert_eq!(a, b, "tuned and naive paths must agree bit-for-bit");
        assert_eq!(a, spmv_reference(&csr, &x));
    }

    #[test]
    fn chunked_gather_columns_match_reference() {
        // Load one block-column far beyond the 2× cap so it gets chunked,
        // with in-edges spread over many destinations.
        let mut edges = Vec::new();
        for u in 0..32u32 {
            for d in 0..8u32 {
                edges.push((u, d)); // column block 0 holds 256 edges
            }
        }
        edges.push((0, 20));
        edges.push((9, 31));
        let csr = Csr::from_edges(32, &edges);
        let o = MixenOpts {
            block_side: 8,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let b = BlockedSubgraph::new(&csr, &o, 1);
        b.debug_validate(&csr, &o).unwrap();
        assert!(
            b.split_stats().gather_splits > 0,
            "column 0 should have been chunked, stats: {:?}",
            b.split_stats()
        );
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).cos()).collect();
        assert_eq!(spmv_under(&csr, &o, &x), spmv_reference(&csr, &x));
    }

    #[test]
    fn bfs_sparse_skips_inactive_rows() {
        use std::sync::atomic::{AtomicI32, Ordering};
        // Path graph 0 -> 1 -> ... -> 11 with c = 2: each level activates
        // one row, every other row has an empty frontier slice.
        let edges: Vec<(u32, u32)> = (0..11u32).map(|u| (u, u + 1)).collect();
        let csr = Csr::from_edges(12, &edges);
        let b = blocked(&csr, 2);
        let depth: Vec<AtomicI32> = (0..12).map(|_| AtomicI32::new(-1)).collect();
        depth[0].store(0, Ordering::Relaxed);
        let mut frontier = vec![0u32];
        let mut level = 0;
        while !frontier.is_empty() {
            frontier = bfs_level_sparse(&b, &depth, &frontier, level);
            frontier.sort_unstable();
            level += 1;
        }
        let got: Vec<i32> = depth.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        let want: Vec<i32> = (0..12).collect();
        assert_eq!(got, want);
    }

    /// A skewed fixture exercising both gather paths (chunked hub column +
    /// full-column tasks) and the non-contiguous scatter path.
    fn skewed_csr() -> Csr {
        let mut edges = Vec::new();
        for u in 0..32u32 {
            for d in 0..8u32 {
                edges.push((u, d));
            }
        }
        for u in 0..32u32 {
            edges.push((u, (u * 7 + 3) % 32));
        }
        edges.push((0, 20));
        edges.push((9, 31));
        Csr::from_edges(32, &edges)
    }

    #[test]
    fn every_kernel_width_is_bitwise_identical_to_scalar() {
        let csr = skewed_csr();
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).cos()).collect();
        let reference = spmv_reference(&csr, &x);
        for &w in &crate::opts::KERNEL_WIDTHS {
            let o = MixenOpts {
                block_side: 8,
                min_tasks_per_thread: 1,
                kernel_width: w,
                ..MixenOpts::default()
            };
            let y = spmv_under(&csr, &o, &x);
            assert_eq!(y, spmv_reference(&csr, &x), "width {w} broke the numerics");
            assert_eq!(y, reference, "width {w} diverged from width 1");
        }
    }

    #[test]
    fn width_identity_check_passes_on_real_partitions() {
        let csr = skewed_csr();
        for &w in &crate::opts::KERNEL_WIDTHS {
            let o = MixenOpts {
                block_side: 8,
                min_tasks_per_thread: 1,
                kernel_width: w,
                ..MixenOpts::default()
            };
            let b = BlockedSubgraph::new(&csr, &o, 1);
            width_identity_check(&b).unwrap();
        }
    }

    #[test]
    fn prefetch_distance_never_affects_results() {
        let csr = skewed_csr();
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.11).sin()).collect();
        let base = spmv_under(
            &csr,
            &MixenOpts {
                block_side: 8,
                min_tasks_per_thread: 1,
                prefetch_distance: 0,
                ..MixenOpts::default()
            },
            &x,
        );
        for dist in [1usize, 3, 16] {
            let o = MixenOpts {
                block_side: 8,
                min_tasks_per_thread: 1,
                prefetch_distance: dist,
                ..MixenOpts::default()
            };
            assert_eq!(spmv_under(&csr, &o, &x), base, "distance {dist} changed y");
        }
    }

    /// One compressed scatter+gather round; returns `y` or the budget error.
    fn spmv_encoded(
        csr: &Csr,
        enc: crate::bins::BinEncoding,
        x: &[f32],
    ) -> Result<Vec<f32>, mixen_graph::GraphError> {
        let o = MixenOpts {
            block_side: 8,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let b = BlockedSubgraph::new(csr, &o, 1);
        let mut bins: DynamicBins<f32> = DynamicBins::with_encoding(&b, enc);
        assert_eq!(bins.encoding(), enc);
        assert_eq!(bins.bytes_per_slot(), if enc.is_compressed() { 2 } else { 4 });
        let mut xv = x.to_vec();
        let mut y = vec![0.0f32; csr.n_cols()];
        try_scatter_with(&b, &mut xv, &mut bins, None, None)?;
        gather(&b, &bins, &mut y, |_, s| s);
        Ok(y)
    }

    #[test]
    fn compressed_encodings_stay_within_the_accuracy_budget() {
        let csr = skewed_csr();
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).cos()).collect();
        let exact = spmv_reference(&csr, &x);
        let max_mag = exact.iter().fold(0.0f64, |m, &v| m.max(v.abs() as f64));
        for enc in [crate::bins::BinEncoding::F16, crate::bins::BinEncoding::Q16] {
            let y = spmv_encoded(&csr, enc, &x).unwrap();
            // Per-message error is budget-bounded and each destination sums
            // a handful of messages, so the output agreement stays within a
            // small multiple of the budget relative to the output scale.
            let worst = exact
                .iter()
                .zip(&y)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst <= crate::bins::ACCURACY_BUDGET * max_mag.max(1.0) * 16.0,
                "{}: worst deviation {worst:.3e}",
                enc.name()
            );
        }
    }

    #[test]
    fn hostile_value_range_is_rejected_with_a_typed_numeric_error() {
        let csr = skewed_csr();
        // 1e30 overflows f16 to infinity -> round-trip error blows the budget.
        let mut x = vec![1.0f32; 32];
        x[7] = 1.0e30;
        let err = spmv_encoded(&csr, crate::bins::BinEncoding::F16, &x).unwrap_err();
        assert!(
            matches!(err, mixen_graph::GraphError::Numeric { .. }),
            "expected GraphError::Numeric, got {err:?}"
        );
        // Non-finite sources are rejected by every lossy encoding.
        x[7] = f32::NAN;
        for enc in [crate::bins::BinEncoding::F16, crate::bins::BinEncoding::Q16] {
            let err = spmv_encoded(&csr, enc, &x).unwrap_err();
            assert!(matches!(err, mixen_graph::GraphError::Numeric { .. }));
        }
    }

    #[test]
    fn compressed_bins_halve_streamed_bytes_in_metrics() {
        let csr = skewed_csr();
        let o = MixenOpts {
            block_side: 8,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let b = BlockedSubgraph::new(&csr, &o, 1);
        let slots = b.total_msg_slots() as u64;
        let m = crate::obs::Metrics::default();
        let mut x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.5).sin()).collect();
        let mut bins: DynamicBins<f32> =
            DynamicBins::with_encoding(&b, crate::bins::BinEncoding::Q16);
        let mut y = vec![0.0f32; 32];
        try_scatter_with(&b, &mut x, &mut bins, None, Some(&m)).unwrap();
        gather_with(&b, &bins, &mut y, |_, s| s, Some(&m));
        let snap = m.snapshot();
        assert_eq!(snap.get("bin_bytes_streamed"), slots * 2 * 2);
        assert_eq!(snap.get("bin_bytes_saved"), slots * 2);
    }

    #[test]
    fn unencodable_property_types_fall_back_to_full_width() {
        use mixen_graph::MinF32;
        let csr = skewed_csr();
        let o = MixenOpts {
            block_side: 8,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let b = BlockedSubgraph::new(&csr, &o, 1);
        let bins: DynamicBins<MinF32> =
            DynamicBins::with_encoding(&b, crate::bins::BinEncoding::F16);
        assert_eq!(bins.encoding(), crate::bins::BinEncoding::F32);
        assert_eq!(bins.bytes_per_slot(), std::mem::size_of::<MinF32>());
    }
}
