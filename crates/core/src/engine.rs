//! The Mixen execution engine (§4.3).
//!
//! Work is scheduled into three phases:
//!
//! * **Pre-Phase** — seed nodes push their (constant) values once; the
//!   results are cached in the static bin.
//! * **Main-Phase** — the regular subgraph iterates under the
//!   Scatter–Cache–Gather–Apply model. Scatter (parallel over block-rows)
//!   streams source values into the dynamic bins; Cache re-primes the dead
//!   source segment with the static bin so that, after the end-of-iteration
//!   swap, the next accumulator already contains the seed contributions;
//!   Gather (parallel over block-columns) drains the bins into the
//!   accumulator; Apply runs the user function in the same parallel region.
//!   No atomics anywhere: block-rows own disjoint source segments,
//!   block-columns own disjoint destination segments.
//! * **Post-Phase** — sink values are computed once, pull-style, from the
//!   values the other nodes propagated in the final iteration (the paper:
//!   "propagation towards sink nodes can be delayed until the completion of
//!   other nodes in the final iteration"). Consequently Mixen's output is
//!   bit-comparable to a conventional engine running the same number of
//!   synchronous iterations.
//!
//! BFS (a non-link-analysis control in the paper) runs on the same blocked
//! structure with frontier-sparse scatter and a dense fallback; it gains
//! nothing from the Cache step, as the paper notes.

use mixen_graph::nid;
use std::sync::atomic::{AtomicI32, Ordering};

use mixen_graph::{Classification, Graph, GraphError, NodeId, PropValue};
use rayon::prelude::*;

use crate::bins::{DynamicBins, StaticBin};
use crate::block::BlockedSubgraph;
use crate::filter::FilteredGraph;
use crate::model::PerfModel;
use crate::obs::{Json, Metrics, Span};
use crate::opts::MixenOpts;

/// Wall-clock breakdown of one [`MixenEngine::iterate_with_stats`] run,
/// following the paper's phase vocabulary (§4.3).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Pre-Phase: seed push into the static bins (runs once).
    pub pre_seconds: f64,
    /// Main-Phase Scatter + Cache steps, summed over iterations.
    pub scatter_seconds: f64,
    /// Main-Phase Gather + Apply steps, summed over iterations.
    pub gather_seconds: f64,
    /// Post-Phase: one-shot sink pull + assembly into original IDs.
    pub post_seconds: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl PhaseStats {
    /// Total Main-Phase time.
    pub fn main_seconds(&self) -> f64 {
        self.scatter_seconds + self.gather_seconds
    }

    /// Fraction of the whole run spent outside the Main-Phase — large on
    /// seed-dominated graphs like weibo, where Mixen schedules most traffic
    /// out of the iteration (Fig. 4 discussion).
    pub fn out_of_main_fraction(&self) -> f64 {
        let total = self.pre_seconds + self.main_seconds() + self.post_seconds;
        if total <= 0.0 {
            0.0
        } else {
            (self.pre_seconds + self.post_seconds) / total
        }
    }

    /// JSON object with every phase timing plus the derived main-phase and
    /// out-of-main aggregates (the `phases` object of DESIGN.md §6d).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("pre_seconds".into(), Json::from_f64(self.pre_seconds)),
            (
                "scatter_seconds".into(),
                Json::from_f64(self.scatter_seconds),
            ),
            ("gather_seconds".into(), Json::from_f64(self.gather_seconds)),
            ("post_seconds".into(), Json::from_f64(self.post_seconds)),
            ("main_seconds".into(), Json::from_f64(self.main_seconds())),
            (
                "out_of_main_fraction".into(),
                Json::from_f64(self.out_of_main_fraction()),
            ),
            ("iterations".into(), Json::from_u64(self.iterations as u64)),
        ])
    }
}

/// The Mixen engine: preprocessed state plus iteration drivers.
#[derive(Clone, Debug)]
pub struct MixenEngine {
    filtered: FilteredGraph,
    blocked: BlockedSubgraph,
    opts: MixenOpts,
    filter_seconds: f64,
    partition_seconds: f64,
    metrics: Metrics,
}

impl MixenEngine {
    /// Preprocesses `g`: filtering/relabeling, then 2-D partitioning.
    pub fn new(g: &Graph, opts: MixenOpts) -> Self {
        Self::build(g, opts, None)
    }

    /// Preprocesses `g` with the relabel policy the §5 performance model
    /// (α, β, hub fraction — [`PerfModel::preferred_ordering`]) predicts to
    /// win, overriding `opts.ordering` — the `--reorder auto` path. The
    /// classification is computed once and reused for the build; the chosen
    /// policy is visible in [`MixenEngine::opts`] and the `reorder_policy`
    /// obs gauge.
    pub fn new_auto(g: &Graph, opts: MixenOpts) -> Self {
        let class = Classification::of(g);
        let model = PerfModel::from_classification(g, &class, opts.block_side);
        let opts = MixenOpts {
            ordering: model.preferred_ordering(),
            ..opts
        };
        Self::build(g, opts, Some(&class))
    }

    fn build(g: &Graph, opts: MixenOpts, class: Option<&Classification>) -> Self {
        let threads = rayon::current_num_threads();
        let mut filter_seconds = 0.0;
        let filtered = {
            let _span = Span::new(&mut filter_seconds);
            match class {
                Some(class) => FilteredGraph::from_classification(g, class, opts.ordering),
                None => FilteredGraph::with_ordering(g, opts.ordering),
            }
        };
        let mut partition_seconds = 0.0;
        let blocked = {
            let _span = Span::new(&mut partition_seconds);
            BlockedSubgraph::with_hub_domain(filtered.reg_csr(), &opts, threads, filtered.num_hub())
        };
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = filtered.debug_validate() {
                // lint: allow(panic) reason=strict-invariants mode turns violated preprocessing invariants into loud failures
                panic!("strict-invariants: {e}");
            }
            if let Err(e) = blocked.debug_validate(filtered.reg_csr(), &opts) {
                // lint: allow(panic) reason=strict-invariants mode turns violated partition invariants into loud failures
                panic!("strict-invariants: {e}");
            }
        }
        let metrics = Metrics::default();
        let stats = blocked.split_stats();
        metrics.tasks_split.set(stats.tasks_split());
        metrics.max_task_nnz.set(stats.max_task_nnz());
        metrics.reorder_policy.set(opts.ordering.policy_id());
        metrics
            .relabel_micros
            // lint: allow(truncation) reason=guarded: non-negative wall-clock micros far below 2^53
            .set((filtered.relabel_seconds() * 1e6) as u64);
        metrics.hub_domain_side.set(blocked.block_side() as u64);
        metrics.kernel_width.set(blocked.kernel_width() as u64);
        metrics
            .prefetch_distance
            .set(blocked.prefetch_distance() as u64);
        // Stamps the *requested* encoding; runs re-stamp the effective one
        // (which depends on the property type V).
        metrics.bin_encoding.set(opts.bin_encoding.encoding_id());
        Self {
            filtered,
            blocked,
            opts,
            filter_seconds,
            partition_seconds,
            metrics,
        }
    }

    /// Like [`MixenEngine::new`], but validates the options and the
    /// preprocessing invariants instead of panicking — the entry point for
    /// supervised execution over untrusted graphs (see `crate::runner`).
    pub fn try_new(g: &Graph, opts: MixenOpts) -> Result<Self, GraphError> {
        if opts.block_side == 0 {
            return Err(GraphError::Invariant("block_side must be positive".into()));
        }
        if opts.balance_factor <= 0.0 || !opts.balance_factor.is_finite() {
            return Err(GraphError::Invariant(format!(
                "balance_factor must be a positive finite number, got {}",
                opts.balance_factor
            )));
        }
        if !crate::opts::KERNEL_WIDTHS.contains(&opts.kernel_width) {
            return Err(GraphError::Invariant(format!(
                "kernel_width must be one of {:?}, got {}",
                crate::opts::KERNEL_WIDTHS,
                opts.kernel_width
            )));
        }
        let engine = Self::new(g, opts);
        engine.validate()?;
        Ok(engine)
    }

    /// Cross-checks the preprocessing invariants the iteration drivers rely
    /// on: the connectivity classes partition the nodes, the relabeling is a
    /// bijection, and blocking preserved every regular edge.
    pub fn validate(&self) -> Result<(), GraphError> {
        let f = &self.filtered;
        let n = f.n();
        let parts = f.num_regular() + f.num_seed() + f.num_sink() + f.num_isolated();
        if parts != n {
            return Err(GraphError::Invariant(format!(
                "connectivity classes cover {parts} nodes, graph has {n}"
            )));
        }
        let mut seen = vec![false; n];
        for new in 0..n {
            let old = f.to_old(nid(new)) as usize;
            if old >= n || seen[old] {
                return Err(GraphError::Invariant(format!(
                    "relabeling is not a bijection at new id {new}"
                )));
            }
            seen[old] = true;
        }
        if self.blocked.nnz() != f.reg_csr().nnz() {
            return Err(GraphError::Invariant(format!(
                "blocked subgraph holds {} edges, regular CSR has {}",
                self.blocked.nnz(),
                f.reg_csr().nnz()
            )));
        }
        Ok(())
    }

    /// The filtered graph (exposed for inspection, stats and the cache
    /// simulator's instrumented twin).
    pub fn filtered(&self) -> &FilteredGraph {
        &self.filtered
    }

    /// The blocked regular subgraph.
    pub fn blocked(&self) -> &BlockedSubgraph {
        &self.blocked
    }

    /// The options this engine was built with.
    pub fn opts(&self) -> &MixenOpts {
        &self.opts
    }

    /// Preprocessing time spent in graph filtering (Table 4).
    pub fn filter_seconds(&self) -> f64 {
        self.filter_seconds
    }

    /// Preprocessing time spent in partitioning/binning (Table 4).
    pub fn partition_seconds(&self) -> f64 {
        self.partition_seconds
    }

    /// The engine's live metrics registry. Counters accumulate across all
    /// iteration-driver calls on this engine; `metrics().reset()` starts a
    /// fresh measurement window, `metrics().snapshot()` freezes one.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs `iters` synchronous iterations of
    /// `x'[v] = apply(v, Σ_{u→v} x[u])` and returns the final values in
    /// original-ID order. `init` provides iteration-0 values; both closures
    /// receive original node IDs.
    ///
    /// Panics if a compressed bin encoding rejects the value range;
    /// fallible callers use [`MixenEngine::try_iterate`].
    pub fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.try_iterate(init, apply, iters).unwrap_or_else(|e| {
            // lint: allow(panic) reason=infallible under the default F32 bins; compressed encodings surface budget violations through try_iterate
            panic!("iterate: {e}")
        })
    }

    /// Fallible [`MixenEngine::iterate`]: a compressed bin encoding whose
    /// measured accuracy budget is violated surfaces as
    /// [`GraphError::Numeric`] (stamped with the failing iteration) instead
    /// of panicking. Infallible under the default `F32` encoding.
    pub fn try_iterate<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> Result<Vec<V>, GraphError>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        Ok(self
            .try_run(init, apply, iters, None, &mut PhaseStats::default())?
            .0)
    }

    /// Like [`MixenEngine::iterate`], additionally returning the per-phase
    /// wall-clock breakdown.
    pub fn iterate_with_stats<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> (Vec<V>, PhaseStats)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let mut stats = PhaseStats::default();
        let (vals, performed) = self
            .try_run(init, apply, iters, None, &mut stats)
            .unwrap_or_else(|e| {
                // lint: allow(panic) reason=infallible under the default F32 bins; compressed encodings surface budget violations through try_iterate
                panic!("iterate_with_stats: {e}")
            });
        stats.iterations = performed;
        (vals, stats)
    }

    /// Iterates until the regular nodes' values change by at most `tol`
    /// (max-norm) or `max_iters` is reached. Returns the values and the
    /// number of iterations performed.
    pub fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.try_iterate_until(init, apply, tol, max_iters)
            .unwrap_or_else(|e| {
                // lint: allow(panic) reason=infallible under the default F32 bins; compressed encodings surface budget violations through try_iterate_until
                panic!("iterate_until: {e}")
            })
    }

    /// Fallible [`MixenEngine::iterate_until`]; see
    /// [`MixenEngine::try_iterate`] for the error contract.
    pub fn try_iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> Result<(Vec<V>, usize), GraphError>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.try_run(
            init,
            apply,
            max_iters,
            Some(tol),
            &mut PhaseStats::default(),
        )
    }

    fn try_run<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        max_iters: usize,
        tol: Option<f64>,
        stats: &mut PhaseStats,
    ) -> Result<(Vec<V>, usize), GraphError>
    where
        V: PropValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let f = &self.filtered;
        let n = f.n();
        let r = f.num_regular();
        let s = f.num_seed();

        if max_iters == 0 {
            return Ok(((0..nid(n)).into_par_iter().map(&init).collect(), 0));
        }

        // Seed values are constant for the whole run.
        let seed_vals: Vec<V> = (0..s)
            .into_par_iter()
            .map(|i| init(f.to_old(nid(r + i))))
            .collect();

        // Pre-Phase: cache seed→regular contributions. With the Cache step
        // disabled (ablation), this work is redone every iteration below.
        let sta: StaticBin<V> = {
            let _span = Span::new(&mut stats.pre_seconds);
            if self.opts.cache_step {
                self.metrics.static_bin_recomputes.inc();
                StaticBin::compute(f.seed_csr(), &seed_vals, r)
            } else {
                StaticBin::zero(r)
            }
        };
        self.metrics
            .static_bin_entries
            .set(sta.values().len() as u64);

        let mut x: Vec<V> = (0..r)
            .into_par_iter()
            .map(|v| init(f.to_old(nid(v))))
            .collect();
        let mut y: Vec<V> = vec![V::identity(); r];
        self.prime(&mut y, &sta, &seed_vals);
        let mut bins: DynamicBins<V> = DynamicBins::with_encoding(&self.blocked, self.opts.bin_encoding);
        self.metrics
            .dynamic_bin_slots
            .set(self.blocked.total_msg_slots() as u64);
        // Re-stamp the partition and reorder gauges: a per-run
        // `metrics().reset()` must not lose metadata that describes the
        // (unchanged) partition and relabel policy.
        let split = self.blocked.split_stats();
        self.metrics.tasks_split.set(split.tasks_split());
        self.metrics.max_task_nnz.set(split.max_task_nnz());
        self.metrics
            .reorder_policy
            .set(self.opts.ordering.policy_id());
        self.metrics
            .relabel_micros
            // lint: allow(truncation) reason=guarded: non-negative wall-clock micros far below 2^53
            .set((self.filtered.relabel_seconds() * 1e6) as u64);
        self.metrics
            .hub_domain_side
            .set(self.blocked.block_side() as u64);
        self.metrics
            .kernel_width
            .set(self.blocked.kernel_width() as u64);
        self.metrics
            .prefetch_distance
            .set(self.blocked.prefetch_distance() as u64);
        // The *effective* encoding for this run's property type V.
        self.metrics
            .bin_encoding
            .set(bins.encoding().encoding_id());
        let mut prev: Vec<V> = if tol.is_some() { x.clone() } else { Vec::new() };

        let mut performed = 0usize;
        for t in 0..max_iters {
            let last_fixed = tol.is_none() && t + 1 == max_iters;
            if tol.is_some() {
                prev.copy_from_slice(&x);
            }
            // Scatter + Cache (parallel over block-rows).
            let cache_from = if !last_fixed && self.opts.cache_step {
                Some(sta.values())
            } else {
                None
            };
            {
                let _span = Span::new(&mut stats.scatter_seconds);
                crate::scga::try_scatter_with(
                    &self.blocked,
                    &mut x,
                    &mut bins,
                    cache_from,
                    Some(&self.metrics),
                )
                .map_err(|e| stamp_iteration(e, t))?;
                if cache_from.is_some() {
                    self.metrics.static_bin_reuses.inc();
                }
            }
            if !last_fixed && !self.opts.cache_step {
                // Ablation: redo the seed push and re-prime x by hand, the
                // redundant traffic Mixen normally avoids.
                self.metrics.static_bin_recomputes.inc();
                let fresh = StaticBin::compute(f.seed_csr(), &seed_vals, r);
                x.copy_from_slice(fresh.values());
            }
            // Gather + Apply (parallel over block-columns).
            {
                let _span = Span::new(&mut stats.gather_seconds);
                crate::scga::gather_with(
                    &self.blocked,
                    &bins,
                    &mut y,
                    |new, sum| apply(f.to_old(new), sum),
                    Some(&self.metrics),
                );
            }
            std::mem::swap(&mut x, &mut y);
            performed += 1;
            if let Some(tol) = tol {
                let diff = mixen_graph::max_diff(&x, &prev);
                // Re-prime the (now dead) y for the next round.
                self.prime(&mut y, &sta, &seed_vals);
                if diff <= tol {
                    break;
                }
            }
        }

        // The values regular nodes propagated in the final iteration.
        let x_prev: &[V] = if tol.is_some() { &prev } else { &y };

        let out = {
            let _span = Span::new(&mut stats.post_seconds);
            self.assemble(&x, x_prev, &seed_vals, &apply)
        };
        Ok((out, performed))
    }

    /// Primes an accumulator with the static-bin contents (or recomputes the
    /// seed push when the Cache step is ablated away).
    fn prime<V: PropValue>(&self, y: &mut [V], sta: &StaticBin<V>, seed_vals: &[V]) {
        if self.opts.cache_step {
            self.metrics.static_bin_reuses.inc();
            y.copy_from_slice(sta.values());
        } else {
            self.metrics.static_bin_recomputes.inc();
            let fresh = StaticBin::compute(self.filtered.seed_csr(), seed_vals, y.len());
            y.copy_from_slice(fresh.values());
        }
    }

    /// Post-Phase plus final assembly into original-ID order.
    fn assemble<V, FA>(&self, x: &[V], x_prev: &[V], seed_vals: &[V], apply: &FA) -> Vec<V>
    where
        V: PropValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let f = &self.filtered;
        let n = f.n();
        let r = f.num_regular();
        let s = f.num_seed();
        let sink_base = r + s;

        // Post-Phase: sinks pull from the final propagated values.
        let sink_vals: Vec<V> = (0..nid(f.num_sink()))
            .into_par_iter()
            .map(|k| {
                let mut sum = V::identity();
                for &v in f.sink_csc().neighbors(k) {
                    let msg = if (v as usize) < r {
                        x_prev[v as usize]
                    } else {
                        seed_vals[v as usize - r]
                    };
                    sum.combine(msg);
                }
                apply(f.to_old(nid(sink_base) + k), sum)
            })
            .collect();

        (0..n)
            .into_par_iter()
            .map(|new| {
                let old = f.to_old(nid(new));
                if new < r {
                    x[new]
                } else if new < sink_base {
                    // Seeds (in-degree 0) sit at their fixed point.
                    apply(old, V::identity())
                } else if new < sink_base + f.num_sink() {
                    sink_vals[new - sink_base]
                } else {
                    // Isolated nodes also sit at their fixed point.
                    apply(old, V::identity())
                }
            })
            .collect::<Vec<V>>()
            // Values above are in new-ID order; put them back.
            .into_iter()
            .enumerate()
            .fold(vec![V::identity(); n], |mut out, (new, val)| {
                out[f.to_old(nid(new)) as usize] = val;
                out
            })
    }

    /// Breadth-first search from `root`, returning depths in original-ID
    /// order (`-1` = unreachable). Runs frontier-sparse blocked propagation
    /// with a dense fallback for fat frontiers; seeds can only start a
    /// traversal and sinks can only end one, so they are handled in the
    /// Pre-/Post-Phase positions just like link analysis.
    pub fn bfs(&self, root: NodeId) -> Vec<i32> {
        let f = &self.filtered;
        let n = f.n();
        assert!((root as usize) < n, "root out of range");
        let r = f.num_regular();
        let s = f.num_seed();
        let root_new = f.to_new(root) as usize;

        let reg_depth: Vec<AtomicI32> = (0..r).map(|_| AtomicI32::new(-1)).collect();
        let mut frontier: Vec<u32> = Vec::new();

        if root_new < r {
            // ordering: single-threaded seeding before any parallel level.
            reg_depth[root_new].store(0, Ordering::Relaxed);
            frontier.push(nid(root_new));
        } else if root_new < r + s {
            // Seed root: its regular out-neighbours form level 1.
            let local = nid(root_new - r);
            for &v in f.seed_csr().neighbors(local) {
                if reg_depth[v as usize]
                    // ordering: still the sequential seeding phase; CAS only
                    // dedups multi-edges from the root.
                    .compare_exchange(-1, 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    frontier.push(v);
                }
            }
            frontier.sort_unstable();
        }
        // Sink or isolated roots have no out-edges: nothing to expand.

        let mut level = if root_new < r { 0 } else { 1 };
        while !frontier.is_empty() {
            frontier = if frontier.len() * 16 > r {
                self.metrics.bfs_dense_levels.inc();
                crate::scga::bfs_level_dense(&self.blocked, &reg_depth, level)
            } else {
                self.metrics.bfs_sparse_levels.inc();
                crate::scga::bfs_level_sparse(&self.blocked, &reg_depth, &frontier, level)
            };
            frontier.sort_unstable();
            level += 1;
        }

        // Post-Phase: a sink's depth is 1 + the minimum depth among its
        // in-neighbours (regulars take their BFS depth; the only seed with a
        // depth is the root itself).
        let sink_base = nid(r + s);
        let mut out = vec![-1i32; n];
        out[root as usize] = 0;
        for v in 0..r {
            // ordering: all claims were ordered before this read by the
            // final level's rayon join.
            let d = reg_depth[v].load(Ordering::Relaxed);
            if d >= 0 {
                out[f.to_old(nid(v)) as usize] = d;
            }
        }
        let sink_depths: Vec<i32> = (0..nid(f.num_sink()))
            .into_par_iter()
            .map(|k| {
                let mut best = i32::MAX;
                for &v in f.sink_csc().neighbors(k) {
                    let d = if (v as usize) < r {
                        // ordering: read-only Post-Phase after the BFS
                        // levels' joins; no concurrent writers remain.
                        reg_depth[v as usize].load(Ordering::Relaxed)
                    } else if v as usize == root_new {
                        0
                    } else {
                        -1
                    };
                    if d >= 0 {
                        best = best.min(d + 1);
                    }
                }
                if best == i32::MAX {
                    -1
                } else {
                    best
                }
            })
            .collect();
        for (k, &d) in sink_depths.iter().enumerate() {
            let old = f.to_old(sink_base + nid(k)) as usize;
            if d >= 0 && out[old] < 0 {
                out[old] = d;
            }
        }
        out
    }
}

/// Re-stamps a [`GraphError::Numeric`] raised inside an iteration with the
/// iteration number it failed on. The codec planner runs before the graph
/// walk and reports iteration 0; the engine is the only layer that knows
/// which sweep was in flight.
fn stamp_iteration(e: GraphError, t: usize) -> GraphError {
    match e {
        GraphError::Numeric { msg, .. } => GraphError::Numeric { iteration: t, msg },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_graph::Graph;

    /// Serial reference: x'[v] = apply(v, Σ_{u→v} x[u]).
    fn reference<V: PropValue>(
        g: &Graph,
        init: impl Fn(NodeId) -> V,
        apply: impl Fn(NodeId, V) -> V,
        iters: usize,
    ) -> Vec<V> {
        let mut x: Vec<V> = (0..g.n() as NodeId).map(&init).collect();
        for _ in 0..iters {
            let mut y = vec![V::identity(); g.n()];
            for u in 0..g.n() as NodeId {
                for &v in g.out_neighbors(u) {
                    y[v as usize].combine(x[u as usize]);
                }
            }
            for v in 0..g.n() as NodeId {
                y[v as usize] = apply(v, y[v as usize]);
            }
            x = y;
        }
        x
    }

    fn serial_bfs(g: &Graph, root: NodeId) -> Vec<i32> {
        let mut depth = vec![-1i32; g.n()];
        depth[root as usize] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if depth[v as usize] < 0 {
                    depth[v as usize] = depth[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        depth
    }

    fn mixed_graph() -> Graph {
        // regular: 0,1,2; seed: 3,4; sink: 5,6; isolated: 7.
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    fn small_opts() -> MixenOpts {
        MixenOpts {
            block_side: 2,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        }
    }

    #[test]
    fn single_spmv_matches_reference() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        let got = e.iterate::<f32, _, _>(|v| (v + 1) as f32, |_, sum| sum, 1);
        let want = reference::<f32>(&g, |v| (v + 1) as f32, |_, sum| sum, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn multi_iteration_matches_reference() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        // A damped update with per-node offsets; init respects the
        // seed-fixed-point contract: init(v) = apply(v, 0) for seeds.
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        for iters in 1..6 {
            let got = e.iterate::<f32, _, _>(init, apply, iters);
            let want = reference::<f32>(&g, init, apply, iters);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "iters={iters}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn zero_iterations_returns_init() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        let got = e.iterate::<f32, _, _>(|v| v as f32, |_, _| f32::NAN, 0);
        assert_eq!(got, (0..8).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn vector_values_propagate() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        let init = |v: NodeId| [v as f32, 1.0];
        let apply = |_: NodeId, sum: [f32; 2]| sum;
        let got = e.iterate::<[f32; 2], _, _>(init, apply, 1);
        let want = reference::<[f32; 2]>(&g, init, apply, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn iterate_until_converges() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        // Contraction: converges to a fixed point.
        let apply = |_: NodeId, sum: f32| 0.25 * sum + 1.0;
        let (vals, iters) = e.iterate_until::<f32, _, _>(|_| 1.0, apply, 1e-7, 200);
        assert!(iters < 200, "should converge, took {iters}");
        // Fixed point check on a regular node: x0 = 0.25*(x1 + x2 + seeds...) + 1.
        let again = e.iterate::<f32, _, _>(|_| 1.0, apply, iters + 5);
        for (a, b) in vals.iter().zip(&again) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn ablation_no_cache_step_same_results() {
        let g = mixed_graph();
        let base = MixenEngine::new(&g, small_opts());
        let nocache = MixenEngine::new(
            &g,
            MixenOpts {
                cache_step: false,
                ..small_opts()
            },
        );
        let apply = |_: NodeId, sum: f32| 0.5 * sum + 0.3;
        let init = |_: NodeId| 0.3f32;
        for iters in 1..4 {
            let a = base.iterate::<f32, _, _>(init, apply, iters);
            let b = nocache.iterate::<f32, _, _>(init, apply, iters);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn ablation_no_hub_sort_same_results() {
        let g = mixed_graph();
        let base = MixenEngine::new(&g, small_opts());
        let nohub = MixenEngine::new(
            &g,
            MixenOpts {
                ordering: crate::opts::RegularOrdering::Original,
                ..small_opts()
            },
        );
        let a = base.iterate::<f32, _, _>(|v| v as f32, |_, s| s, 2);
        let b = nohub.iterate::<f32, _, _>(|v| v as f32, |_, s| s, 2);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bfs_matches_serial_from_every_root() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        for root in 0..g.n() as NodeId {
            assert_eq!(e.bfs(root), serial_bfs(&g, root), "root {root}");
        }
    }

    #[test]
    fn bfs_on_chain_hits_every_level() {
        // 0 -> 1 -> 2 -> ... -> 9: forces many sparse levels.
        let pairs: Vec<_> = (0..9u32).map(|u| (u, u + 1)).collect();
        let g = Graph::from_pairs(10, &pairs);
        let e = MixenEngine::new(&g, small_opts());
        let d = e.bfs(0);
        assert_eq!(d, (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn engine_on_empty_and_tiny_graphs() {
        for g in [
            Graph::from_pairs(0, &[]),
            Graph::from_pairs(1, &[]),
            Graph::from_pairs(1, &[(0, 0)]),
            Graph::from_pairs(3, &[]),
        ] {
            let e = MixenEngine::new(&g, small_opts());
            let got = e.iterate::<f32, _, _>(|_| 1.0, |_, s| s + 1.0, 2);
            let want = reference::<f32>(&g, |_| 1.0, |_, s| s + 1.0, 2);
            assert_eq!(got, want, "n = {}", g.n());
        }
    }

    #[test]
    fn seed_only_bipartite_graph() {
        // All edges seed -> sink: no regular nodes at all.
        let g = Graph::from_pairs(4, &[(0, 2), (0, 3), (1, 3)]);
        let e = MixenEngine::new(&g, small_opts());
        assert_eq!(e.filtered().num_regular(), 0);
        let got = e.iterate::<f32, _, _>(|v| (v + 1) as f32, |_, s| s, 1);
        let want = reference::<f32>(&g, |v| (v + 1) as f32, |_, s| s, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn phase_stats_are_recorded_and_consistent() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        let (vals, stats) = e.iterate_with_stats::<f32, _, _>(|_| 1.0, |_, s| 0.5 * s, 4);
        assert_eq!(stats.iterations, 4);
        assert!(stats.pre_seconds >= 0.0);
        assert!(stats.main_seconds() >= 0.0);
        assert!(stats.post_seconds >= 0.0);
        assert!((0.0..=1.0).contains(&stats.out_of_main_fraction()));
        // Values must match the plain driver.
        let plain = e.iterate::<f32, _, _>(|_| 1.0, |_, s| 0.5 * s, 4);
        assert_eq!(vals, plain);
    }

    #[test]
    fn metrics_track_kernels_and_static_bin_usage() {
        let g = mixed_graph();
        let e = MixenEngine::new(&g, small_opts());
        let reg_nnz = e.filtered().reg_csr().nnz() as u64;
        let iters = 4usize;
        let _ = e.iterate::<f32, _, _>(|_| 1.0, |_, s| 0.5 * s, iters);
        let snap = e.metrics().snapshot();
        assert_eq!(snap.get("edges_scattered"), iters as u64 * reg_nnz);
        assert_eq!(snap.get("edges_gathered"), iters as u64 * reg_nnz);
        assert_eq!(snap.get("static_bin_recomputes"), 1);
        // Initial prime + one Cache-step re-prime per non-final iteration.
        assert_eq!(snap.get("static_bin_reuses"), iters as u64);
        assert!(snap.get("bin_bytes_streamed") > 0);
        assert_eq!(
            snap.get("static_bin_entries"),
            e.filtered().num_regular() as u64
        );
        e.metrics().reset();
        assert_eq!(e.metrics().snapshot().get("edges_scattered"), 0);
    }

    #[test]
    fn ablated_cache_step_counts_redundant_recomputes() {
        let g = mixed_graph();
        let e = MixenEngine::new(
            &g,
            MixenOpts {
                cache_step: false,
                ..small_opts()
            },
        );
        let iters = 3usize;
        let _ = e.iterate::<f32, _, _>(|_| 1.0, |_, s| 0.5 * s, iters);
        let snap = e.metrics().snapshot();
        // One recompute for the initial prime plus one per non-final
        // iteration — the redundant traffic the Cache step exists to avoid.
        assert_eq!(snap.get("static_bin_recomputes"), iters as u64);
        assert_eq!(snap.get("static_bin_reuses"), 0);
    }

    #[test]
    fn bfs_level_choices_are_counted() {
        // 0 -> 1 -> ... -> 9: every level is frontier-sparse... until the
        // dense heuristic kicks in on the tiny regular set.
        let pairs: Vec<_> = (0..9u32).map(|u| (u, u + 1)).collect();
        let g = Graph::from_pairs(10, &pairs);
        let e = MixenEngine::new(&g, small_opts());
        let _ = e.bfs(0);
        let snap = e.metrics().snapshot();
        let levels = snap.get("bfs_sparse_levels") + snap.get("bfs_dense_levels");
        assert!(levels > 0, "a 10-level chain must expand levels: {snap:?}");
    }

    #[test]
    fn preprocessing_times_recorded() {
        let e = MixenEngine::new(&mixed_graph(), small_opts());
        assert!(e.filter_seconds() >= 0.0);
        assert!(e.partition_seconds() >= 0.0);
    }

    #[test]
    fn merge_positions_finds_intersection() {
        use crate::scga::merge_positions;
        assert_eq!(merge_positions(&[1, 3, 5, 7], &[3, 4, 7]), vec![1, 3]);
        assert_eq!(merge_positions(&[], &[1]), Vec::<u32>::new());
        assert_eq!(merge_positions(&[1], &[]), Vec::<u32>::new());
    }
}
