//! Supervised execution: retries, numeric health checks, and graceful
//! degradation around the Mixen engine.
//!
//! [`RobustRunner`] wraps the whole lifecycle of a link-analysis run:
//!
//! 1. **Load** — [`RobustRunner::load_graph`] retries transient I/O errors
//!    with exponential backoff before giving up.
//! 2. **Preprocess** — the engine is built through
//!    [`MixenEngine::try_new`]; if a preprocessing invariant fails, the
//!    runner degrades to a dense pull baseline (same synchronous semantics,
//!    none of the Mixen machinery) instead of aborting.
//! 3. **Iterate** — values are re-checked every [`RunnerOpts::check_every`]
//!    iterations through the [`ValueCheck`] trait; NaN, Inf, or magnitudes
//!    beyond [`RunnerOpts::divergence_limit`] stop the run with
//!    [`GraphError::Numeric`].
//!
//! Every outcome — success or failure — carries a [`RunReport`] recording
//! iterations, the last residual, phase timings, and each degradation event,
//! so operators can see *how* a run succeeded, not just that it did.

// `RunFailure` is deliberately larger than a bare error: it carries the
// report accumulated up to the failure point.
#![allow(clippy::result_large_err)]

use mixen_graph::nid;
use std::fmt;
use std::io::Read;
use std::path::Path;
use std::time::Duration;

use mixen_graph::{max_diff, Graph, GraphError, NodeId, PropValue};
use rayon::prelude::*;

use crate::engine::{MixenEngine, PhaseStats};
use crate::obs::{Json, MetricsSnapshot};
use crate::opts::MixenOpts;

/// A numeric problem found in a value vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NumericIssue {
    NaN,
    Infinite,
    /// Finite but with magnitude beyond the divergence limit.
    Diverged(f64),
}

impl fmt::Display for NumericIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericIssue::NaN => write!(f, "NaN"),
            NumericIssue::Infinite => write!(f, "infinite value"),
            NumericIssue::Diverged(mag) => write!(f, "magnitude {mag:e} beyond limit"),
        }
    }
}

/// Per-value numeric health probe used by the supervised iteration loop.
pub trait ValueCheck: Copy {
    /// Returns the first problem with this value, or `None` when healthy.
    /// `limit` bounds the acceptable magnitude.
    fn issue(&self, limit: f64) -> Option<NumericIssue>;
}

impl ValueCheck for f32 {
    fn issue(&self, limit: f64) -> Option<NumericIssue> {
        (*self as f64).issue(limit)
    }
}

impl ValueCheck for f64 {
    fn issue(&self, limit: f64) -> Option<NumericIssue> {
        if self.is_nan() {
            Some(NumericIssue::NaN)
        } else if self.is_infinite() {
            Some(NumericIssue::Infinite)
        } else if self.abs() > limit {
            Some(NumericIssue::Diverged(self.abs()))
        } else {
            None
        }
    }
}

impl<const K: usize> ValueCheck for [f32; K] {
    fn issue(&self, limit: f64) -> Option<NumericIssue> {
        self.iter().find_map(|v| v.issue(limit))
    }
}

/// Which execution path actually produced the results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineUsed {
    /// The full Mixen engine (filter → block → SCGA).
    #[default]
    Mixen,
    /// The dense pull baseline, after Mixen preprocessing was rejected.
    PullFallback,
}

/// One recorded degradation during a supervised run.
#[derive(Clone, Debug)]
pub enum DegradationEvent {
    /// A transient load error was retried.
    LoadRetry { attempt: u32, error: String },
    /// Mixen preprocessing failed validation; the run continued on the pull
    /// baseline.
    EngineFallback { reason: String },
}

impl DegradationEvent {
    /// JSON object for the report's `degradations` array.
    pub fn to_json(&self) -> Json {
        match self {
            DegradationEvent::LoadRetry { attempt, error } => Json::Obj(vec![
                ("kind".into(), Json::Str("load_retry".into())),
                ("attempt".into(), Json::from_u64(u64::from(*attempt))),
                ("error".into(), Json::Str(error.clone())),
            ]),
            DegradationEvent::EngineFallback { reason } => Json::Obj(vec![
                ("kind".into(), Json::Str("engine_fallback".into())),
                ("reason".into(), Json::Str(reason.clone())),
            ]),
        }
    }
}

/// What happened during a supervised run — populated on success *and* on
/// failure (see [`RunFailure`]).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Execution path that produced (or was producing) the values.
    pub engine: EngineUsed,
    /// Iterations completed, including the one a numeric fault was found in.
    pub iterations: usize,
    /// Max-norm change across the last health-check boundary (`∞` until two
    /// checkpoints exist).
    pub residual: f64,
    /// Per-phase wall clock (Mixen path only), normalized across batch
    /// re-entries: one Pre-Phase (the first entry's), Scatter/Gather summed
    /// over every iteration, and one Post-Phase (the last entry's). The
    /// redundant re-entry work lives in
    /// [`RunReport::reentry_pre_seconds`]/[`RunReport::reentry_post_seconds`]
    /// so `out_of_main_fraction` stays an honest Fig. 4-style number.
    pub phase_stats: PhaseStats,
    /// Every degradation, in order.
    pub degradations: Vec<DegradationEvent>,
    /// Transient load errors that were retried.
    pub load_retries: u32,
    /// Supervised batches beyond the first that re-entered the engine
    /// (`ceil(iters / check_every) - 1` on an engine run without faults).
    pub batch_reentries: usize,
    /// Pre-Phase seconds burned by batch re-entries — supervision overhead,
    /// not part of the algorithm's phase breakdown.
    pub reentry_pre_seconds: f64,
    /// Post-Phase seconds of superseded intermediate assemblies — likewise
    /// supervision overhead.
    pub reentry_post_seconds: f64,
    /// Counter snapshot: engine kernels merged with runner supervision
    /// events (see [`crate::obs::Metrics`] for the catalogue).
    pub metrics: MetricsSnapshot,
}

impl Default for RunReport {
    fn default() -> Self {
        Self {
            engine: EngineUsed::default(),
            iterations: 0,
            // No residual can exist until two checkpoints have been seen.
            residual: f64::INFINITY,
            phase_stats: PhaseStats::default(),
            degradations: Vec::new(),
            load_retries: 0,
            batch_reentries: 0,
            reentry_pre_seconds: 0.0,
            reentry_post_seconds: 0.0,
            metrics: MetricsSnapshot::default(),
        }
    }
}

impl RunReport {
    /// Folds one engine entry's stats into the report. The first entry
    /// contributes all four phases; later (re-entry) batches contribute only
    /// their Main-Phase — their redundant Pre-Phase is booked under
    /// `reentry_pre_seconds`, and the previous entry's Post-Phase (now
    /// superseded by this entry's final assembly) moves to
    /// `reentry_post_seconds`.
    fn absorb(&mut self, s: PhaseStats) {
        if self.phase_stats.iterations == 0 {
            self.phase_stats.pre_seconds += s.pre_seconds;
            self.phase_stats.post_seconds += s.post_seconds;
        } else {
            self.batch_reentries += 1;
            self.metrics.add("batch_reentries", 1);
            self.reentry_pre_seconds += s.pre_seconds;
            self.reentry_post_seconds += self.phase_stats.post_seconds;
            self.phase_stats.post_seconds = s.post_seconds;
        }
        self.phase_stats.scatter_seconds += s.scatter_seconds;
        self.phase_stats.gather_seconds += s.gather_seconds;
        self.phase_stats.iterations += s.iterations;
    }

    /// The complete machine-readable report (DESIGN.md §6d schema): engine,
    /// iterations, residual, phase timings, re-entry accounting, degradation
    /// trail, and the counter snapshot.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "engine".into(),
                Json::Str(
                    match self.engine {
                        EngineUsed::Mixen => "mixen",
                        EngineUsed::PullFallback => "pull_fallback",
                    }
                    .into(),
                ),
            ),
            ("iterations".into(), Json::from_u64(self.iterations as u64)),
            ("residual".into(), Json::from_f64(self.residual)),
            ("phases".into(), self.phase_stats.to_json()),
            (
                "batch_reentries".into(),
                Json::from_u64(self.batch_reentries as u64),
            ),
            (
                "reentry_pre_seconds".into(),
                Json::from_f64(self.reentry_pre_seconds),
            ),
            (
                "reentry_post_seconds".into(),
                Json::from_f64(self.reentry_post_seconds),
            ),
            (
                "load_retries".into(),
                Json::from_u64(u64::from(self.load_retries)),
            ),
            (
                "degradations".into(),
                Json::Arr(self.degradations.iter().map(|d| d.to_json()).collect()),
            ),
            ("counters".into(), self.metrics.to_json()),
        ])
    }
}

/// A failed supervised run: the typed error plus the report accumulated up
/// to the failure point.
#[derive(Debug)]
pub struct RunFailure {
    pub error: GraphError,
    pub report: RunReport,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "supervised run failed after {} iterations: {}",
            self.report.iterations, self.error
        )
    }
}

impl std::error::Error for RunFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<RunFailure> for GraphError {
    fn from(f: RunFailure) -> Self {
        f.error
    }
}

/// Supervision policy for [`RobustRunner`].
#[derive(Clone, Debug)]
pub struct RunnerOpts {
    /// Options for the underlying Mixen engine.
    pub mixen: MixenOpts,
    /// Health-check cadence in iterations (1 = every iteration).
    pub check_every: usize,
    /// Values with magnitude above this are treated as divergence.
    pub divergence_limit: f64,
    /// Transient load errors retried before giving up.
    pub max_load_retries: u32,
    /// Initial backoff between load retries (doubles each attempt).
    pub retry_backoff: Duration,
    /// Degrade to the pull baseline when Mixen preprocessing fails; with
    /// `false` the preprocessing error is returned instead.
    pub allow_fallback: bool,
    /// Fault-injection hook: pretend preprocessing failed with this message.
    /// Used by the robustness test suite to exercise the fallback path on
    /// graphs that preprocess fine.
    pub inject_preprocess_fault: Option<String>,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        Self {
            mixen: MixenOpts::default(),
            check_every: 1,
            divergence_limit: 1e12,
            max_load_retries: 3,
            retry_backoff: Duration::from_millis(5),
            allow_fallback: true,
            inject_preprocess_fault: None,
        }
    }
}

/// Supervised execution wrapper around [`MixenEngine`]; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct RobustRunner {
    opts: RunnerOpts,
}

impl RobustRunner {
    pub fn new(opts: RunnerOpts) -> Self {
        Self { opts }
    }

    pub fn opts(&self) -> &RunnerOpts {
        &self.opts
    }

    /// Loads a binary graph, retrying transient I/O failures with
    /// exponential backoff. The report carries the retry trail.
    pub fn load_graph(&self, path: impl AsRef<Path>) -> Result<(Graph, RunReport), RunFailure> {
        let path = path.as_ref();
        self.load_graph_with(|| std::fs::File::open(path).map(std::io::BufReader::new))
    }

    /// [`RobustRunner::load_graph`] over an arbitrary reusable byte source:
    /// `open` is called once per attempt (so a fresh stream each retry).
    pub fn load_graph_with<R, F>(&self, mut open: F) -> Result<(Graph, RunReport), RunFailure>
    where
        R: Read,
        F: FnMut() -> std::io::Result<R>,
    {
        let mut report = RunReport::default();
        let mut delay = self.opts.retry_backoff;
        let mut attempt = 0u32;
        loop {
            let result = match open() {
                Ok(mut r) => mixen_graph::io::read_csr(&mut r),
                Err(e) => Err(GraphError::Io(e)),
            };
            match result {
                Ok(g) => return Ok((g, report)),
                Err(e) if e.is_transient() && attempt < self.opts.max_load_retries => {
                    attempt += 1;
                    report.load_retries = attempt;
                    report.metrics.add("load_retries", 1);
                    report.degradations.push(DegradationEvent::LoadRetry {
                        attempt,
                        error: e.to_string(),
                    });
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                Err(e) => return Err(RunFailure { error: e, report }),
            }
        }
    }

    /// Runs `iters` supervised synchronous iterations of
    /// `x'[v] = apply(v, Σ_{u→v} x[u])`; see [`MixenEngine::iterate`] for
    /// the closure contract. Values are health-checked every
    /// [`RunnerOpts::check_every`] iterations.
    pub fn run<V, FI, FA>(
        &self,
        g: &Graph,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> Result<(Vec<V>, RunReport), RunFailure>
    where
        V: PropValue + ValueCheck,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.run_with_report(g, RunReport::default(), init, apply, iters)
    }

    /// [`RobustRunner::run`] continuing a report (e.g. one produced by
    /// [`RobustRunner::load_graph`]), so retry events and iteration stats
    /// end up in a single trail.
    pub fn run_with_report<V, FI, FA>(
        &self,
        g: &Graph,
        mut report: RunReport,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> Result<(Vec<V>, RunReport), RunFailure>
    where
        V: PropValue + ValueCheck,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let engine = match self.build_engine(g) {
            Ok(e) => Some(e),
            Err(err) if self.opts.allow_fallback => {
                report.degradations.push(DegradationEvent::EngineFallback {
                    reason: err.to_string(),
                });
                report.engine = EngineUsed::PullFallback;
                report.metrics.add("engine_fallbacks", 1);
                None
            }
            Err(error) => return Err(RunFailure { error, report }),
        };
        // Pool counters are process-global; remember the entry level so the
        // report carries only this run's task delta.
        let pool_tasks_at_entry = mixen_pool::stats().tasks_executed;
        // Merge the engine's kernel counters into the report on every exit,
        // and stamp the executor's shape and work for this run.
        let finish = |report: &mut RunReport| {
            if let Some(e) = &engine {
                report.metrics.merge(&e.metrics().snapshot());
            }
            let pool = mixen_pool::stats();
            report.metrics.set("pool_workers", pool.threads as u64);
            report.metrics.set(
                "pool_tasks_executed",
                pool.tasks_executed.saturating_sub(pool_tasks_at_entry),
            );
        };

        let limit = self.opts.divergence_limit;
        let batch = self.opts.check_every.max(1);
        let mut cur: Vec<V> = (0..nid(g.n())).into_par_iter().map(&init).collect();
        if let Some(fault) = scan(&cur, limit) {
            report.iterations = 0;
            finish(&mut report);
            return Err(RunFailure {
                error: numeric_error(0, fault),
                report,
            });
        }

        let mut done = 0usize;
        while done < iters {
            let step = batch.min(iters - done);
            let next: Vec<V> = match &engine {
                Some(e) => {
                    let (vals, stats) = if done == 0 {
                        e.iterate_with_stats(&init, &apply, step)
                    } else {
                        let prev = &cur;
                        e.iterate_with_stats(|v| prev[v as usize], &apply, step)
                    };
                    report.absorb(stats);
                    vals
                }
                None => pull_iterate(g, &cur, &apply, step),
            };
            if let Some(fault) = scan(&next, limit) {
                // The fault surfaced somewhere inside this batch; replay it
                // one iteration at a time from the pre-batch checkpoint so
                // the error names the first bad iteration, exactly as a
                // `check_every = 1` run would.
                let (bad_iter, fault) =
                    self.locate_fault(&engine, g, &cur, &apply, step, done, fault, &mut report);
                report.iterations = bad_iter;
                finish(&mut report);
                return Err(RunFailure {
                    error: numeric_error(bad_iter, fault),
                    report,
                });
            }
            done += step;
            report.iterations = done;
            report.residual = max_diff(&next, &cur);
            cur = next;
        }
        finish(&mut report);
        Ok((cur, report))
    }

    /// Replays a faulty batch from its healthy checkpoint, one iteration at
    /// a time, to find the first iteration whose values fail the health
    /// check. The replay's phase stats are *not* absorbed (they are
    /// diagnostic re-execution, not algorithm progress); each single-step
    /// replay is counted under `fault_bisect_steps`. Both engines are
    /// deterministic, so the fault reproduces; if it somehow does not, the
    /// end-of-batch attribution is kept.
    #[allow(clippy::too_many_arguments)]
    fn locate_fault<V, FA>(
        &self,
        engine: &Option<MixenEngine>,
        g: &Graph,
        checkpoint: &[V],
        apply: &FA,
        step: usize,
        done: usize,
        batch_fault: (usize, NumericIssue),
        report: &mut RunReport,
    ) -> (usize, (usize, NumericIssue))
    where
        V: PropValue + ValueCheck,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        if step <= 1 {
            return (done + step, batch_fault);
        }
        let limit = self.opts.divergence_limit;
        let mut probe = checkpoint.to_vec();
        for k in 1..=step {
            let next = match engine {
                Some(e) => {
                    let p = &probe;
                    e.iterate::<V, _, _>(|v| p[v as usize], apply, 1)
                }
                None => pull_iterate(g, &probe, apply, 1),
            };
            report.metrics.add("fault_bisect_steps", 1);
            if let Some(fault) = scan(&next, limit) {
                return (done + k, fault);
            }
            probe = next;
        }
        (done + step, batch_fault)
    }

    fn build_engine(&self, g: &Graph) -> Result<MixenEngine, GraphError> {
        if let Some(reason) = &self.opts.inject_preprocess_fault {
            return Err(GraphError::Invariant(reason.clone()));
        }
        MixenEngine::try_new(g, self.opts.mixen)
    }
}

/// `step` synchronous pull iterations over the in-CSC — the degradation
/// target: same semantics as the Mixen engine, none of its machinery.
fn pull_iterate<V, FA>(g: &Graph, x0: &[V], apply: &FA, step: usize) -> Vec<V>
where
    V: PropValue,
    FA: Fn(NodeId, V) -> V + Sync,
{
    let mut x = x0.to_vec();
    for _ in 0..step {
        x = (0..nid(g.n()))
            .into_par_iter()
            .map(|v| {
                let mut sum = V::identity();
                for &u in g.in_csc().neighbors(v) {
                    sum.combine(x[u as usize]);
                }
                apply(v, sum)
            })
            .collect();
    }
    x
}

fn scan<V: ValueCheck>(vals: &[V], limit: f64) -> Option<(usize, NumericIssue)> {
    vals.iter()
        .enumerate()
        .find_map(|(i, v)| v.issue(limit).map(|iss| (i, iss)))
}

fn numeric_error(iteration: usize, (node, issue): (usize, NumericIssue)) -> GraphError {
    GraphError::Numeric {
        iteration,
        msg: format!("node {node}: {issue}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_graph() -> Graph {
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    fn small_runner() -> RobustRunner {
        RobustRunner::new(RunnerOpts {
            mixen: MixenOpts {
                block_side: 2,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            ..RunnerOpts::default()
        })
    }

    #[test]
    fn supervised_matches_unsupervised() {
        let g = mixed_graph();
        let runner = small_runner();
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let engine = MixenEngine::new(&g, runner.opts().mixen);
        for iters in 0..6 {
            let (got, report) = runner.run(&g, init, apply, iters).unwrap();
            let want = engine.iterate::<f32, _, _>(init, apply, iters);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-5, "iters={iters}: {got:?} vs {want:?}");
            }
            assert_eq!(report.iterations, iters);
            assert_eq!(report.engine, EngineUsed::Mixen);
            assert!(report.degradations.is_empty());
        }
    }

    #[test]
    fn batched_checks_do_not_change_results() {
        let g = mixed_graph();
        let apply = |_: NodeId, sum: f32| 0.5 * sum + 0.3;
        let init = |_: NodeId| 0.3f32;
        let every_iter = small_runner();
        let mut batched_opts = every_iter.opts().clone();
        batched_opts.check_every = 3;
        let batched = RobustRunner::new(batched_opts);
        let (a, _) = every_iter.run(&g, init, apply, 7).unwrap();
        let (b, _) = batched.run(&g, init, apply, 7).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    fn runner_with_check_every(check_every: usize) -> RobustRunner {
        let mut opts = small_runner().opts().clone();
        opts.check_every = check_every;
        RobustRunner::new(opts)
    }

    /// Regression (residual init): the doc promises `∞` until two
    /// checkpoints exist, so a 0-iteration run must not report 0.0.
    #[test]
    fn zero_iteration_run_reports_infinite_residual() {
        let g = mixed_graph();
        let runner = small_runner();
        let (vals, report) = runner.run::<f32, _, _>(&g, |_| 1.0, |_, s| s, 0).unwrap();
        assert_eq!(vals.len(), g.n());
        assert_eq!(report.iterations, 0);
        assert!(report.residual.is_infinite());
        // A run with iterations does produce a finite residual.
        let (_, report) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 2)
            .unwrap();
        assert!(report.residual.is_finite());
    }

    /// Satellite 4: identical values, re-entry accounting, and phase-stat
    /// consistency across `check_every ∈ {1, 3, 7}`.
    #[test]
    fn check_every_variants_agree_and_account_reentries() {
        let g = mixed_graph();
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let iters = 7usize;
        let mut baseline: Option<Vec<f32>> = None;
        for ce in [1usize, 3, 7] {
            let runner = runner_with_check_every(ce);
            let (vals, report) = runner.run(&g, init, apply, iters).unwrap();
            if let Some(base) = &baseline {
                for (a, b) in vals.iter().zip(base) {
                    assert!((a - b).abs() < 1e-5, "check_every={ce}");
                }
            } else {
                baseline = Some(vals);
            }
            let batches = iters.div_ceil(ce);
            assert_eq!(report.batch_reentries, batches - 1, "check_every={ce}");
            assert_eq!(
                report.metrics.get("batch_reentries"),
                (batches - 1) as u64,
                "check_every={ce}"
            );
            // Each engine entry recomputes the static bin exactly once.
            assert_eq!(
                report.metrics.get("static_bin_recomputes"),
                batches as u64,
                "check_every={ce}"
            );
            // The normalized breakdown covers exactly `iters` Main-Phase
            // iterations and books one pre + one post, with re-entry
            // overhead split out rather than inflating the phases.
            assert_eq!(report.phase_stats.iterations, iters, "check_every={ce}");
            assert!(report.phase_stats.pre_seconds >= 0.0);
            assert!(report.phase_stats.post_seconds >= 0.0);
            if batches == 1 {
                assert_eq!(report.reentry_pre_seconds, 0.0);
                assert_eq!(report.reentry_post_seconds, 0.0);
            }
            assert!((0.0..=1.0).contains(&report.phase_stats.out_of_main_fraction()));
        }
    }

    /// Satellite 4 (fault attribution): a deterministic divergence must be
    /// pinned to the same first-bad iteration whatever the batch size.
    #[test]
    fn fault_iteration_is_identical_across_check_every() {
        let g = mixed_graph();
        // Values grow ~10x per iteration; with limit 1e3 the first bad
        // iteration is fixed by the dynamics alone.
        let apply = |_: NodeId, s: f32| 10.0 * s + 100.0;
        let init = |_: NodeId| 100.0f32;
        let mut expected: Option<usize> = None;
        for ce in [1usize, 3, 7] {
            let mut opts = runner_with_check_every(ce).opts().clone();
            opts.divergence_limit = 1e3;
            let runner = RobustRunner::new(opts);
            let failure = runner.run::<f32, _, _>(&g, init, apply, 50).unwrap_err();
            let iteration = match failure.error {
                GraphError::Numeric { iteration, .. } => iteration,
                ref other => panic!("expected Numeric, got {other}"),
            };
            assert_eq!(failure.report.iterations, iteration, "check_every={ce}");
            match expected {
                None => expected = Some(iteration),
                Some(want) => assert_eq!(iteration, want, "check_every={ce}"),
            }
            if ce == 1 {
                assert_eq!(failure.report.metrics.get("fault_bisect_steps"), 0);
            } else {
                // The batched runs had to replay to locate the iteration.
                assert_eq!(
                    failure.report.metrics.get("fault_bisect_steps"),
                    iteration as u64 - (iteration - 1) as u64 / ce as u64 * ce as u64,
                    "check_every={ce}"
                );
            }
        }
        // With limit 1e3 and ~10x growth from 100, iteration 1 already
        // overflows the limit on the cyclic core.
        assert_eq!(expected, Some(1));
    }

    /// Satellite 4 (counter exactness): every Main-Phase iteration streams
    /// exactly the regular subgraph's edges.
    #[test]
    fn edges_scattered_matches_regular_nnz_per_iteration() {
        let g = mixed_graph();
        let runner = small_runner();
        let reg_nnz = MixenEngine::new(&g, runner.opts().mixen)
            .filtered()
            .reg_csr()
            .nnz() as u64;
        assert!(reg_nnz > 0);
        for iters in [1usize, 3, 5] {
            let (_, report) = runner
                .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, iters)
                .unwrap();
            assert_eq!(
                report.metrics.get("edges_scattered"),
                iters as u64 * reg_nnz,
                "iters={iters}"
            );
            assert_eq!(
                report.metrics.get("edges_gathered"),
                iters as u64 * reg_nnz,
                "iters={iters}"
            );
        }
    }

    /// The report JSON carries the full schema and survives a round-trip
    /// through the validating parser.
    #[test]
    fn run_report_json_round_trips() {
        let g = mixed_graph();
        let runner = runner_with_check_every(3);
        let (_, report) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 7)
            .unwrap();
        let json = report.to_json();
        let parsed = Json::parse(&json.render_pretty()).unwrap();
        assert_eq!(parsed, json);
        assert_eq!(parsed.get("engine").unwrap().as_str(), Some("mixen"));
        assert_eq!(parsed.get("iterations").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("batch_reentries").unwrap().as_u64(), Some(2));
        let phases = parsed.get("phases").unwrap();
        assert_eq!(phases.get("iterations").unwrap().as_u64(), Some(7));
        let counters = parsed.get("counters").unwrap();
        assert!(counters.get("edges_scattered").unwrap().as_u64().unwrap() > 0);
        // A fresh report's residual serializes as the string "inf".
        let fresh = RunReport::default().to_json();
        assert_eq!(fresh.get("residual").unwrap().as_f64(), Some(f64::INFINITY));
    }

    /// Runner degradation events surface in the counter snapshot too.
    #[test]
    fn degradations_are_counted_in_metrics() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.inject_preprocess_fault = Some("synthetic invariant failure".into());
        let degraded = RobustRunner::new(opts);
        let (_, report) = degraded
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 2)
            .unwrap();
        assert_eq!(report.metrics.get("engine_fallbacks"), 1);
        // The pull baseline has no kernel counters.
        assert_eq!(report.metrics.get("edges_scattered"), 0);

        let mut bytes = Vec::new();
        mixen_graph::io::write_csr(&g, &mut bytes).unwrap();
        let mut attempts = 0;
        let (_, report) = small_runner()
            .load_graph_with(|| {
                attempts += 1;
                if attempts <= 2 {
                    Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "flaky"))
                } else {
                    Ok(bytes.as_slice())
                }
            })
            .unwrap();
        assert_eq!(report.metrics.get("load_retries"), 2);
    }

    #[test]
    fn nan_poisoned_apply_is_caught_with_report() {
        let g = mixed_graph();
        let runner = small_runner();
        let failure = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, _| f32::NAN, 5)
            .unwrap_err();
        assert!(matches!(
            failure.error,
            GraphError::Numeric { iteration: 1, .. }
        ));
        assert_eq!(failure.report.iterations, 1);
        assert_eq!(failure.report.engine, EngineUsed::Mixen);
    }

    #[test]
    fn poisoned_init_is_caught_at_iteration_zero() {
        let g = mixed_graph();
        let runner = small_runner();
        let failure = runner
            .run::<f32, _, _>(
                &g,
                |v| if v == 3 { f32::INFINITY } else { 1.0 },
                |_, s| s,
                5,
            )
            .unwrap_err();
        assert!(matches!(
            failure.error,
            GraphError::Numeric { iteration: 0, .. }
        ));
        assert_eq!(failure.report.iterations, 0);
    }

    #[test]
    fn divergence_is_caught() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.divergence_limit = 1e3;
        let runner = RobustRunner::new(opts);
        // Doubling per iteration on a cyclic graph blows past 1e3.
        let failure = runner
            .run::<f32, _, _>(&g, |_| 100.0, |_, s| 10.0 * s + 100.0, 50)
            .unwrap_err();
        match failure.error {
            GraphError::Numeric { iteration, ref msg } => {
                assert!(iteration >= 1);
                assert!(msg.contains("magnitude"), "{msg}");
            }
            ref other => panic!("expected Numeric, got {other}"),
        }
    }

    #[test]
    fn fallback_to_pull_matches_mixen_results() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.inject_preprocess_fault = Some("synthetic invariant failure".into());
        let degraded = RobustRunner::new(opts);
        let healthy = small_runner();
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let (a, ra) = degraded.run(&g, init, apply, 4).unwrap();
        let (b, rb) = healthy.run(&g, init, apply, 4).unwrap();
        assert_eq!(ra.engine, EngineUsed::PullFallback);
        assert_eq!(rb.engine, EngineUsed::Mixen);
        assert!(matches!(
            ra.degradations.as_slice(),
            [DegradationEvent::EngineFallback { .. }]
        ));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fallback_disabled_surfaces_the_error() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.inject_preprocess_fault = Some("synthetic invariant failure".into());
        opts.allow_fallback = false;
        let runner = RobustRunner::new(opts);
        let failure = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| s, 2)
            .unwrap_err();
        assert!(matches!(failure.error, GraphError::Invariant(_)));
    }

    #[test]
    fn invalid_opts_are_rejected_by_try_new() {
        let g = mixed_graph();
        let err = MixenEngine::try_new(
            &g,
            MixenOpts {
                block_side: 0,
                ..MixenOpts::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Invariant(_)));
        assert!(MixenEngine::try_new(&g, MixenOpts::default()).is_ok());
    }

    #[test]
    fn load_retries_transient_errors_then_succeeds() {
        let g = mixed_graph();
        let mut bytes = Vec::new();
        mixen_graph::io::write_csr(&g, &mut bytes).unwrap();
        let mut attempts = 0;
        let runner = small_runner();
        let (loaded, report) = runner
            .load_graph_with(|| {
                attempts += 1;
                if attempts <= 2 {
                    Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "flaky"))
                } else {
                    Ok(bytes.as_slice())
                }
            })
            .unwrap();
        assert_eq!(loaded.n(), g.n());
        assert_eq!(report.load_retries, 2);
        assert_eq!(report.degradations.len(), 2);
    }

    #[test]
    fn load_gives_up_on_persistent_errors() {
        let runner = small_runner();
        let failure = runner
            .load_graph_with(|| -> std::io::Result<&[u8]> {
                Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "flaky"))
            })
            .unwrap_err();
        assert!(matches!(failure.error, GraphError::Io(_)));
        assert_eq!(failure.report.load_retries, runner.opts().max_load_retries);
    }

    #[test]
    fn load_does_not_retry_corruption() {
        let g = mixed_graph();
        let mut bytes = Vec::new();
        mixen_graph::io::write_csr(&g, &mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let runner = small_runner();
        let failure = runner.load_graph_with(|| Ok(bytes.as_slice())).unwrap_err();
        assert_eq!(failure.report.load_retries, 0);
        assert!(matches!(
            failure.error,
            GraphError::Checksum { .. } | GraphError::Invariant(_)
        ));
    }

    #[test]
    fn missing_file_fails_without_retry() {
        let runner = small_runner();
        let failure = runner.load_graph("/no/such/file.mxg").unwrap_err();
        assert!(matches!(failure.error, GraphError::Io(_)));
        assert_eq!(failure.report.load_retries, 0);
    }
}
