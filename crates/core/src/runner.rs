//! Supervised execution: retries, numeric health checks, and graceful
//! degradation around the Mixen engine.
//!
//! [`RobustRunner`] wraps the whole lifecycle of a link-analysis run:
//!
//! 1. **Load** — [`RobustRunner::load_graph`] retries transient I/O errors
//!    with exponential backoff before giving up.
//! 2. **Preprocess** — the engine is built through
//!    [`MixenEngine::try_new`]; if a preprocessing invariant fails, the
//!    runner degrades to a dense pull baseline (same synchronous semantics,
//!    none of the Mixen machinery) instead of aborting.
//! 3. **Iterate** — values are re-checked every [`RunnerOpts::check_every`]
//!    iterations through the [`ValueCheck`] trait; NaN, Inf, or magnitudes
//!    beyond [`RunnerOpts::divergence_limit`] stop the run with
//!    [`GraphError::Numeric`].
//! 4. **Checkpoint** — with [`RunnerOpts::checkpoint_path`] set, the value
//!    vector is snapshotted atomically (`CKPT1`, see [`mixen_graph::ckpt`])
//!    every [`RunnerOpts::checkpoint_every`] iterations, and
//!    [`RobustRunner::resume_from`] warm-starts an interrupted run; at a
//!    fixed lane count the resumed run converges to bit-identical output.
//! 5. **Supervise** — a watchdog thread enforces the wall-clock
//!    [`RunnerOpts::deadline`] and flags batches that exceed the
//!    [`RunnerOpts::stall_budget`]. On a stall or a caught pool-worker
//!    panic the runner walks a degradation ladder — full lanes → halved
//!    lanes → single-lane inline → pull baseline — re-running the batch at
//!    each step (batches are pure functions of the previous vector, so the
//!    retry is safe). A deadline overrun stops the run at the next batch
//!    boundary with [`GraphError::Deadline`], after writing a final
//!    checkpoint when checkpointing is on.
//!
//! Every outcome — success or failure — carries a [`RunReport`] recording
//! iterations, the last residual, phase timings, and each degradation event,
//! so operators can see *how* a run succeeded, not just that it did.

// `RunFailure` is deliberately larger than a bare error: it carries the
// report accumulated up to the failure point.
#![allow(clippy::result_large_err)]

use mixen_graph::nid;
use std::fmt;
use std::io::Read;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
// The watchdog handshake atomics route through the crate's model-check
// facade: plain std re-exports in normal builds, instrumented under the
// `model-check` feature so `mixen-check` can explore the protocol.
use crate::msync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mixen_graph::ckpt::{Checkpoint, CkptValue};
use mixen_graph::io::graph_checksum;
use mixen_graph::{max_diff, Graph, GraphError, NodeId, PropValue};
use rayon::prelude::*;

use crate::engine::{MixenEngine, PhaseStats};
use crate::obs::{Json, MetricsSnapshot};
use crate::opts::MixenOpts;

/// A numeric problem found in a value vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NumericIssue {
    NaN,
    Infinite,
    /// Finite but with magnitude beyond the divergence limit.
    Diverged(f64),
}

impl fmt::Display for NumericIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericIssue::NaN => write!(f, "NaN"),
            NumericIssue::Infinite => write!(f, "infinite value"),
            NumericIssue::Diverged(mag) => write!(f, "magnitude {mag:e} beyond limit"),
        }
    }
}

/// Per-value numeric health probe used by the supervised iteration loop.
pub trait ValueCheck: Copy {
    /// Returns the first problem with this value, or `None` when healthy.
    /// `limit` bounds the acceptable magnitude.
    fn issue(&self, limit: f64) -> Option<NumericIssue>;
}

impl ValueCheck for f32 {
    fn issue(&self, limit: f64) -> Option<NumericIssue> {
        (*self as f64).issue(limit)
    }
}

impl ValueCheck for f64 {
    fn issue(&self, limit: f64) -> Option<NumericIssue> {
        if self.is_nan() {
            Some(NumericIssue::NaN)
        } else if self.is_infinite() {
            Some(NumericIssue::Infinite)
        } else if self.abs() > limit {
            Some(NumericIssue::Diverged(self.abs()))
        } else {
            None
        }
    }
}

impl<const K: usize> ValueCheck for [f32; K] {
    fn issue(&self, limit: f64) -> Option<NumericIssue> {
        self.iter().find_map(|v| v.issue(limit))
    }
}

/// Which execution path actually produced the results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineUsed {
    /// The full Mixen engine (filter → block → SCGA).
    #[default]
    Mixen,
    /// The dense pull baseline, after Mixen preprocessing was rejected.
    PullFallback,
}

/// One recorded degradation during a supervised run.
#[derive(Clone, Debug)]
pub enum DegradationEvent {
    /// A transient load error was retried.
    LoadRetry { attempt: u32, error: String },
    /// Mixen preprocessing failed validation; the run continued on the pull
    /// baseline.
    EngineFallback { reason: String },
    /// A panic escaped a batch (typically a crashed pool worker); the batch
    /// was retried one ladder stage down.
    WorkerPanic { stage: String, message: String },
    /// The watchdog flagged a batch that exceeded the stall budget.
    Stall { elapsed_ms: u64, budget_ms: u64 },
    /// The runner stepped down the lane ladder (halve → single-lane inline
    /// → pull baseline).
    LaneDegraded {
        from_lanes: usize,
        to_lanes: usize,
        reason: String,
    },
}

impl DegradationEvent {
    /// JSON object for the report's `degradations` array.
    pub fn to_json(&self) -> Json {
        match self {
            DegradationEvent::LoadRetry { attempt, error } => Json::Obj(vec![
                ("kind".into(), Json::Str("load_retry".into())),
                ("attempt".into(), Json::from_u64(u64::from(*attempt))),
                ("error".into(), Json::Str(error.clone())),
            ]),
            DegradationEvent::EngineFallback { reason } => Json::Obj(vec![
                ("kind".into(), Json::Str("engine_fallback".into())),
                ("reason".into(), Json::Str(reason.clone())),
            ]),
            DegradationEvent::WorkerPanic { stage, message } => Json::Obj(vec![
                ("kind".into(), Json::Str("worker_panic".into())),
                ("stage".into(), Json::Str(stage.clone())),
                ("message".into(), Json::Str(message.clone())),
            ]),
            DegradationEvent::Stall {
                elapsed_ms,
                budget_ms,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("stall".into())),
                ("elapsed_ms".into(), Json::from_u64(*elapsed_ms)),
                ("budget_ms".into(), Json::from_u64(*budget_ms)),
            ]),
            DegradationEvent::LaneDegraded {
                from_lanes,
                to_lanes,
                reason,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("lane_degraded".into())),
                ("from_lanes".into(), Json::from_u64(*from_lanes as u64)),
                ("to_lanes".into(), Json::from_u64(*to_lanes as u64)),
                ("reason".into(), Json::Str(reason.clone())),
            ]),
        }
    }
}

/// What happened during a supervised run — populated on success *and* on
/// failure (see [`RunFailure`]).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Execution path that produced (or was producing) the values.
    pub engine: EngineUsed,
    /// Iterations completed, including the one a numeric fault was found in.
    pub iterations: usize,
    /// Max-norm change across the last health-check boundary (`∞` until two
    /// checkpoints exist).
    pub residual: f64,
    /// Per-phase wall clock (Mixen path only), normalized across batch
    /// re-entries: one Pre-Phase (the first entry's), Scatter/Gather summed
    /// over every iteration, and one Post-Phase (the last entry's). The
    /// redundant re-entry work lives in
    /// [`RunReport::reentry_pre_seconds`]/[`RunReport::reentry_post_seconds`]
    /// so `out_of_main_fraction` stays an honest Fig. 4-style number.
    pub phase_stats: PhaseStats,
    /// Every degradation, in order.
    pub degradations: Vec<DegradationEvent>,
    /// Transient load errors that were retried.
    pub load_retries: u32,
    /// Supervised batches beyond the first that re-entered the engine
    /// (`ceil(iters / check_every) - 1` on an engine run without faults).
    pub batch_reentries: usize,
    /// Pre-Phase seconds burned by batch re-entries — supervision overhead,
    /// not part of the algorithm's phase breakdown.
    pub reentry_pre_seconds: f64,
    /// Post-Phase seconds of superseded intermediate assemblies — likewise
    /// supervision overhead.
    pub reentry_post_seconds: f64,
    /// Counter snapshot: engine kernels merged with runner supervision
    /// events (see [`crate::obs::Metrics`] for the catalogue).
    pub metrics: MetricsSnapshot,
    /// Total lane count the run started with (provenance; 0 until a run
    /// stamps it).
    pub threads: usize,
    /// [`RunnerOpts::fingerprint`] of the run (provenance; the value
    /// checkpoints carry to reject stale resumes).
    pub opts_fingerprint: u64,
}

impl Default for RunReport {
    fn default() -> Self {
        Self {
            engine: EngineUsed::default(),
            iterations: 0,
            // No residual can exist until two checkpoints have been seen.
            residual: f64::INFINITY,
            phase_stats: PhaseStats::default(),
            degradations: Vec::new(),
            load_retries: 0,
            batch_reentries: 0,
            reentry_pre_seconds: 0.0,
            reentry_post_seconds: 0.0,
            metrics: MetricsSnapshot::default(),
            threads: 0,
            opts_fingerprint: 0,
        }
    }
}

impl RunReport {
    /// Folds one engine entry's stats into the report. The first entry
    /// contributes all four phases; later (re-entry) batches contribute only
    /// their Main-Phase — their redundant Pre-Phase is booked under
    /// `reentry_pre_seconds`, and the previous entry's Post-Phase (now
    /// superseded by this entry's final assembly) moves to
    /// `reentry_post_seconds`.
    fn absorb(&mut self, s: PhaseStats) {
        if self.phase_stats.iterations == 0 {
            self.phase_stats.pre_seconds += s.pre_seconds;
            self.phase_stats.post_seconds += s.post_seconds;
        } else {
            self.batch_reentries += 1;
            self.metrics.add("batch_reentries", 1);
            self.reentry_pre_seconds += s.pre_seconds;
            self.reentry_post_seconds += self.phase_stats.post_seconds;
            self.phase_stats.post_seconds = s.post_seconds;
        }
        self.phase_stats.scatter_seconds += s.scatter_seconds;
        self.phase_stats.gather_seconds += s.gather_seconds;
        self.phase_stats.iterations += s.iterations;
    }

    /// The complete machine-readable report (DESIGN.md §6d schema): engine,
    /// iterations, residual, phase timings, re-entry accounting, degradation
    /// trail, and the counter snapshot.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "engine".into(),
                Json::Str(
                    match self.engine {
                        EngineUsed::Mixen => "mixen",
                        EngineUsed::PullFallback => "pull_fallback",
                    }
                    .into(),
                ),
            ),
            ("iterations".into(), Json::from_u64(self.iterations as u64)),
            ("residual".into(), Json::from_f64(self.residual)),
            ("phases".into(), self.phase_stats.to_json()),
            (
                "batch_reentries".into(),
                Json::from_u64(self.batch_reentries as u64),
            ),
            (
                "reentry_pre_seconds".into(),
                Json::from_f64(self.reentry_pre_seconds),
            ),
            (
                "reentry_post_seconds".into(),
                Json::from_f64(self.reentry_post_seconds),
            ),
            (
                "load_retries".into(),
                Json::from_u64(u64::from(self.load_retries)),
            ),
            (
                "degradations".into(),
                Json::Arr(self.degradations.iter().map(|d| d.to_json()).collect()),
            ),
            ("counters".into(), self.metrics.to_json()),
            (
                "provenance".into(),
                Json::Obj(vec![
                    (
                        "crate_version".into(),
                        Json::Str(env!("CARGO_PKG_VERSION").into()),
                    ),
                    ("threads".into(), Json::from_u64(self.threads as u64)),
                    (
                        "opts_fingerprint".into(),
                        Json::Str(format!("{:#018x}", self.opts_fingerprint)),
                    ),
                ]),
            ),
        ])
    }
}

/// A failed supervised run: the typed error plus the report accumulated up
/// to the failure point.
#[derive(Debug)]
pub struct RunFailure {
    pub error: GraphError,
    pub report: RunReport,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "supervised run failed after {} iterations: {}",
            self.report.iterations, self.error
        )
    }
}

impl std::error::Error for RunFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<RunFailure> for GraphError {
    fn from(f: RunFailure) -> Self {
        f.error
    }
}

/// Supervision policy for [`RobustRunner`].
#[derive(Clone, Debug)]
pub struct RunnerOpts {
    /// Options for the underlying Mixen engine.
    pub mixen: MixenOpts,
    /// Health-check cadence in iterations (1 = every iteration).
    pub check_every: usize,
    /// Values with magnitude above this are treated as divergence.
    pub divergence_limit: f64,
    /// Transient load errors retried before giving up.
    pub max_load_retries: u32,
    /// Initial backoff between load retries (doubles each attempt).
    pub retry_backoff: Duration,
    /// Degrade to the pull baseline when Mixen preprocessing fails; with
    /// `false` the preprocessing error is returned instead.
    pub allow_fallback: bool,
    /// Fault-injection hook: pretend preprocessing failed with this message.
    /// Used by the robustness test suite to exercise the fallback path on
    /// graphs that preprocess fine.
    pub inject_preprocess_fault: Option<String>,
    /// Write `CKPT1` snapshots to this path (atomically, temp + rename)
    /// during supervised runs; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Iterations between snapshots (effective minimum 1). Only consulted
    /// when [`RunnerOpts::checkpoint_path`] is set.
    pub checkpoint_every: usize,
    /// Wall-clock budget for the whole run. Enforced by the watchdog thread
    /// and checked at batch boundaries (a running batch is never
    /// interrupted); overruns surface as [`GraphError::Deadline`].
    pub deadline: Option<Duration>,
    /// Budget for a single supervised batch. A batch that takes longer is a
    /// *stall*: the run continues, one degradation-ladder stage down.
    pub stall_budget: Option<Duration>,
    /// Extra value folded into [`RunnerOpts::fingerprint`], for algorithm
    /// parameters the runner cannot see (e.g. the PageRank damping factor).
    pub fingerprint_extra: u64,
    /// Fault-injection hook: sleep this long in every `apply` call, making
    /// each batch overrun a small [`RunnerOpts::stall_budget`]
    /// deterministically.
    pub inject_stall: Option<Duration>,
    /// Fault-injection hook: terminate the process (exit code 86) right
    /// after the Nth checkpoint write, simulating a crash for the
    /// kill/resume recovery tests.
    pub inject_exit_after_checkpoints: Option<u32>,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        Self {
            mixen: MixenOpts::default(),
            check_every: 1,
            divergence_limit: 1e12,
            max_load_retries: 3,
            retry_backoff: Duration::from_millis(5),
            allow_fallback: true,
            inject_preprocess_fault: None,
            checkpoint_path: None,
            checkpoint_every: 1,
            deadline: None,
            stall_budget: None,
            fingerprint_extra: 0,
            inject_stall: None,
            inject_exit_after_checkpoints: None,
        }
    }
}

impl RunnerOpts {
    /// Deterministic FNV-1a fold of every knob that affects the produced
    /// values — the Mixen engine shape, the supervision batch size, the
    /// divergence limit, [`RunnerOpts::fingerprint_extra`], and the lane
    /// count. Checkpoints carry this value so [`RobustRunner::resume_from`]
    /// rejects resumes under a configuration that would break the
    /// bit-identical-output contract.
    pub fn fingerprint(&self, lanes: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.mixen.block_side as u64);
        fold(self.mixen.ordering.policy_id());
        fold(u64::from(self.mixen.cache_step));
        fold(u64::from(self.mixen.load_balance));
        fold(self.mixen.balance_factor.to_bits());
        fold(self.mixen.min_tasks_per_thread as u64);
        fold(u64::from(self.mixen.gather_balance));
        fold(u64::from(self.mixen.skip_empty_blocks));
        // The bin encoding changes the streamed numerics, so a resume under
        // a different one must be rejected. kernel_width and
        // prefetch_distance are deliberately NOT folded: they are
        // bit-identical knobs (enforced by `scga::width_identity_check`),
        // so a checkpoint taken at one width may resume at another.
        fold(self.mixen.bin_encoding.encoding_id());
        fold(self.check_every as u64);
        fold(self.divergence_limit.to_bits());
        fold(self.fingerprint_extra);
        fold(lanes as u64);
        h
    }
}

/// Supervised execution wrapper around [`MixenEngine`]; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct RobustRunner {
    opts: RunnerOpts,
}

impl RobustRunner {
    pub fn new(opts: RunnerOpts) -> Self {
        Self { opts }
    }

    pub fn opts(&self) -> &RunnerOpts {
        &self.opts
    }

    /// Loads a binary graph, retrying transient I/O failures with
    /// exponential backoff. The report carries the retry trail.
    pub fn load_graph(&self, path: impl AsRef<Path>) -> Result<(Graph, RunReport), RunFailure> {
        let path = path.as_ref();
        self.load_graph_with(|| std::fs::File::open(path).map(std::io::BufReader::new))
    }

    /// [`RobustRunner::load_graph`] over an arbitrary reusable byte source:
    /// `open` is called once per attempt (so a fresh stream each retry).
    pub fn load_graph_with<R, F>(&self, mut open: F) -> Result<(Graph, RunReport), RunFailure>
    where
        R: Read,
        F: FnMut() -> std::io::Result<R>,
    {
        let mut report = RunReport::default();
        let mut delay = self.opts.retry_backoff;
        let mut attempt = 0u32;
        loop {
            let result = match open() {
                Ok(mut r) => mixen_graph::io::read_csr(&mut r),
                Err(e) => Err(GraphError::Io(e)),
            };
            match result {
                Ok(g) => return Ok((g, report)),
                Err(e) if e.is_transient() && attempt < self.opts.max_load_retries => {
                    attempt += 1;
                    report.load_retries = attempt;
                    report.metrics.add("load_retries", 1);
                    report.degradations.push(DegradationEvent::LoadRetry {
                        attempt,
                        error: e.to_string(),
                    });
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                Err(e) => return Err(RunFailure { error: e, report }),
            }
        }
    }

    /// Runs `iters` supervised synchronous iterations of
    /// `x'[v] = apply(v, Σ_{u→v} x[u])`; see [`MixenEngine::iterate`] for
    /// the closure contract. Values are health-checked every
    /// [`RunnerOpts::check_every`] iterations.
    pub fn run<V, FI, FA>(
        &self,
        g: &Graph,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> Result<(Vec<V>, RunReport), RunFailure>
    where
        V: PropValue + ValueCheck + CkptValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        self.run_with_report(g, RunReport::default(), init, apply, iters)
    }

    /// [`RobustRunner::run`] continuing a report (e.g. one produced by
    /// [`RobustRunner::load_graph`]), so retry events and iteration stats
    /// end up in a single trail.
    pub fn run_with_report<V, FI, FA>(
        &self,
        g: &Graph,
        report: RunReport,
        init: FI,
        apply: FA,
        iters: usize,
    ) -> Result<(Vec<V>, RunReport), RunFailure>
    where
        V: PropValue + ValueCheck + CkptValue,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        // The initial vector is materialized sequentially: it is O(n) scalar
        // work, and keeping it off the pool makes iteration 0 immune to
        // worker faults (it is state, not parallel computation). The engine
        // then re-reads these exact values through the prev closure, so the
        // result is bitwise identical to seeding the engine with `init`.
        let cur0: Vec<V> = (0..nid(g.n())).map(&init).collect();
        self.run_inner(g, report, cur0, 0, f64::INFINITY, apply, iters)
    }

    /// Loads and validates a `CKPT1` snapshot for a warm start: the magic,
    /// payload checksum, graph checksum, runner fingerprint (options + lane
    /// count), value width, and value count must all match the live run.
    /// Every mismatch is a typed error naming what went stale.
    pub fn resume_from<V>(&self, g: &Graph, path: &Path) -> Result<Resumed<V>, GraphError>
    where
        V: PropValue + CkptValue,
    {
        let ck = Checkpoint::load(path)?;
        let live_crc = graph_checksum(g);
        if ck.graph_checksum != live_crc {
            return Err(GraphError::Format(format!(
                "stale checkpoint: graph checksum {:#010x} does not match the loaded \
                 graph's {:#010x}",
                ck.graph_checksum, live_crc
            )));
        }
        let lanes = mixen_pool::current_num_threads();
        let fp = self.opts.fingerprint(lanes);
        if ck.fingerprint != fp {
            return Err(GraphError::Format(format!(
                "stale checkpoint: fingerprint {:#018x} does not match the current \
                 configuration's {:#018x} (runner options, algorithm parameters, or \
                 lane count changed since the snapshot)",
                ck.fingerprint, fp
            )));
        }
        let values: Vec<V> = ck.values()?;
        if values.len() != g.n() {
            return Err(GraphError::Format(format!(
                "checkpoint holds {} values for a graph of {} nodes",
                values.len(),
                g.n()
            )));
        }
        let iteration = usize::try_from(ck.iteration).map_err(|_| GraphError::Capacity {
            what: "checkpoint iteration",
            requested: ck.iteration,
            limit: usize::MAX as u64,
        })?;
        Ok(Resumed {
            values,
            iteration,
            residual: ck.residual,
        })
    }

    /// Continues a run from a [`Resumed`] warm start until `total_iters`
    /// iterations have been completed overall (checkpoint iterations
    /// included). At a fixed lane count the final values are bit-identical
    /// to an uninterrupted `total_iters`-iteration run whenever the batch
    /// composition is bitwise associative — true for PageRank-style kernels
    /// whose seed values are at their bitwise fixed point.
    pub fn run_resumed<V, FA>(
        &self,
        g: &Graph,
        resumed: Resumed<V>,
        apply: FA,
        total_iters: usize,
    ) -> Result<(Vec<V>, RunReport), RunFailure>
    where
        V: PropValue + ValueCheck + CkptValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let mut report = RunReport::default();
        report.metrics.add("resumes", 1);
        self.run_inner(
            g,
            report,
            resumed.values,
            resumed.iteration,
            resumed.residual,
            apply,
            total_iters,
        )
    }

    /// The shared supervised loop behind [`RobustRunner::run_with_report`]
    /// and [`RobustRunner::run_resumed`]: `cur0` already holds the values
    /// as of iteration `start_iter`.
    #[allow(clippy::too_many_arguments)]
    fn run_inner<V, FA>(
        &self,
        g: &Graph,
        mut report: RunReport,
        cur0: Vec<V>,
        start_iter: usize,
        start_residual: f64,
        apply: FA,
        iters: usize,
    ) -> Result<(Vec<V>, RunReport), RunFailure>
    where
        V: PropValue + ValueCheck + CkptValue,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        let base_lanes = mixen_pool::current_num_threads();
        report.threads = base_lanes;
        report.opts_fingerprint = self.opts.fingerprint(base_lanes);

        let inject_stall = self.opts.inject_stall;
        let apply = move |v: NodeId, s: V| {
            if let Some(d) = inject_stall {
                std::thread::sleep(d);
            }
            apply(v, s)
        };

        // Engine preprocessing runs parallel passes of its own, so a worker
        // panic here is caught like a batch panic: with fallback enabled it
        // degrades to the pull baseline instead of unwinding the caller.
        let built = match catch_unwind(AssertUnwindSafe(|| self.build_engine(g))) {
            Ok(result) => result,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if !self.opts.allow_fallback {
                    resume_unwind(payload);
                }
                report.degradations.push(DegradationEvent::WorkerPanic {
                    stage: "preprocess".into(),
                    message: message.clone(),
                });
                Err(GraphError::Invariant(format!(
                    "worker panic during preprocessing: {message}"
                )))
            }
        };
        let engine = match built {
            Ok(e) => Some(e),
            Err(err) if self.opts.allow_fallback => {
                report.degradations.push(DegradationEvent::EngineFallback {
                    reason: err.to_string(),
                });
                report.engine = EngineUsed::PullFallback;
                report.metrics.add("engine_fallbacks", 1);
                None
            }
            Err(error) => return Err(RunFailure { error, report }),
        };
        // Pool counters are process-global; remember the entry level so the
        // report carries only this run's task delta.
        let pool_tasks_at_entry = mixen_pool::stats().tasks_executed;
        let started = Instant::now();
        let watchdog = Watchdog::spawn(started, self.opts.deadline, self.opts.stall_budget);
        // Merge the engine's kernel counters into the report on every exit,
        // and stamp the executor's shape and work for this run.
        let finish = |report: &mut RunReport| {
            if let Some(e) = &engine {
                report.metrics.merge(&e.metrics().snapshot());
            }
            let pool = mixen_pool::stats();
            report.metrics.set("pool_workers", pool.threads as u64);
            report.metrics.set(
                "pool_tasks_executed",
                pool.tasks_executed.saturating_sub(pool_tasks_at_entry),
            );
            if let Some(w) = &watchdog {
                report.metrics.set("watchdog_wakeups", w.wakeups());
            }
        };

        let limit = self.opts.divergence_limit;
        let batch = self.opts.check_every.max(1);
        let ckpt_cfg = self
            .opts
            .checkpoint_path
            .as_deref()
            .map(|p| (p, graph_checksum(g)));
        let ckpt_every = self.opts.checkpoint_every.max(1);
        let mut ckpts_written = 0u32;
        let mut last_ckpt = start_iter;

        let mut cur = cur0;
        report.iterations = start_iter;
        report.residual = start_residual;
        if let Some(fault) = scan(&cur, limit) {
            finish(&mut report);
            return Err(RunFailure {
                error: numeric_error(start_iter, fault),
                report,
            });
        }

        let mut stage = Stage::Full;
        let mut stage_pool: Option<mixen_pool::ThreadPool> = None;
        let mut done = start_iter;
        while done < iters {
            // Deadline enforcement happens at batch boundaries: a durable,
            // clean stop beats tearing down a half-computed batch.
            if let Some(deadline) = self.opts.deadline {
                let elapsed = started.elapsed();
                if elapsed >= deadline || watchdog.as_ref().is_some_and(|w| w.deadline_hit()) {
                    report.metrics.set("deadline_exceeded", 1);
                    if let Some((path, crc)) = ckpt_cfg {
                        // Make the progress so far durable before stopping.
                        if let Err(error) = self.write_checkpoint(
                            path,
                            crc,
                            report.opts_fingerprint,
                            done,
                            report.residual,
                            &cur,
                            &mut report,
                            &mut ckpts_written,
                        ) {
                            finish(&mut report);
                            return Err(RunFailure { error, report });
                        }
                    }
                    finish(&mut report);
                    return Err(RunFailure {
                        error: GraphError::Deadline {
                            elapsed_ms: dur_ms(started.elapsed()),
                            budget_ms: dur_ms(deadline),
                        },
                        report,
                    });
                }
            }

            let step = batch.min(iters - done);
            if let Some(w) = &watchdog {
                w.beat();
            }
            let batch_start = Instant::now();
            // Ladder retry loop: a batch is a pure function of `cur`, so a
            // panicked attempt can be re-run at the next stage down without
            // corrupting state. The ladder is finite; when it is exhausted
            // the panic resumes unwinding (a closure that panics inline has
            // a genuine bug the supervisor must not swallow).
            let next: Vec<V> = loop {
                let eng = match (&engine, stage) {
                    (Some(e), s) if s != Stage::Pull => Some(e),
                    _ => None,
                };
                let outcome = match eng {
                    Some(e) => {
                        let prev = &cur;
                        run_caught(stage_pool.as_ref(), || {
                            let (vals, stats) =
                                e.iterate_with_stats(|v| prev[v as usize], &apply, step);
                            (vals, Some(stats))
                        })
                    }
                    None => run_caught(stage_pool.as_ref(), || {
                        (pull_iterate(g, &cur, &apply, step), None)
                    }),
                };
                match outcome {
                    Ok((vals, stats)) => {
                        if let Some(s) = stats {
                            report.absorb(s);
                        }
                        break vals;
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        report.degradations.push(DegradationEvent::WorkerPanic {
                            stage: stage.name().into(),
                            message: message.clone(),
                        });
                        if !self.degrade(
                            &mut stage,
                            &mut stage_pool,
                            base_lanes,
                            format!("worker panic: {message}"),
                            &mut report,
                        ) {
                            resume_unwind(payload);
                        }
                    }
                }
            };
            let batch_elapsed = batch_start.elapsed();
            if let Some(w) = &watchdog {
                w.beat();
            }
            // A stall degrades but never aborts: the batch did finish, so
            // the values are good — the run just is not keeping pace.
            let watchdog_stall = watchdog.as_ref().is_some_and(|w| w.take_stall());
            if let Some(budget) = self.opts.stall_budget {
                if watchdog_stall || batch_elapsed > budget {
                    report.degradations.push(DegradationEvent::Stall {
                        elapsed_ms: dur_ms(batch_elapsed),
                        budget_ms: dur_ms(budget),
                    });
                    self.degrade(
                        &mut stage,
                        &mut stage_pool,
                        base_lanes,
                        format!(
                            "batch of {step} iterations took {} ms against a stall budget \
                             of {} ms",
                            dur_ms(batch_elapsed),
                            dur_ms(budget)
                        ),
                        &mut report,
                    );
                }
            }

            if let Some(fault) = scan(&next, limit) {
                // The fault surfaced somewhere inside this batch; replay it
                // one iteration at a time from the pre-batch checkpoint so
                // the error names the first bad iteration, exactly as a
                // `check_every = 1` run would. The replay runs at the
                // current ladder stage so it reproduces the batch exactly.
                let eng = match (&engine, stage) {
                    (Some(e), s) if s != Stage::Pull => Some(e),
                    _ => None,
                };
                let (bad_iter, fault) = on_pool(stage_pool.as_ref(), || {
                    self.locate_fault(eng, g, &cur, &apply, step, done, fault, &mut report)
                });
                report.iterations = bad_iter;
                finish(&mut report);
                return Err(RunFailure {
                    error: numeric_error(bad_iter, fault),
                    report,
                });
            }
            done += step;
            report.iterations = done;
            report.residual = max_diff(&next, &cur);
            cur = next;

            if let Some((path, crc)) = ckpt_cfg {
                if done - last_ckpt >= ckpt_every || done == iters {
                    if let Err(error) = self.write_checkpoint(
                        path,
                        crc,
                        report.opts_fingerprint,
                        done,
                        report.residual,
                        &cur,
                        &mut report,
                        &mut ckpts_written,
                    ) {
                        finish(&mut report);
                        return Err(RunFailure { error, report });
                    }
                    last_ckpt = done;
                }
            }
        }
        finish(&mut report);
        Ok((cur, report))
    }

    /// Writes one atomic `CKPT1` snapshot and updates the durability
    /// counters; honors the crash-simulation hook.
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint<V: PropValue + CkptValue>(
        &self,
        path: &Path,
        graph_crc: u32,
        fingerprint: u64,
        done: usize,
        residual: f64,
        values: &[V],
        report: &mut RunReport,
        written: &mut u32,
    ) -> Result<(), GraphError> {
        let ck = Checkpoint::from_values(done as u64, residual, fingerprint, graph_crc, values);
        let bytes = ck.save_atomic(path)?;
        report.metrics.add("checkpoints_written", 1);
        report.metrics.add("checkpoint_bytes", bytes);
        *written += 1;
        if let Some(n) = self.opts.inject_exit_after_checkpoints {
            if *written >= n {
                // Crash simulation for the kill/resume recovery tests: die
                // as abruptly as a SIGKILL would, leaving only the durable
                // state behind.
                std::process::exit(86);
            }
        }
        Ok(())
    }

    /// Steps the degradation ladder down one stage, recording the event and
    /// installing the reduced-lane pool. Returns `false` when the ladder is
    /// already exhausted.
    fn degrade(
        &self,
        stage: &mut Stage,
        stage_pool: &mut Option<mixen_pool::ThreadPool>,
        base_lanes: usize,
        reason: String,
        report: &mut RunReport,
    ) -> bool {
        let Some(next) = stage.next() else {
            return false;
        };
        report.metrics.add("lane_degradations", 1);
        report.degradations.push(DegradationEvent::LaneDegraded {
            from_lanes: stage.lanes(base_lanes),
            to_lanes: next.lanes(base_lanes),
            reason,
        });
        if next == Stage::Pull {
            report.engine = EngineUsed::PullFallback;
            report.metrics.add("engine_fallbacks", 1);
        }
        *stage = next;
        *stage_pool = match next {
            Stage::Full => None,
            s => Some(mixen_pool::ThreadPool::new(s.lanes(base_lanes))),
        };
        true
    }

    /// Replays a faulty batch from its healthy checkpoint, one iteration at
    /// a time, to find the first iteration whose values fail the health
    /// check. The replay's phase stats are *not* absorbed (they are
    /// diagnostic re-execution, not algorithm progress); each single-step
    /// replay is counted under `fault_bisect_steps`. Both engines are
    /// deterministic, so the fault reproduces; if it somehow does not, the
    /// end-of-batch attribution is kept.
    #[allow(clippy::too_many_arguments)]
    fn locate_fault<V, FA>(
        &self,
        engine: Option<&MixenEngine>,
        g: &Graph,
        checkpoint: &[V],
        apply: &FA,
        step: usize,
        done: usize,
        batch_fault: (usize, NumericIssue),
        report: &mut RunReport,
    ) -> (usize, (usize, NumericIssue))
    where
        V: PropValue + ValueCheck,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        if step <= 1 {
            return (done + step, batch_fault);
        }
        let limit = self.opts.divergence_limit;
        let mut probe = checkpoint.to_vec();
        for k in 1..=step {
            let next = match engine {
                Some(e) => {
                    let p = &probe;
                    e.iterate::<V, _, _>(|v| p[v as usize], apply, 1)
                }
                None => pull_iterate(g, &probe, apply, 1),
            };
            report.metrics.add("fault_bisect_steps", 1);
            if let Some(fault) = scan(&next, limit) {
                return (done + k, fault);
            }
            probe = next;
        }
        (done + step, batch_fault)
    }

    fn build_engine(&self, g: &Graph) -> Result<MixenEngine, GraphError> {
        if let Some(reason) = &self.opts.inject_preprocess_fault {
            return Err(GraphError::Invariant(reason.clone()));
        }
        MixenEngine::try_new(g, self.opts.mixen)
    }
}

/// A validated warm start produced by [`RobustRunner::resume_from`]:
/// `values` holds the vector as of completed iteration `iteration`.
#[derive(Clone, Debug)]
pub struct Resumed<V> {
    /// The value vector at the snapshot, one entry per node.
    pub values: Vec<V>,
    /// Completed iterations at the snapshot.
    pub iteration: usize,
    /// The residual (`max_diff`) recorded at the snapshot.
    pub residual: f64,
}

/// The degradation ladder. Each stage is strictly cheaper and more isolated
/// than the one above it; `Pull` is the terminal stage (single-lane pull
/// baseline — no engine machinery left to shed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// All ambient lanes through the Mixen engine.
    Full,
    /// Half the lanes through the Mixen engine.
    Halved,
    /// One lane (inline execution — no pool workers) through the engine.
    Single,
    /// One lane through the pull baseline.
    Pull,
}

impl Stage {
    fn next(self) -> Option<Stage> {
        match self {
            Stage::Full => Some(Stage::Halved),
            Stage::Halved => Some(Stage::Single),
            Stage::Single => Some(Stage::Pull),
            Stage::Pull => None,
        }
    }

    fn lanes(self, base: usize) -> usize {
        match self {
            Stage::Full => base,
            Stage::Halved => (base / 2).max(1),
            Stage::Single | Stage::Pull => 1,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Stage::Full => "full_lanes",
            Stage::Halved => "halved_lanes",
            Stage::Single => "single_lane",
            Stage::Pull => "pull_baseline",
        }
    }
}

/// Shared state between the runner thread and its watchdog thread.
struct WatchdogShared {
    started: Instant,
    /// Runner progress beacon: elapsed ms at the last batch boundary.
    heartbeat_ms: AtomicU64,
    wakeups: AtomicU64,
    stalled: AtomicBool,
    deadline_hit: AtomicBool,
    done: AtomicBool,
}

impl WatchdogShared {
    /// One watchdog observation at wall-clock `now_ms`: compares elapsed
    /// time against the deadline and the heartbeat against the stall budget,
    /// raising the sticky flags the runner polls at batch boundaries.
    /// Factored out of the sampling thread so `model-check` tests can drive
    /// the handshake with synthetic timestamps (see [`mc::WatchdogProbe`]).
    fn observe(&self, now_ms: u64, deadline_ms: Option<u64>, stall_ms: Option<u64>) {
        // ordering: diagnostic tick counter, read only for reporting.
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = deadline_ms {
            if now_ms >= d {
                self.deadline_hit.store(true, Ordering::Release);
            }
        }
        if let Some(b) = stall_ms {
            let beat = self.heartbeat_ms.load(Ordering::Acquire);
            // Budgets below watchdog resolution round up to 1 ms.
            if now_ms.saturating_sub(beat) > b.max(1) {
                self.stalled.store(true, Ordering::Release);
            }
        }
    }

    /// Records runner progress as of `now_ms`; pairs with the Acquire
    /// heartbeat load in [`WatchdogShared::observe`].
    fn beat_at(&self, now_ms: u64) {
        self.heartbeat_ms.store(now_ms, Ordering::Release);
    }

    /// Consumes the sticky stall flag, so one stall degrades one stage.
    fn take_stall(&self) -> bool {
        self.stalled.swap(false, Ordering::AcqRel)
    }

    fn deadline_hit(&self) -> bool {
        self.deadline_hit.load(Ordering::Acquire)
    }
}

/// A sampling watchdog: a detached thread that wakes on a short tick,
/// compares wall-clock progress against the deadline and the heartbeat
/// against the stall budget, and raises sticky flags. The runner reads the
/// flags at batch boundaries — the watchdog never interrupts computation,
/// it only observes, so supervision granularity is one batch
/// (`check_every` iterations).
struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog when any budget is configured. Returns `None`
    /// when there is nothing to watch, or when the thread cannot be spawned
    /// (the runner's direct elapsed-time checks still enforce both budgets;
    /// only the asynchronous sampling is lost).
    fn spawn(
        started: Instant,
        deadline: Option<Duration>,
        stall: Option<Duration>,
    ) -> Option<Self> {
        if deadline.is_none() && stall.is_none() {
            return None;
        }
        // Tick at 1/8 of the tightest budget so a breach is observed well
        // within one budget period, clamped to [1, 25] ms to bound both
        // sampling error and idle wakeup load.
        let tightest = match (deadline, stall) {
            (Some(d), Some(s)) => d.min(s),
            (Some(d), None) => d,
            (None, Some(s)) => s,
            (None, None) => unreachable!("guarded above"),
        };
        let tick = (tightest / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
        let shared = Arc::new(WatchdogShared {
            started,
            heartbeat_ms: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            done: AtomicBool::new(false),
        });
        let s = Arc::clone(&shared);
        let deadline_ms = deadline.map(dur_ms);
        let stall_ms = stall.map(dur_ms);
        let handle = std::thread::Builder::new()
            .name("mixen-watchdog".into())
            .spawn(move || {
                while !s.done.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    s.observe(dur_ms(s.started.elapsed()), deadline_ms, stall_ms);
                }
            })
            .ok()?;
        Some(Watchdog {
            shared,
            handle: Some(handle),
        })
    }

    /// Records runner progress; called at batch boundaries.
    fn beat(&self) {
        self.shared.beat_at(dur_ms(self.shared.started.elapsed()));
    }

    fn wakeups(&self) -> u64 {
        // ordering: reporting-only snapshot of the tick counter.
        self.shared.wakeups.load(Ordering::Relaxed)
    }

    /// Consumes the sticky stall flag, so one stall degrades one stage.
    fn take_stall(&self) -> bool {
        self.shared.take_stall()
    }

    fn deadline_hit(&self) -> bool {
        self.shared.deadline_hit()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.done.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Model probes for the watchdog handshake, compiled only under
/// `model-check`.
#[cfg(feature = "model-check")]
pub mod mc {
    use super::WatchdogShared;
    use crate::msync::atomic::{AtomicBool, AtomicU64};
    use std::sync::Arc;
    use std::time::Instant;

    /// The watchdog's shared state with the clock abstracted away:
    /// `mixen-check` model tests drive [`WatchdogProbe::beat_at`] and
    /// [`WatchdogProbe::observe`] with synthetic timestamps from concurrent
    /// model threads (no sampling thread, no real clock) and assert when
    /// the sticky stall/deadline flags may and may not rise.
    #[derive(Clone)]
    pub struct WatchdogProbe {
        shared: Arc<WatchdogShared>,
    }

    impl WatchdogProbe {
        /// Fresh shared state: no heartbeat yet, no flags raised.
        pub fn new() -> Self {
            WatchdogProbe {
                shared: Arc::new(WatchdogShared {
                    // Never read by the probe paths; observations carry
                    // their own timestamps.
                    started: Instant::now(),
                    heartbeat_ms: AtomicU64::new(0),
                    wakeups: AtomicU64::new(0),
                    stalled: AtomicBool::new(false),
                    deadline_hit: AtomicBool::new(false),
                    done: AtomicBool::new(false),
                }),
            }
        }

        /// The runner side of the handshake: a progress beat at `now_ms`.
        pub fn beat_at(&self, now_ms: u64) {
            self.shared.beat_at(now_ms);
        }

        /// The watchdog side: one observation at `now_ms` against the given
        /// budgets (both in ms).
        pub fn observe(&self, now_ms: u64, deadline_ms: Option<u64>, stall_ms: Option<u64>) {
            self.shared.observe(now_ms, deadline_ms, stall_ms);
        }

        /// Consumes the sticky stall flag, as the runner does at batch
        /// boundaries.
        pub fn take_stall(&self) -> bool {
            self.shared.take_stall()
        }

        /// Reads the sticky deadline flag.
        pub fn deadline_hit(&self) -> bool {
            self.shared.deadline_hit()
        }
    }

    impl Default for WatchdogProbe {
        fn default() -> Self {
            Self::new()
        }
    }
}

fn dur_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` under the stage's lane override, or on the ambient pool when the
/// stage is `Full`.
fn on_pool<R>(pool: Option<&mixen_pool::ThreadPool>, f: impl FnOnce() -> R) -> R {
    match pool {
        Some(p) => p.install(f),
        None => f(),
    }
}

/// [`on_pool`] with a panic boundary, so a worker panic surfaces as an
/// `Err` the degradation ladder can act on instead of unwinding the runner.
fn run_caught<R>(
    pool: Option<&mixen_pool::ThreadPool>,
    f: impl FnOnce() -> R,
) -> std::thread::Result<R> {
    catch_unwind(AssertUnwindSafe(|| on_pool(pool, f)))
}

/// `step` synchronous pull iterations over the in-CSC — the degradation
/// target: same semantics as the Mixen engine, none of its machinery.
fn pull_iterate<V, FA>(g: &Graph, x0: &[V], apply: &FA, step: usize) -> Vec<V>
where
    V: PropValue,
    FA: Fn(NodeId, V) -> V + Sync,
{
    let mut x = x0.to_vec();
    for _ in 0..step {
        x = (0..nid(g.n()))
            .into_par_iter()
            .map(|v| {
                let mut sum = V::identity();
                for &u in g.in_csc().neighbors(v) {
                    sum.combine(x[u as usize]);
                }
                apply(v, sum)
            })
            .collect();
    }
    x
}

fn scan<V: ValueCheck>(vals: &[V], limit: f64) -> Option<(usize, NumericIssue)> {
    vals.iter()
        .enumerate()
        .find_map(|(i, v)| v.issue(limit).map(|iss| (i, iss)))
}

fn numeric_error(iteration: usize, (node, issue): (usize, NumericIssue)) -> GraphError {
    GraphError::Numeric {
        iteration,
        msg: format!("node {node}: {issue}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_graph() -> Graph {
        Graph::from_pairs(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (1, 0),
                (3, 0),
                (3, 5),
                (4, 1),
                (4, 2),
                (0, 5),
                (2, 6),
            ],
        )
    }

    fn small_runner() -> RobustRunner {
        RobustRunner::new(RunnerOpts {
            mixen: MixenOpts {
                block_side: 2,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            ..RunnerOpts::default()
        })
    }

    #[test]
    fn supervised_matches_unsupervised() {
        let g = mixed_graph();
        let runner = small_runner();
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let engine = MixenEngine::new(&g, runner.opts().mixen);
        for iters in 0..6 {
            let (got, report) = runner.run(&g, init, apply, iters).unwrap();
            let want = engine.iterate::<f32, _, _>(init, apply, iters);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-5, "iters={iters}: {got:?} vs {want:?}");
            }
            assert_eq!(report.iterations, iters);
            assert_eq!(report.engine, EngineUsed::Mixen);
            assert!(report.degradations.is_empty());
        }
    }

    #[test]
    fn batched_checks_do_not_change_results() {
        let g = mixed_graph();
        let apply = |_: NodeId, sum: f32| 0.5 * sum + 0.3;
        let init = |_: NodeId| 0.3f32;
        let every_iter = small_runner();
        let mut batched_opts = every_iter.opts().clone();
        batched_opts.check_every = 3;
        let batched = RobustRunner::new(batched_opts);
        let (a, _) = every_iter.run(&g, init, apply, 7).unwrap();
        let (b, _) = batched.run(&g, init, apply, 7).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    fn runner_with_check_every(check_every: usize) -> RobustRunner {
        let mut opts = small_runner().opts().clone();
        opts.check_every = check_every;
        RobustRunner::new(opts)
    }

    /// Regression (residual init): the doc promises `∞` until two
    /// checkpoints exist, so a 0-iteration run must not report 0.0.
    #[test]
    fn zero_iteration_run_reports_infinite_residual() {
        let g = mixed_graph();
        let runner = small_runner();
        let (vals, report) = runner.run::<f32, _, _>(&g, |_| 1.0, |_, s| s, 0).unwrap();
        assert_eq!(vals.len(), g.n());
        assert_eq!(report.iterations, 0);
        assert!(report.residual.is_infinite());
        // A run with iterations does produce a finite residual.
        let (_, report) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 2)
            .unwrap();
        assert!(report.residual.is_finite());
    }

    /// Satellite 4: identical values, re-entry accounting, and phase-stat
    /// consistency across `check_every ∈ {1, 3, 7}`.
    #[test]
    fn check_every_variants_agree_and_account_reentries() {
        let g = mixed_graph();
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let iters = 7usize;
        let mut baseline: Option<Vec<f32>> = None;
        for ce in [1usize, 3, 7] {
            let runner = runner_with_check_every(ce);
            let (vals, report) = runner.run(&g, init, apply, iters).unwrap();
            if let Some(base) = &baseline {
                for (a, b) in vals.iter().zip(base) {
                    assert!((a - b).abs() < 1e-5, "check_every={ce}");
                }
            } else {
                baseline = Some(vals);
            }
            let batches = iters.div_ceil(ce);
            assert_eq!(report.batch_reentries, batches - 1, "check_every={ce}");
            assert_eq!(
                report.metrics.get("batch_reentries"),
                (batches - 1) as u64,
                "check_every={ce}"
            );
            // Each engine entry recomputes the static bin exactly once.
            assert_eq!(
                report.metrics.get("static_bin_recomputes"),
                batches as u64,
                "check_every={ce}"
            );
            // The normalized breakdown covers exactly `iters` Main-Phase
            // iterations and books one pre + one post, with re-entry
            // overhead split out rather than inflating the phases.
            assert_eq!(report.phase_stats.iterations, iters, "check_every={ce}");
            assert!(report.phase_stats.pre_seconds >= 0.0);
            assert!(report.phase_stats.post_seconds >= 0.0);
            if batches == 1 {
                assert_eq!(report.reentry_pre_seconds, 0.0);
                assert_eq!(report.reentry_post_seconds, 0.0);
            }
            assert!((0.0..=1.0).contains(&report.phase_stats.out_of_main_fraction()));
        }
    }

    /// Satellite 4 (fault attribution): a deterministic divergence must be
    /// pinned to the same first-bad iteration whatever the batch size.
    #[test]
    fn fault_iteration_is_identical_across_check_every() {
        let g = mixed_graph();
        // Values grow ~10x per iteration; with limit 1e3 the first bad
        // iteration is fixed by the dynamics alone.
        let apply = |_: NodeId, s: f32| 10.0 * s + 100.0;
        let init = |_: NodeId| 100.0f32;
        let mut expected: Option<usize> = None;
        for ce in [1usize, 3, 7] {
            let mut opts = runner_with_check_every(ce).opts().clone();
            opts.divergence_limit = 1e3;
            let runner = RobustRunner::new(opts);
            let failure = runner.run::<f32, _, _>(&g, init, apply, 50).unwrap_err();
            let iteration = match failure.error {
                GraphError::Numeric { iteration, .. } => iteration,
                ref other => panic!("expected Numeric, got {other}"),
            };
            assert_eq!(failure.report.iterations, iteration, "check_every={ce}");
            match expected {
                None => expected = Some(iteration),
                Some(want) => assert_eq!(iteration, want, "check_every={ce}"),
            }
            if ce == 1 {
                assert_eq!(failure.report.metrics.get("fault_bisect_steps"), 0);
            } else {
                // The batched runs had to replay to locate the iteration.
                assert_eq!(
                    failure.report.metrics.get("fault_bisect_steps"),
                    iteration as u64 - (iteration - 1) as u64 / ce as u64 * ce as u64,
                    "check_every={ce}"
                );
            }
        }
        // With limit 1e3 and ~10x growth from 100, iteration 1 already
        // overflows the limit on the cyclic core.
        assert_eq!(expected, Some(1));
    }

    /// Satellite 4 (counter exactness): every Main-Phase iteration streams
    /// exactly the regular subgraph's edges.
    #[test]
    fn edges_scattered_matches_regular_nnz_per_iteration() {
        let g = mixed_graph();
        let runner = small_runner();
        let reg_nnz = MixenEngine::new(&g, runner.opts().mixen)
            .filtered()
            .reg_csr()
            .nnz() as u64;
        assert!(reg_nnz > 0);
        for iters in [1usize, 3, 5] {
            let (_, report) = runner
                .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, iters)
                .unwrap();
            assert_eq!(
                report.metrics.get("edges_scattered"),
                iters as u64 * reg_nnz,
                "iters={iters}"
            );
            assert_eq!(
                report.metrics.get("edges_gathered"),
                iters as u64 * reg_nnz,
                "iters={iters}"
            );
        }
    }

    /// The report JSON carries the full schema and survives a round-trip
    /// through the validating parser.
    #[test]
    fn run_report_json_round_trips() {
        let g = mixed_graph();
        let runner = runner_with_check_every(3);
        let (_, report) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 7)
            .unwrap();
        let json = report.to_json();
        let parsed = Json::parse(&json.render_pretty()).unwrap();
        assert_eq!(parsed, json);
        assert_eq!(parsed.get("engine").unwrap().as_str(), Some("mixen"));
        assert_eq!(parsed.get("iterations").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("batch_reentries").unwrap().as_u64(), Some(2));
        let phases = parsed.get("phases").unwrap();
        assert_eq!(phases.get("iterations").unwrap().as_u64(), Some(7));
        let counters = parsed.get("counters").unwrap();
        assert!(counters.get("edges_scattered").unwrap().as_u64().unwrap() > 0);
        // A fresh report's residual serializes as the string "inf".
        let fresh = RunReport::default().to_json();
        assert_eq!(fresh.get("residual").unwrap().as_f64(), Some(f64::INFINITY));
    }

    /// Runner degradation events surface in the counter snapshot too.
    #[test]
    fn degradations_are_counted_in_metrics() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.inject_preprocess_fault = Some("synthetic invariant failure".into());
        let degraded = RobustRunner::new(opts);
        let (_, report) = degraded
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 2)
            .unwrap();
        assert_eq!(report.metrics.get("engine_fallbacks"), 1);
        // The pull baseline has no kernel counters.
        assert_eq!(report.metrics.get("edges_scattered"), 0);

        let mut bytes = Vec::new();
        mixen_graph::io::write_csr(&g, &mut bytes).unwrap();
        let mut attempts = 0;
        let (_, report) = small_runner()
            .load_graph_with(|| {
                attempts += 1;
                if attempts <= 2 {
                    Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "flaky"))
                } else {
                    Ok(bytes.as_slice())
                }
            })
            .unwrap();
        assert_eq!(report.metrics.get("load_retries"), 2);
    }

    #[test]
    fn nan_poisoned_apply_is_caught_with_report() {
        let g = mixed_graph();
        let runner = small_runner();
        let failure = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, _| f32::NAN, 5)
            .unwrap_err();
        assert!(matches!(
            failure.error,
            GraphError::Numeric { iteration: 1, .. }
        ));
        assert_eq!(failure.report.iterations, 1);
        assert_eq!(failure.report.engine, EngineUsed::Mixen);
    }

    #[test]
    fn poisoned_init_is_caught_at_iteration_zero() {
        let g = mixed_graph();
        let runner = small_runner();
        let failure = runner
            .run::<f32, _, _>(
                &g,
                |v| if v == 3 { f32::INFINITY } else { 1.0 },
                |_, s| s,
                5,
            )
            .unwrap_err();
        assert!(matches!(
            failure.error,
            GraphError::Numeric { iteration: 0, .. }
        ));
        assert_eq!(failure.report.iterations, 0);
    }

    #[test]
    fn divergence_is_caught() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.divergence_limit = 1e3;
        let runner = RobustRunner::new(opts);
        // Doubling per iteration on a cyclic graph blows past 1e3.
        let failure = runner
            .run::<f32, _, _>(&g, |_| 100.0, |_, s| 10.0 * s + 100.0, 50)
            .unwrap_err();
        match failure.error {
            GraphError::Numeric { iteration, ref msg } => {
                assert!(iteration >= 1);
                assert!(msg.contains("magnitude"), "{msg}");
            }
            ref other => panic!("expected Numeric, got {other}"),
        }
    }

    #[test]
    fn fallback_to_pull_matches_mixen_results() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.inject_preprocess_fault = Some("synthetic invariant failure".into());
        let degraded = RobustRunner::new(opts);
        let healthy = small_runner();
        let apply = |v: NodeId, sum: f32| 0.5 * sum + 0.1 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let (a, ra) = degraded.run(&g, init, apply, 4).unwrap();
        let (b, rb) = healthy.run(&g, init, apply, 4).unwrap();
        assert_eq!(ra.engine, EngineUsed::PullFallback);
        assert_eq!(rb.engine, EngineUsed::Mixen);
        assert!(matches!(
            ra.degradations.as_slice(),
            [DegradationEvent::EngineFallback { .. }]
        ));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fallback_disabled_surfaces_the_error() {
        let g = mixed_graph();
        let mut opts = small_runner().opts().clone();
        opts.inject_preprocess_fault = Some("synthetic invariant failure".into());
        opts.allow_fallback = false;
        let runner = RobustRunner::new(opts);
        let failure = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| s, 2)
            .unwrap_err();
        assert!(matches!(failure.error, GraphError::Invariant(_)));
    }

    #[test]
    fn invalid_opts_are_rejected_by_try_new() {
        let g = mixed_graph();
        let err = MixenEngine::try_new(
            &g,
            MixenOpts {
                block_side: 0,
                ..MixenOpts::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Invariant(_)));
        assert!(MixenEngine::try_new(&g, MixenOpts::default()).is_ok());
    }

    #[test]
    fn load_retries_transient_errors_then_succeeds() {
        let g = mixed_graph();
        let mut bytes = Vec::new();
        mixen_graph::io::write_csr(&g, &mut bytes).unwrap();
        let mut attempts = 0;
        let runner = small_runner();
        let (loaded, report) = runner
            .load_graph_with(|| {
                attempts += 1;
                if attempts <= 2 {
                    Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "flaky"))
                } else {
                    Ok(bytes.as_slice())
                }
            })
            .unwrap();
        assert_eq!(loaded.n(), g.n());
        assert_eq!(report.load_retries, 2);
        assert_eq!(report.degradations.len(), 2);
    }

    #[test]
    fn load_gives_up_on_persistent_errors() {
        let runner = small_runner();
        let failure = runner
            .load_graph_with(|| -> std::io::Result<&[u8]> {
                Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "flaky"))
            })
            .unwrap_err();
        assert!(matches!(failure.error, GraphError::Io(_)));
        assert_eq!(failure.report.load_retries, runner.opts().max_load_retries);
    }

    #[test]
    fn load_does_not_retry_corruption() {
        let g = mixed_graph();
        let mut bytes = Vec::new();
        mixen_graph::io::write_csr(&g, &mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let runner = small_runner();
        let failure = runner.load_graph_with(|| Ok(bytes.as_slice())).unwrap_err();
        assert_eq!(failure.report.load_retries, 0);
        assert!(matches!(
            failure.error,
            GraphError::Checksum { .. } | GraphError::Invariant(_)
        ));
    }

    #[test]
    fn missing_file_fails_without_retry() {
        let runner = small_runner();
        let failure = runner.load_graph("/no/such/file.mxg").unwrap_err();
        assert!(matches!(failure.error, GraphError::Io(_)));
        assert_eq!(failure.report.load_retries, 0);
    }

    fn ckpt_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mixen_runner_ckpt").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The fingerprint must react to every knob that changes numeric
    /// behavior — including the lane count, which changes batch scheduling.
    #[test]
    fn fingerprint_is_sensitive_to_options_and_lanes() {
        let base = small_runner().opts().clone();
        let fp = base.fingerprint(4);
        assert_ne!(fp, base.fingerprint(2), "lane count must be fingerprinted");
        let mut o = base.clone();
        o.check_every = base.check_every + 1;
        assert_ne!(fp, o.fingerprint(4));
        let mut o = base.clone();
        o.divergence_limit = base.divergence_limit * 2.0;
        assert_ne!(fp, o.fingerprint(4));
        let mut o = base.clone();
        o.fingerprint_extra = 0xdead_beef;
        assert_ne!(fp, o.fingerprint(4));
        let mut o = base.clone();
        o.mixen.block_side += 1;
        assert_ne!(fp, o.fingerprint(4));
        // The bin encoding changes the streamed numerics.
        let mut o = base.clone();
        o.mixen.bin_encoding = crate::opts::BinEncoding::Q16;
        assert_ne!(fp, o.fingerprint(4));
        // Bit-identical knobs must NOT change the fingerprint: any kernel
        // width or prefetch distance reproduces the same values, so a
        // checkpoint may resume under a different tuning.
        let mut o = base.clone();
        o.mixen.kernel_width = if base.mixen.kernel_width == 8 { 1 } else { 8 };
        o.mixen.prefetch_distance = base.mixen.prefetch_distance + 7;
        assert_eq!(fp, o.fingerprint(4));
        // Durability plumbing must NOT change the fingerprint: a run with
        // checkpointing on resumes one without, and vice versa.
        let mut o = base.clone();
        o.checkpoint_path = Some(PathBuf::from("/tmp/x.ckpt"));
        o.checkpoint_every = 7;
        o.deadline = Some(Duration::from_secs(1));
        o.stall_budget = Some(Duration::from_secs(1));
        assert_eq!(fp, o.fingerprint(4));
    }

    /// Checkpoint cadence: `checkpoint_every = 2` over 5 iterations writes
    /// at 2, 4, and 5 (final), and the counters record it.
    #[test]
    fn checkpoints_are_written_on_cadence() {
        let g = mixed_graph();
        let dir = ckpt_dir("cadence");
        let path = dir.join("run.ckpt");
        let mut opts = small_runner().opts().clone();
        opts.check_every = 1;
        opts.checkpoint_path = Some(path.clone());
        opts.checkpoint_every = 2;
        let runner = RobustRunner::new(opts);
        let (vals, report) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s + 0.1, 5)
            .unwrap();
        assert_eq!(report.metrics.get("checkpoints_written"), 3);
        assert!(report.metrics.get("checkpoint_bytes") > 0);
        assert_eq!(report.metrics.get("resumes"), 0);
        // The surviving snapshot is the final state.
        let resumed: Resumed<f32> = runner.resume_from(&g, &path).unwrap();
        assert_eq!(resumed.iteration, 5);
        assert_eq!(resumed.values, vals);
        assert_eq!(resumed.residual.to_bits(), report.residual.to_bits());
        assert!(!mixen_graph::ckpt::tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    /// The durability contract: interrupt a run at iteration 4, resume, and
    /// the final values are bit-identical to the uninterrupted run at the
    /// same lane count.
    #[test]
    fn resumed_run_is_bit_identical_to_uninterrupted() {
        let g = mixed_graph();
        let dir = ckpt_dir("resume");
        let path = dir.join("run.ckpt");
        let apply = |v: NodeId, s: f32| 0.85 * s + 0.01 * (v as f32 + 1.0);
        let init = |v: NodeId| 0.1 * (v as f32 + 1.0);
        let total = 9usize;

        let plain = small_runner();
        let (want, _) = plain.run(&g, init, apply, total).unwrap();

        // "Interrupted" run: stop after 4 iterations, leaving a snapshot.
        let mut opts = plain.opts().clone();
        opts.checkpoint_path = Some(path.clone());
        opts.checkpoint_every = 2;
        let ckpt_runner = RobustRunner::new(opts);
        let (_, report) = ckpt_runner.run(&g, init, apply, 4).unwrap();
        assert!(report.metrics.get("checkpoints_written") >= 2);

        let resumed: Resumed<f32> = ckpt_runner.resume_from(&g, &path).unwrap();
        assert_eq!(resumed.iteration, 4);
        let (got, report) = ckpt_runner.run_resumed(&g, resumed, apply, total).unwrap();
        assert_eq!(report.iterations, total);
        assert_eq!(report.metrics.get("resumes"), 1);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "node {i}: {a} vs {b}");
        }
        std::fs::remove_file(&path).ok();
    }

    /// Resuming at-or-past the target iteration count is a no-op returning
    /// the snapshot values unchanged.
    #[test]
    fn resume_past_target_returns_snapshot_values() {
        let g = mixed_graph();
        let dir = ckpt_dir("noop");
        let path = dir.join("run.ckpt");
        let mut opts = small_runner().opts().clone();
        opts.checkpoint_path = Some(path.clone());
        let runner = RobustRunner::new(opts);
        let (want, _) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s + 0.1, 6)
            .unwrap();
        let resumed: Resumed<f32> = runner.resume_from(&g, &path).unwrap();
        let (got, report) = runner
            .run_resumed(&g, resumed, |_, s: f32| 0.5 * s + 0.1, 6)
            .unwrap();
        assert_eq!(report.iterations, 6);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    /// Staleness rejection: a snapshot must not warm-start a different
    /// graph or a differently-configured runner.
    #[test]
    fn stale_checkpoints_are_rejected() {
        let g = mixed_graph();
        let dir = ckpt_dir("stale");
        let path = dir.join("run.ckpt");
        let mut opts = small_runner().opts().clone();
        opts.checkpoint_path = Some(path.clone());
        let runner = RobustRunner::new(opts.clone());
        runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 3)
            .unwrap();

        // Different graph → graph-checksum mismatch.
        let other = Graph::from_pairs(8, &[(0, 1), (1, 2), (2, 3)]);
        let err = runner.resume_from::<f32>(&other, &path).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
        assert!(err.to_string().contains("graph checksum"), "{err}");

        // Different options → fingerprint mismatch.
        let mut changed = opts.clone();
        changed.fingerprint_extra = 1;
        let err = RobustRunner::new(changed)
            .resume_from::<f32>(&g, &path)
            .unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");

        // Different value type → width mismatch from the decoder.
        let err = runner.resume_from::<f64>(&g, &path).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// A zero deadline trips before the first batch: typed error, durable
    /// final checkpoint, `deadline_exceeded` stamped.
    #[test]
    fn zero_deadline_fails_typed_and_checkpoints() {
        let g = mixed_graph();
        let dir = ckpt_dir("deadline");
        let path = dir.join("run.ckpt");
        let mut opts = small_runner().opts().clone();
        opts.deadline = Some(Duration::ZERO);
        opts.checkpoint_path = Some(path.clone());
        let runner = RobustRunner::new(opts);
        let failure = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 10)
            .unwrap_err();
        assert!(
            matches!(failure.error, GraphError::Deadline { .. }),
            "{}",
            failure.error
        );
        assert_eq!(failure.report.metrics.get("deadline_exceeded"), 1);
        assert_eq!(failure.report.iterations, 0);
        // The pre-stop snapshot exists and resumes at iteration 0.
        let resumed: Resumed<f32> = runner.resume_from(&g, &path).unwrap();
        assert_eq!(resumed.iteration, 0);
        std::fs::remove_file(&path).ok();
    }

    /// Provenance stamping: threads, fingerprint, and crate version ride in
    /// the report and its JSON.
    #[test]
    fn report_carries_provenance() {
        let g = mixed_graph();
        let runner = small_runner();
        let (_, report) = runner
            .run::<f32, _, _>(&g, |_| 1.0, |_, s| 0.5 * s, 2)
            .unwrap();
        assert_eq!(report.threads, mixen_pool::current_num_threads());
        assert_eq!(
            report.opts_fingerprint,
            runner.opts().fingerprint(report.threads)
        );
        let json = report.to_json();
        let prov = json.get("provenance").expect("provenance object");
        assert_eq!(
            prov.get("crate_version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(
            prov.get("threads").unwrap().as_u64(),
            Some(report.threads as u64)
        );
        assert_eq!(
            prov.get("opts_fingerprint").unwrap().as_str(),
            Some(format!("{:#018x}", report.opts_fingerprint).as_str())
        );
    }
}
