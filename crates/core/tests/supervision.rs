//! Integration tests for the supervised-execution ladder: stall-driven lane
//! degradation and (feature-gated) injected worker panics.
//!
//! These tests drive the real `RobustRunner` loop end to end on a pinned
//! 4-lane pool, so they exercise the watchdog thread, the batch-boundary
//! stall accounting, and the stage-pool handoff exactly as production does.
//! The pool's fault-injection hooks are process-global, so every test in
//! this file takes a shared lock.
//
// RunFailure carries the full RunReport by design (the degradation trail
// must survive the error path), so the closure's Err variant is large.
#![allow(clippy::result_large_err)]

use std::sync::Mutex;
use std::time::Duration;

use mixen_core::{DegradationEvent, EngineUsed, RobustRunner, RunnerOpts};
use mixen_graph::gen::{rmat, RmatParams};
use mixen_graph::NodeId;

static SERIAL: Mutex<()> = Mutex::new(());

fn skewed_graph() -> mixen_graph::Graph {
    rmat(8, 8, RmatParams::default(), 42)
}

fn count_kind(events: &[DegradationEvent], want: &str) -> usize {
    events
        .iter()
        .filter(|e| {
            matches!(
                (e, want),
                (DegradationEvent::Stall { .. }, "stall")
                    | (DegradationEvent::LaneDegraded { .. }, "lane_degraded")
                    | (DegradationEvent::WorkerPanic { .. }, "worker_panic")
            )
        })
        .count()
}

/// A per-apply sleep makes every batch blow a 1 ms stall budget, so the run
/// must walk the whole ladder — Full → Halved → Single → Pull — and still
/// complete with correct supervision bookkeeping. Stalls degrade but never
/// abort: the terminal Pull stage keeps stalling and keeps running.
#[test]
fn stall_budget_walks_the_full_ladder_and_completes() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let g = skewed_graph();
    let opts = RunnerOpts {
        check_every: 1,
        stall_budget: Some(Duration::from_millis(1)),
        // Every apply call sleeps 40 µs; with ~n applies per iteration the
        // batch time is far past the budget at every stage.
        inject_stall: Some(Duration::from_micros(40)),
        ..RunnerOpts::default()
    };
    let runner = RobustRunner::new(opts);
    let (vals, report) = mixen_pool::with_threads(4, || {
        runner.run::<f32, _, _>(&g, |_| 1.0, |_: NodeId, s| 0.5 * s + 0.1, 6)
    })
    .unwrap();
    assert_eq!(vals.len(), g.n());
    assert_eq!(report.iterations, 6);
    assert_eq!(report.threads, 4);
    // The ladder has exactly three rungs below Full; each stall past the
    // last rung is recorded but degrades nothing further.
    assert_eq!(report.metrics.get("lane_degradations"), 3);
    assert_eq!(count_kind(&report.degradations, "lane_degraded"), 3);
    assert!(count_kind(&report.degradations, "stall") >= 3);
    assert_eq!(report.engine, EngineUsed::PullFallback);
    assert!(report.metrics.get("engine_fallbacks") >= 1);
    // The watchdog was alive and sampling.
    assert!(report.metrics.get("watchdog_wakeups") > 0);
    // Lane walk: 4 → 2 → 1 → 1.
    let lanes: Vec<(usize, usize)> = report
        .degradations
        .iter()
        .filter_map(|e| match e {
            DegradationEvent::LaneDegraded {
                from_lanes,
                to_lanes,
                ..
            } => Some((*from_lanes, *to_lanes)),
            _ => None,
        })
        .collect();
    assert_eq!(lanes, vec![(4, 2), (2, 1), (1, 1)]);
}

/// A healthy run under the same pool shape records no ladder activity.
#[test]
fn healthy_run_reports_no_degradations() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let g = skewed_graph();
    let opts = RunnerOpts {
        check_every: 2,
        stall_budget: Some(Duration::from_secs(30)),
        deadline: Some(Duration::from_secs(120)),
        ..RunnerOpts::default()
    };
    let runner = RobustRunner::new(opts);
    let (_, report) = mixen_pool::with_threads(4, || {
        runner.run::<f32, _, _>(&g, |_| 1.0, |_: NodeId, s| 0.5 * s + 0.1, 6)
    })
    .unwrap();
    assert_eq!(report.iterations, 6);
    assert!(report.degradations.is_empty());
    assert_eq!(report.metrics.get("lane_degradations"), 0);
    assert_eq!(report.metrics.get("deadline_exceeded"), 0);
    assert_eq!(report.engine, EngineUsed::Mixen);
}

/// With every pooled task armed to panic, nothing multi-lane can survive:
/// engine preprocessing panics (caught → pull fallback), then the Full and
/// Halved pull stages panic, and the ladder lands on single-lane inline
/// execution — which runs no pooled tasks and therefore escapes injection
/// entirely. The run still completes, and its values match a clean 1-lane
/// pull run bit-for-bit.
#[cfg(feature = "fault-injection")]
#[test]
fn injected_worker_panics_degrade_to_single_lane() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let g = skewed_graph();
    mixen_pool::inject::arm_worker_panics(u64::MAX);
    let opts = RunnerOpts {
        check_every: 1,
        ..RunnerOpts::default()
    };
    let runner = RobustRunner::new(opts);
    let result = mixen_pool::with_threads(4, || {
        runner.run::<f32, _, _>(&g, |_| 1.0, |_: NodeId, s| 0.5 * s + 0.1, 4)
    });
    mixen_pool::inject::clear();
    let (vals, report) = result.unwrap();
    assert_eq!(vals.len(), g.n());
    assert_eq!(report.iterations, 4);
    // Preprocess + Full + Halved all panicked; Single (inline) succeeded,
    // so the ladder stopped two rungs down and never needed its last rung.
    assert!(count_kind(&report.degradations, "worker_panic") >= 3);
    assert_eq!(report.metrics.get("lane_degradations"), 2);
    assert_eq!(report.engine, EngineUsed::PullFallback);
    assert!(report.metrics.get("engine_fallbacks") >= 1);

    // Reference: a clean single-lane run forced onto the pull baseline
    // (determinism is per lane count — see tests/parallel_determinism.rs).
    let reference = mixen_pool::with_threads(1, || {
        RobustRunner::new(RunnerOpts {
            check_every: 1,
            inject_preprocess_fault: Some("force pull baseline".into()),
            ..RunnerOpts::default()
        })
        .run::<f32, _, _>(&g, |_| 1.0, |_: NodeId, s| 0.5 * s + 0.1, 4)
    })
    .unwrap()
    .0;
    for (a, b) in vals.iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits(), "degraded run must stay exact");
    }
}
