//! Cross-policy contracts for the composable reordering passes:
//!
//! 1. every [`RegularOrdering`] produces a bijective relabel permutation
//!    with the hub prefix contiguous (for the hub-preserving policies),
//! 2. iteration results in *original* ID space are independent of the
//!    relabel (within float tolerance — the permutation changes summation
//!    order), and the top-ranked set is identical,
//! 3. each policy is bit-for-bit deterministic at a fixed lane count,
//! 4. the auto-selected policy is visible in the observability counters.

use mixen_core::{MixenEngine, MixenOpts, PerfModel, RegularOrdering};
use mixen_graph::{nid, Classification, Dataset, Graph, Scale};

fn engine_with(g: &Graph, ordering: RegularOrdering) -> MixenEngine {
    MixenEngine::new(
        g,
        MixenOpts {
            ordering,
            ..MixenOpts::default()
        },
    )
}

/// A damped PageRank-shaped recurrence, run entirely through the engine so
/// the whole Pre/Main/Post pipeline participates.
fn ranks(e: &MixenEngine, g: &Graph, iters: usize) -> Vec<f32> {
    let n = g.n().max(1) as f32;
    // Out-degree-normalized contributions keep the recurrence contractive,
    // so a small absolute tolerance is meaningful.
    let scale = |v: u32| g.out_degree(v).max(1) as f32;
    e.iterate::<f32, _, _>(
        |v| (1.0 / n) / scale(v),
        |v, sum| (0.15 / n + 0.85 * sum) / scale(v),
        iters,
    )
}

/// The indices of the `k` largest scores (ties broken by node ID), for the
/// rank-set comparison.
fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    ids.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    ids.truncate(k);
    ids
}

#[test]
fn every_policy_emits_a_valid_permutation() {
    let g = Dataset::Rmat.generate(Scale::Tiny, 17);
    let class = Classification::of(&g);
    for ordering in RegularOrdering::ALL {
        let e = engine_with(&g, ordering);
        let f = e.filtered();
        // Bijective: the permutation covers every node exactly once.
        let mut seen = vec![false; g.n()];
        for u in 0..nid(g.n()) {
            let new = f.to_new(u) as usize;
            assert!(
                !seen[new],
                "{}: new ID {new} assigned twice",
                ordering.name()
            );
            seen[new] = true;
            assert_eq!(
                f.to_old(f.to_new(u)),
                u,
                "{}: not invertible",
                ordering.name()
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: permutation has holes",
            ordering.name()
        );
        // Hub-preserving policies keep hubs exactly in `0..num_hub`.
        if ordering != RegularOrdering::Original && ordering != RegularOrdering::ByInDegree {
            let num_hub = f.num_hub();
            assert!(num_hub > 0, "rmat must classify hubs");
            for u in 0..nid(g.n()) {
                let is_prefix = (f.to_new(u) as usize) < num_hub;
                assert_eq!(
                    class.is_hub(u) && class.class(u) == mixen_graph::NodeClass::Regular,
                    is_prefix,
                    "{}: node {u} breaks the hub prefix",
                    ordering.name()
                );
            }
        }
    }
}

#[test]
fn ranks_are_policy_independent_in_original_id_space() {
    for (d, seed) in [(Dataset::Rmat, 5), (Dataset::Wiki, 6), (Dataset::Urand, 7)] {
        let g = d.generate(Scale::Tiny, seed);
        let reference = ranks(&engine_with(&g, RegularOrdering::Original), &g, 10);
        let ref_top = top_k(&reference, 20);
        for ordering in RegularOrdering::ALL {
            let got = ranks(&engine_with(&g, ordering), &g, 10);
            for (v, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-5,
                    "{}/{}: node {v} diverges ({a} vs {b})",
                    d.name(),
                    ordering.name()
                );
            }
            assert_eq!(
                top_k(&got, 20),
                ref_top,
                "{}/{}: top-20 set changed",
                d.name(),
                ordering.name()
            );
        }
    }
}

#[test]
fn each_policy_is_bitwise_deterministic() {
    let g = Dataset::Wiki.generate(Scale::Tiny, 9);
    for ordering in RegularOrdering::ALL {
        let a = ranks(&engine_with(&g, ordering), &g, 8);
        let b = ranks(&engine_with(&g, ordering), &g, 8);
        let a_bits: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let b_bits: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            a_bits,
            b_bits,
            "{}: reruns differ bit-for-bit",
            ordering.name()
        );
    }
}

#[test]
fn auto_selection_is_visible_in_the_counters() {
    let g = Dataset::Rmat.generate(Scale::Tiny, 21);
    let class = Classification::of(&g);
    let expected = PerfModel::from_classification(&g, &class, MixenOpts::default().block_side)
        .preferred_ordering();
    let e = MixenEngine::new_auto(&g, MixenOpts::default());
    assert_eq!(e.filtered().ordering(), expected);
    let snap = e.metrics().snapshot();
    assert_eq!(snap.get("reorder_policy"), expected.policy_id());
    assert!(snap.get("hub_domain_side") > 0);
    // The relabel timer only ticks when a pass actually runs.
    if expected != RegularOrdering::Original {
        assert!(e.filtered().relabel_seconds() >= 0.0);
    }
}

#[test]
fn hub_domain_sizing_never_grows_the_block_side() {
    // The GRASP-style pinned hub domain can only shrink regular-region
    // blocks, and only when the hub working set leaves room for it.
    let g = Dataset::Wiki.generate(Scale::Tiny, 3);
    for ordering in RegularOrdering::ALL {
        let e = engine_with(&g, ordering);
        let opts = MixenOpts {
            ordering,
            ..MixenOpts::default()
        };
        let plain = opts.effective_block_side(
            e.filtered().num_regular(),
            mixen_pool::current_num_threads(),
        );
        assert!(
            e.blocked().block_side() <= plain,
            "{}: hub-domain sizing grew the block side",
            ordering.name()
        );
    }
}
