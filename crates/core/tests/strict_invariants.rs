//! End-to-end exercise of the `strict-invariants` feature: every engine
//! constructed here runs `FilteredGraph::debug_validate` and
//! `BlockedSubgraph::debug_validate` internally and panics on any violated
//! preprocessing invariant, so these tests simply have to build engines over
//! a spread of graph shapes, orderings, and block sides and produce correct
//! results. Compiled only with `--features strict-invariants`; without the
//! feature the file is empty.
#![cfg(feature = "strict-invariants")]

use mixen_core::{MixenEngine, MixenOpts, RegularOrdering, WMixenEngine};
use mixen_graph::gen::{kronecker, uniform};
use mixen_graph::{Graph, WGraph};

fn orderings() -> [RegularOrdering; 5] {
    RegularOrdering::ALL
}

fn degree_sum(e: &MixenEngine, g: &Graph) -> Vec<f32> {
    e.iterate::<f32, _, _>(|v| g.out_degree(v) as f32, |_, sum| sum, 1)
}

fn reference_degree_sum(g: &Graph) -> Vec<f32> {
    let mut want = vec![0.0f32; g.n()];
    for u in 0..g.n() as u32 {
        for &v in g.out_neighbors(u) {
            want[v as usize] += g.out_degree(u) as f32;
        }
    }
    want
}

#[test]
fn skewed_graph_validates_under_every_ordering() {
    let g = kronecker(9, 8, 42);
    for ordering in orderings() {
        for block_side in [4usize, 64, 1024] {
            let opts = MixenOpts {
                ordering,
                block_side,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            };
            let e = MixenEngine::new(&g, opts);
            assert_eq!(degree_sum(&e, &g), reference_degree_sum(&g));
        }
    }
}

#[test]
fn uniform_graph_validates_under_every_ordering() {
    let g = uniform(500, 6, 7);
    for ordering in orderings() {
        let opts = MixenOpts {
            ordering,
            block_side: 32,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let e = MixenEngine::new(&g, opts);
        assert_eq!(degree_sum(&e, &g), reference_degree_sum(&g));
    }
}

#[test]
fn degenerate_graphs_validate() {
    // Empty, edgeless, single-edge, and all-isolated graphs all have
    // boundary-case partitions (r = 0, empty blocks, hub count 0).
    let shapes = [
        Graph::from_pairs(0, &[]),
        Graph::from_pairs(4, &[]),
        Graph::from_pairs(2, &[(0, 1)]),
        Graph::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]),
    ];
    for g in &shapes {
        for ordering in orderings() {
            let opts = MixenOpts {
                ordering,
                block_side: 2,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            };
            let e = MixenEngine::new(g, opts);
            assert_eq!(degree_sum(&e, g), reference_degree_sum(g));
        }
    }
}

#[test]
fn weighted_engine_validates() {
    let g = kronecker(8, 6, 3);
    let wg = WGraph::from_graph(&g, |_, _| 1.0);
    for ordering in orderings() {
        let opts = MixenOpts {
            ordering,
            block_side: 64,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        // Construction alone triggers both validators.
        let _ = WMixenEngine::new(&wg, opts);
    }
}
