//! The engine abstraction every algorithm is written against.
//!
//! An [`Engine`] runs the synchronous propagation recurrence and BFS. The
//! trait is implemented here for Mixen and all four baselines so algorithm
//! code never mentions a concrete framework. [`EngineKind`] enumerates them
//! for benchmark drivers that sweep "all frameworks × all algorithms".

use mixen_baselines::{BlockEngine, PartitionedEngine, PullEngine, PushEngine, ReferenceEngine};
use mixen_core::MixenEngine;
use mixen_graph::{AtomicProp, NodeId};

/// A framework capable of running link analysis and BFS.
///
/// The value type is bounded by [`AtomicProp`] (32-bit lanes) because the
/// pushing-flow baseline combines destinations atomically; all algorithm
/// value types (`f32`, `[f32; K]`) satisfy it.
pub trait Engine: Sync {
    /// Runs `iters` synchronous iterations of
    /// `x'[v] = apply(v, Σ_{u→v} x[u])`, returning final values by original
    /// node ID.
    fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync;

    /// Iterates until the max-norm step difference is at most `tol` (or
    /// `max_iters`); returns values and iterations performed.
    fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync;

    /// BFS depths from `root` (`-1` = unreachable).
    fn bfs(&self, root: NodeId) -> Vec<i32>;
}

macro_rules! delegate_engine {
    ($ty:ty) => {
        impl Engine for $ty {
            fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
            where
                V: AtomicProp,
                FI: Fn(NodeId) -> V + Sync,
                FA: Fn(NodeId, V) -> V + Sync,
            {
                <$ty>::iterate(self, init, apply, iters)
            }

            fn iterate_until<V, FI, FA>(
                &self,
                init: FI,
                apply: FA,
                tol: f64,
                max_iters: usize,
            ) -> (Vec<V>, usize)
            where
                V: AtomicProp,
                FI: Fn(NodeId) -> V + Sync,
                FA: Fn(NodeId, V) -> V + Sync,
            {
                <$ty>::iterate_until(self, init, apply, tol, max_iters)
            }

            fn bfs(&self, root: NodeId) -> Vec<i32> {
                <$ty>::bfs(self, root)
            }
        }
    };
}

delegate_engine!(MixenEngine);
delegate_engine!(PullEngine<'_>);
delegate_engine!(PushEngine<'_>);
delegate_engine!(PartitionedEngine<'_>);
delegate_engine!(BlockEngine<'_>);

impl Engine for ReferenceEngine<'_> {
    fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        ReferenceEngine::iterate(self, init, apply, iters)
    }

    fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        ReferenceEngine::iterate_until(self, init, apply, tol, max_iters)
    }

    fn bfs(&self, root: NodeId) -> Vec<i32> {
        ReferenceEngine::bfs(self, root)
    }
}

/// The five frameworks of the paper's Table 3 (plus the serial oracle),
/// named as the paper names them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// This paper's framework.
    Mixen,
    /// GPOP-style whole-graph blocking.
    Gpop,
    /// Ligra-style push with atomics.
    Ligra,
    /// Polymer-style destination-partitioned pull.
    Polymer,
    /// GraphMat-style dense pull.
    GraphMat,
}

impl EngineKind {
    /// Table-order list (Mixen first, as in Table 3).
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Mixen,
        EngineKind::Gpop,
        EngineKind::Ligra,
        EngineKind::Polymer,
        EngineKind::GraphMat,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Mixen => "Mixen",
            EngineKind::Gpop => "GPOP",
            EngineKind::Ligra => "Ligra",
            EngineKind::Polymer => "Polymer",
            EngineKind::GraphMat => "GraphMat",
        }
    }
}

/// A uniformly-typed engine, for drivers that sweep frameworks at runtime
/// (the Table 3 harness). Construction runs the framework's preprocessing.
/// Mixen's preprocessed state is boxed so the enum stays pointer-sized per
/// variant.
pub enum AnyEngine<'g> {
    /// This paper's framework.
    Mixen(Box<MixenEngine>),
    /// GPOP-style whole-graph blocking.
    Gpop(BlockEngine<'g>),
    /// Ligra-style push with atomics.
    Ligra(PushEngine<'g>),
    /// Polymer-style partitioned pull.
    Polymer(PartitionedEngine<'g>),
    /// GraphMat-style dense pull.
    GraphMat(PullEngine<'g>),
}

impl<'g> AnyEngine<'g> {
    /// Builds the engine of `kind` over `g` with each framework's default
    /// configuration (Mixen: paper defaults; GPOP: 64 Ki-node blocks;
    /// Polymer: 4 partitions per thread).
    pub fn build(kind: EngineKind, g: &'g mixen_graph::Graph) -> Self {
        match kind {
            EngineKind::Mixen => {
                AnyEngine::Mixen(Box::new(MixenEngine::new(g, Default::default())))
            }
            EngineKind::Gpop => AnyEngine::Gpop(BlockEngine::with_default_blocks(g)),
            EngineKind::Ligra => AnyEngine::Ligra(PushEngine::new(g)),
            EngineKind::Polymer => {
                AnyEngine::Polymer(PartitionedEngine::with_default_partitions(g))
            }
            EngineKind::GraphMat => AnyEngine::GraphMat(PullEngine::new(g)),
        }
    }

    /// Like [`AnyEngine::build`], but with explicit Mixen preprocessing
    /// options (the CLI's `--reorder` path). Baseline kinds have no relabel
    /// step, so `opts` only affects `EngineKind::Mixen`; callers that must
    /// reject the combination do so before building.
    pub fn build_with_mixen_opts(
        kind: EngineKind,
        g: &'g mixen_graph::Graph,
        opts: mixen_core::MixenOpts,
    ) -> Self {
        match kind {
            EngineKind::Mixen => AnyEngine::Mixen(Box::new(MixenEngine::new(g, opts))),
            other => Self::build(other, g),
        }
    }

    /// The kind this engine was built as.
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyEngine::Mixen(_) => EngineKind::Mixen,
            AnyEngine::Gpop(_) => EngineKind::Gpop,
            AnyEngine::Ligra(_) => EngineKind::Ligra,
            AnyEngine::Polymer(_) => EngineKind::Polymer,
            AnyEngine::GraphMat(_) => EngineKind::GraphMat,
        }
    }
}

macro_rules! any_dispatch {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            AnyEngine::Mixen($e) => $body,
            AnyEngine::Gpop($e) => $body,
            AnyEngine::Ligra($e) => $body,
            AnyEngine::Polymer($e) => $body,
            AnyEngine::GraphMat($e) => $body,
        }
    };
}

impl Engine for AnyEngine<'_> {
    fn iterate<V, FI, FA>(&self, init: FI, apply: FA, iters: usize) -> Vec<V>
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        any_dispatch!(self, e => e.iterate(init, apply, iters))
    }

    fn iterate_until<V, FI, FA>(
        &self,
        init: FI,
        apply: FA,
        tol: f64,
        max_iters: usize,
    ) -> (Vec<V>, usize)
    where
        V: AtomicProp,
        FI: Fn(NodeId) -> V + Sync,
        FA: Fn(NodeId, V) -> V + Sync,
    {
        any_dispatch!(self, e => e.iterate_until(init, apply, tol, max_iters))
    }

    fn bfs(&self, root: NodeId) -> Vec<i32> {
        any_dispatch!(self, e => e.bfs(root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_core::MixenOpts;
    use mixen_graph::Graph;

    fn toy() -> Graph {
        Graph::from_pairs(5, &[(0, 1), (1, 2), (2, 0), (3, 1), (2, 4)])
    }

    /// Exercise each implementation through the trait to prove the
    /// delegation compiles and agrees.
    fn run_engine<E: Engine>(e: &E) -> (Vec<f32>, Vec<i32>) {
        let vals = Engine::iterate::<f32, _, _>(e, |_| 1.0, |_, s| s + 1.0, 2);
        let depths = Engine::bfs(e, 0);
        (vals, depths)
    }

    #[test]
    fn all_engines_agree_through_trait() {
        let g = toy();
        let reference = run_engine(&ReferenceEngine::new(&g));
        let mixen = run_engine(&MixenEngine::new(&g, MixenOpts::default()));
        let pull = run_engine(&PullEngine::new(&g));
        let push = run_engine(&PushEngine::new(&g));
        let part = run_engine(&PartitionedEngine::new(&g, 2));
        let block = run_engine(&BlockEngine::new(&g, 2));
        for (name, got) in [
            ("mixen", &mixen),
            ("pull", &pull),
            ("push", &push),
            ("polymer", &part),
            ("gpop", &block),
        ] {
            for (a, b) in got.0.iter().zip(&reference.0) {
                assert!((a - b).abs() < 1e-4, "{name} values diverge");
            }
            assert_eq!(got.1, reference.1, "{name} BFS diverges");
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(EngineKind::Mixen.name(), "Mixen");
        assert_eq!(EngineKind::ALL.len(), 5);
    }

    #[test]
    fn mixen_opts_build_honors_the_ordering() {
        use mixen_core::RegularOrdering;
        let g = toy();
        let opts = MixenOpts {
            ordering: RegularOrdering::Dbg,
            ..MixenOpts::default()
        };
        let e = AnyEngine::build_with_mixen_opts(EngineKind::Mixen, &g, opts);
        match &e {
            AnyEngine::Mixen(m) => assert_eq!(m.filtered().ordering(), RegularOrdering::Dbg),
            _ => panic!("expected a Mixen engine"),
        }
        let reference = run_engine(&ReferenceEngine::new(&g));
        let got = run_engine(&e);
        for (a, b) in got.0.iter().zip(&reference.0) {
            assert!((a - b).abs() < 1e-4, "reordered mixen diverges");
        }
    }

    #[test]
    fn any_engine_dispatches_every_kind() {
        let g = toy();
        let reference = run_engine(&ReferenceEngine::new(&g));
        for kind in EngineKind::ALL {
            let e = AnyEngine::build(kind, &g);
            assert_eq!(e.kind(), kind);
            let got = run_engine(&e);
            for (a, b) in got.0.iter().zip(&reference.0) {
                assert!((a - b).abs() < 1e-4, "{} diverges", kind.name());
            }
            assert_eq!(got.1, reference.1, "{} BFS diverges", kind.name());
        }
    }
}
