//! Link-analysis algorithms over pluggable engines.
//!
//! The paper evaluates InDegree, PageRank, Collaborative Filtering and BFS
//! (§6.1) on five frameworks; §2.2 additionally discusses HITS and SALSA.
//! This crate writes each algorithm **once** against the [`Engine`] trait,
//! so the exact same algorithm code runs on Mixen and on every baseline —
//! the differences measured by the benchmarks are purely in the engines'
//! execution strategies.
//!
//! All engines share one synchronous contract (`x'[v] = apply(v, Σ_{u→v}
//! x[u])`), which makes their outputs comparable value-for-value; the
//! integration tests exploit this to cross-check every engine × algorithm
//! pair against the serial reference.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod cc;
pub mod cf;
pub mod engine;
pub mod hits;
pub mod indegree;
pub mod pagerank;
pub mod ranking;
pub mod salsa;
pub mod sssp;

pub use bfs::{bfs, default_root, summarize};
pub use cc::connected_components;
pub use cf::{collaborative_filtering, CfOpts, LATENT_DIM};
pub use engine::{AnyEngine, Engine, EngineKind};
pub use hits::{hits, HitsScores};
pub use indegree::{indegree, indegree_iterated, spmv};
pub use pagerank::{
    pagerank, pagerank_adaptive, pagerank_fingerprint_extra, pagerank_supervised,
    pagerank_supervised_resume, pagerank_until, PageRankOpts, PageRankStream,
};
pub use ranking::{kendall_tau, kendall_tau_sampled, top_k, top_k_overlap};
pub use salsa::{salsa, SalsaScores};
pub use sssp::{dijkstra, sssp, sssp_pull, weighted_spmv};
