//! Single-source shortest paths and weighted SpMV — the weighted-graph
//! workloads of the semiring extension.
//!
//! SSSP is Bellman–Ford expressed through the engines' synchronous kernel
//! under the tropical `(min, +)` semiring: each round relaxes every edge
//! once, re-injecting each node's own current bound through the monotone
//! trick used by connected components. Convergence takes at most
//! "longest shortest path in hops" rounds.

use mixen_core::WMixenEngine;
use mixen_graph::{MinF32, NodeId, PropValue, WGraph};

use mixen_baselines::WPullEngine;

/// Shortest-path distances from `root` over non-negative edge weights,
/// computed on the weighted Mixen engine. `f32::INFINITY` = unreachable.
pub fn sssp(engine: &WMixenEngine, root: NodeId, max_iters: usize) -> Vec<f32> {
    let (dist, _) = engine.iterate_until(sssp_init(root), sssp_apply(root), 0.0, max_iters);
    dist.into_iter().map(|MinF32(d)| d).collect()
}

/// SSSP on the dense weighted pull baseline (the oracle for tests).
pub fn sssp_pull(wg: &WGraph, root: NodeId, max_iters: usize) -> Vec<f32> {
    let engine = WPullEngine::new(wg);
    let (dist, _) = engine.iterate_until(sssp_init(root), sssp_apply(root), 0.0, max_iters);
    dist.into_iter().map(|MinF32(d)| d).collect()
}

/// One weighted SpMV, `y[v] = Σ w(u,v) · x[u]`, on the weighted engine.
pub fn weighted_spmv(engine: &WMixenEngine, x: &[f32]) -> Vec<f32> {
    engine.iterate(|v: NodeId| x[v as usize], |_, sum| sum, 1)
}

fn sssp_init(root: NodeId) -> impl Fn(NodeId) -> MinF32 + Sync {
    move |v| {
        if v == root {
            MinF32(0.0)
        } else {
            MinF32::identity()
        }
    }
}

fn sssp_apply(root: NodeId) -> impl Fn(NodeId, MinF32) -> MinF32 + Sync {
    move |v, s| {
        let mut out = s;
        out.combine(if v == root {
            MinF32(0.0)
        } else {
            MinF32::identity()
        });
        out
    }
}

/// Serial Dijkstra oracle (binary heap), for validation.
pub fn dijkstra(wg: &WGraph, root: NodeId) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![f32::INFINITY; wg.n()];
    let mut heap: BinaryHeap<Reverse<(ordered, u32)>> = BinaryHeap::new();
    dist[root as usize] = 0.0;
    heap.push(Reverse((ordered::from(0.0), root)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let d = d.0;
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in wg.out_edges(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((ordered::from(nd), v)));
            }
        }
    }
    dist
}

/// Total-ordered f32 wrapper for the heap (weights are non-negative and
/// finite, so `total_cmp` is safe here).
#[derive(Clone, Copy, PartialEq)]
#[allow(non_camel_case_types)]
struct ordered(f32);

impl From<f32> for ordered {
    fn from(x: f32) -> Self {
        ordered(x)
    }
}
impl Eq for ordered {}
impl PartialOrd for ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_core::MixenOpts;
    use mixen_graph::{Dataset, Scale};

    fn toy() -> WGraph {
        WGraph::from_triples(
            6,
            &[
                (0, 1, 4.0),
                (0, 2, 1.0),
                (2, 1, 2.0),
                (1, 3, 1.0),
                (2, 3, 5.0),
                (3, 4, 3.0),
            ],
        )
    }

    #[test]
    fn matches_dijkstra_on_toy() {
        let wg = toy();
        let engine = WMixenEngine::new(&wg, MixenOpts::default());
        let got = sssp(&engine, 0, 50);
        let want = dijkstra(&wg, 0);
        assert_eq!(got, want);
        assert_eq!(got[1], 3.0); // via 2
        assert_eq!(got[3], 4.0); // 0-2-1-3
        assert!(got[5].is_infinite());
    }

    #[test]
    fn pull_and_mixen_agree_on_random_weighted_graph() {
        let g = Dataset::Rmat.generate(Scale::Tiny, 33);
        let wg = WGraph::with_hash_weights(&g, 1.0, 10.0, 5);
        let engine = WMixenEngine::new(&wg, MixenOpts::default());
        let root = (0..g.n() as u32).max_by_key(|&v| g.out_degree(v)).unwrap();
        let a = sssp(&engine, root, 200);
        let b = sssp_pull(&wg, root, 200);
        let c = dijkstra(&wg, root);
        for v in 0..g.n() {
            assert!(
                (a[v] - c[v]).abs() < 1e-3 || (a[v].is_infinite() && c[v].is_infinite()),
                "node {v}: mixen {} vs dijkstra {}",
                a[v],
                c[v]
            );
            assert!(
                (b[v] - c[v]).abs() < 1e-3 || (b[v].is_infinite() && c[v].is_infinite()),
                "node {v}: pull {} vs dijkstra {}",
                b[v],
                c[v]
            );
        }
    }

    #[test]
    fn weighted_spmv_is_linear() {
        let wg = toy();
        let engine = WMixenEngine::new(&wg, MixenOpts::default());
        let xa: Vec<f32> = (0..wg.n()).map(|i| i as f32).collect();
        let xb: Vec<f32> = (0..wg.n()).map(|i| (i * i) as f32 * 0.1).collect();
        let sum: Vec<f32> = xa.iter().zip(&xb).map(|(a, b)| a + b).collect();
        let ya = weighted_spmv(&engine, &xa);
        let yb = weighted_spmv(&engine, &xb);
        let ysum = weighted_spmv(&engine, &sum);
        for v in 0..wg.n() {
            assert!((ya[v] + yb[v] - ysum[v]).abs() < 1e-4);
        }
    }

    #[test]
    fn sssp_from_unreachable_root() {
        let wg = toy();
        let engine = WMixenEngine::new(&wg, MixenOpts::default());
        let d = sssp(&engine, 5, 20);
        assert_eq!(d[5], 0.0);
        assert!(d[..5].iter().all(|x| x.is_infinite()));
    }
}
