//! Breadth-First Search — the paper's non-link-analysis control (§6.1).
//!
//! BFS propagates a frontier rather than dense values, so it exercises each
//! engine's sparse path: Mixen/GPOP use blocked frontier expansion, Ligra
//! its direction-optimizing switch, Polymer push-only, GraphMat dense pull.
//! It gains nothing from Mixen's Cache step, which is exactly why the paper
//! includes it.

use crate::Engine;
use mixen_graph::nid;
use mixen_graph::NodeId;

/// BFS depths from `root` via the engine's native traversal.
pub fn bfs<E: Engine>(engine: &E, root: NodeId) -> Vec<i32> {
    engine.bfs(root)
}

/// Picks a deterministic high-out-degree root — the convention used by the
/// benchmarks so every engine traverses a non-trivial component.
pub fn default_root(g: &mixen_graph::Graph) -> NodeId {
    (0..nid(g.n()))
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0)
}

/// Number of reached nodes and maximum depth — the summary the benchmark
/// tables print for sanity.
pub fn summarize(depths: &[i32]) -> (usize, i32) {
    let reached = depths.iter().filter(|&&d| d >= 0).count();
    let max_depth = depths.iter().copied().max().unwrap_or(-1);
    (reached, max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::{
        BlockEngine, PartitionedEngine, PullEngine, PushEngine, ReferenceEngine,
    };
    use mixen_core::{MixenEngine, MixenOpts};
    use mixen_graph::Graph;

    #[test]
    fn all_engines_same_depths() {
        let g = Graph::from_pairs(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (5, 0), (3, 6)]);
        let root = default_root(&g);
        let want = bfs(&ReferenceEngine::new(&g), root);
        assert_eq!(bfs(&MixenEngine::new(&g, MixenOpts::default()), root), want);
        assert_eq!(bfs(&PullEngine::new(&g), root), want);
        assert_eq!(bfs(&PushEngine::new(&g), root), want);
        assert_eq!(bfs(&PartitionedEngine::new(&g, 2), root), want);
        assert_eq!(bfs(&BlockEngine::new(&g, 2), root), want);
    }

    #[test]
    fn default_root_is_max_out_degree() {
        let g = Graph::from_pairs(4, &[(2, 0), (2, 1), (2, 3), (0, 1)]);
        assert_eq!(default_root(&g), 2);
    }

    #[test]
    fn summarize_counts() {
        let (reached, depth) = summarize(&[0, 1, -1, 2, 1]);
        assert_eq!(reached, 4);
        assert_eq!(depth, 2);
        assert_eq!(summarize(&[]), (0, -1));
    }
}
