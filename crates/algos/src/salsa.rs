//! SALSA — Stochastic Approach for Link-Structure Analysis (Lempel &
//! Moran), §2.2.
//!
//! Like HITS, SALSA computes authority and hub scores, but the propagation
//! is a random walk: contributions are divided by the sender's degree, so
//! each update is a row-stochastic SpMV. Authority pulls along in-edges of
//! `G` with hub mass split over out-degrees; hub pulls along in-edges of
//! reversed `G` with authority mass split over in-degrees.

use crate::Engine;
use mixen_graph::nid;
use mixen_graph::{Graph, NodeId};

/// The two SALSA score vectors (each sums to 1 over reachable nodes).
#[derive(Clone, Debug, PartialEq)]
pub struct SalsaScores {
    /// Authority scores.
    pub authority: Vec<f32>,
    /// Hub scores.
    pub hub: Vec<f32>,
}

/// Runs `iters` SALSA iterations over `g`; `fwd` is an engine on `g`, `rev`
/// on `g.reversed()`.
pub fn salsa<F: Engine, R: Engine>(g: &Graph, fwd: &F, rev: &R, iters: usize) -> SalsaScores {
    let n = g.n();
    let out_deg: Vec<f32> = (0..nid(n)).map(|v| g.out_degree(v).max(1) as f32).collect();
    let in_deg: Vec<f32> = (0..nid(n)).map(|v| g.in_degree(v).max(1) as f32).collect();
    let mut hub = vec![1.0 / n.max(1) as f32; n];
    let mut authority = vec![1.0 / n.max(1) as f32; n];
    for _ in 0..iters {
        let h = &hub;
        let od = &out_deg;
        authority = fwd.iterate(|v: NodeId| h[v as usize] / od[v as usize], |_, s: f32| s, 1);
        let a = &authority;
        let id = &in_deg;
        hub = rev.iterate(|v: NodeId| a[v as usize] / id[v as usize], |_, s: f32| s, 1);
    }
    SalsaScores { authority, hub }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::ReferenceEngine;
    use mixen_core::{MixenEngine, MixenOpts};

    fn web() -> Graph {
        Graph::from_pairs(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 2)])
    }

    #[test]
    fn walk_conserves_mass_on_strongly_connected() {
        // On a cycle, the walk is measure-preserving: scores stay uniform.
        let g = Graph::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]);
        let rev = g.reversed();
        let s = salsa(
            &g,
            &ReferenceEngine::new(&g),
            &ReferenceEngine::new(&rev),
            10,
        );
        for &a in &s.authority {
            assert!((a - 1.0 / 3.0).abs() < 1e-5);
        }
        let total: f32 = s.authority.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn popular_page_gets_most_authority() {
        let g = web();
        let rev = g.reversed();
        let s = salsa(
            &g,
            &ReferenceEngine::new(&g),
            &ReferenceEngine::new(&rev),
            10,
        );
        // Node 2 has 3 in-links vs node 3's 2.
        assert!(s.authority[2] > s.authority[3]);
        assert!(s.authority[3] > s.authority[0]);
    }

    #[test]
    fn mixen_matches_reference() {
        let g = web();
        let rev = g.reversed();
        let opts = MixenOpts {
            block_side: 2,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let a = salsa(
            &g,
            &MixenEngine::new(&g, opts),
            &MixenEngine::new(&rev, opts),
            6,
        );
        let b = salsa(
            &g,
            &ReferenceEngine::new(&g),
            &ReferenceEngine::new(&rev),
            6,
        );
        for (x, y) in a.authority.iter().zip(&b.authority) {
            assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in a.hub.iter().zip(&b.hub) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
