//! Collaborative Filtering (§2.2, §6.1).
//!
//! The paper defines CF as "a graph learning algorithm derived from the
//! SpMV form of InDegree" — each iteration propagates latent feature
//! vectors along the links and blends the aggregated neighbourhood signal
//! with a per-node anchor (the SpMV generalization with `[f32; K]` values).
//! This is the computation pattern of GraphMat's CF / ALS smoothing step;
//! K-dimensional values multiply the per-edge traffic by K, which is why
//! Table 3's CF rows are uniformly slower than InDegree's.

use crate::Engine;
use mixen_graph::nid;
use mixen_graph::NodeId;

/// The latent dimensionality used throughout the benchmarks.
pub const LATENT_DIM: usize = 8;

/// Collaborative-filtering parameters.
#[derive(Clone, Copy, Debug)]
pub struct CfOpts {
    /// Blend weight of the aggregated neighbour signal (vs the anchor).
    pub blend: f32,
    /// Propagation rounds.
    pub iters: usize,
}

impl Default for CfOpts {
    fn default() -> Self {
        Self {
            blend: 0.5,
            iters: 1,
        }
    }
}

/// Deterministic pseudo-random anchor vector of node `v` (splitmix64-style
/// hashing, identical across engines and runs).
pub fn anchor(v: NodeId) -> [f32; LATENT_DIM] {
    std::array::from_fn(|k| {
        let mut z = (v as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(k as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map to [0, 1).
        (z >> 40) as f32 / (1u64 << 24) as f32
    })
}

/// Runs CF feature propagation; returns the per-node latent vectors.
pub fn collaborative_filtering<E: Engine>(
    g: &mixen_graph::Graph,
    engine: &E,
    opts: CfOpts,
) -> Vec<[f32; LATENT_DIM]> {
    let in_deg: Vec<f32> = (0..nid(g.n()))
        .map(|v| g.in_degree(v).max(1) as f32)
        .collect();
    let blend = opts.blend;
    let apply = move |v: NodeId, sum: [f32; LATENT_DIM]| {
        let a = anchor(v);
        let scale = blend / in_deg[v as usize];
        std::array::from_fn(|k| scale * sum[k] + (1.0 - blend) * a[k])
    };
    // Seed-consistency: in-degree-0 nodes start at their fixed point
    // apply(v, 0) = (1 - blend) * anchor(v).
    let in_zero: Vec<bool> = (0..nid(g.n())).map(|v| g.in_degree(v) == 0).collect();
    let init = move |v: NodeId| {
        let a = anchor(v);
        if in_zero[v as usize] {
            std::array::from_fn(|k| (1.0 - blend) * a[k])
        } else {
            a
        }
    };
    engine.iterate(init, apply, opts.iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::{PushEngine, ReferenceEngine};
    use mixen_core::{MixenEngine, MixenOpts};
    use mixen_graph::Graph;

    fn toy() -> Graph {
        Graph::from_pairs(6, &[(0, 1), (1, 2), (2, 0), (3, 1), (3, 4), (1, 4), (2, 5)])
    }

    #[test]
    fn anchors_are_deterministic_and_spread() {
        assert_eq!(anchor(7), anchor(7));
        assert_ne!(anchor(7), anchor(8));
        let a = anchor(123);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
        // Not all lanes identical.
        assert!(a.iter().any(|&x| (x - a[0]).abs() > 1e-6));
    }

    #[test]
    fn engines_agree_on_cf() {
        let g = toy();
        let opts = CfOpts {
            blend: 0.5,
            iters: 3,
        };
        let want = collaborative_filtering(&g, &ReferenceEngine::new(&g), opts);
        let mixen = collaborative_filtering(
            &g,
            &MixenEngine::new(
                &g,
                MixenOpts {
                    block_side: 2,
                    min_tasks_per_thread: 1,
                    ..MixenOpts::default()
                },
            ),
            opts,
        );
        let push = collaborative_filtering(&g, &PushEngine::new(&g), opts);
        for i in 0..g.n() {
            for k in 0..LATENT_DIM {
                assert!((want[i][k] - mixen[i][k]).abs() < 1e-5, "mixen node {i}");
                assert!((want[i][k] - push[i][k]).abs() < 1e-5, "push node {i}");
            }
        }
    }

    #[test]
    fn blend_zero_returns_anchors() {
        let g = toy();
        let vals = collaborative_filtering(
            &g,
            &ReferenceEngine::new(&g),
            CfOpts {
                blend: 0.0,
                iters: 2,
            },
        );
        for v in 0..g.n() as NodeId {
            assert_eq!(vals[v as usize], anchor(v));
        }
    }

    #[test]
    fn values_stay_bounded() {
        // blend/indeg scaling keeps each lane a convex-ish combination of
        // [0,1) anchors, so values must stay in [0, 1].
        let g = toy();
        let vals = collaborative_filtering(
            &g,
            &ReferenceEngine::new(&g),
            CfOpts {
                blend: 0.9,
                iters: 10,
            },
        );
        for v in vals {
            for x in v {
                assert!((0.0..=1.0).contains(&x), "x = {x}");
            }
        }
    }
}
