//! PageRank (§2.2, Table 3's PR workload).
//!
//! The pull formulation the paper times:
//! `rank'[v] = (1-d)/n + d · Σ_{u→v} rank[u]/outdeg(u)`.
//!
//! The *propagated* value is `rank/outdeg`, so `apply` folds the damping and
//! the division in one step. Seed nodes (in-degree 0) are initialized at
//! their fixed point `(1-d)/n` — the contract that lets Mixen cache their
//! contribution once and still match a conventional engine at every
//! iteration (see `mixen_core::engine`).
//!
//! Like the paper's implementation, dangling (sink) rank mass is not
//! redistributed by default; [`PageRankOpts::redistribute`] enables the
//! textbook correction as an extension.

use crate::Engine;
use mixen_graph::nid;
use mixen_graph::{Graph, NodeId};

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankOpts {
    /// Damping factor `d` (the usual 0.85).
    pub damping: f32,
    /// Redistribute dangling-node mass uniformly each iteration (off in the
    /// paper's formulation).
    pub redistribute: bool,
}

impl Default for PageRankOpts {
    fn default() -> Self {
        Self {
            damping: 0.85,
            redistribute: false,
        }
    }
}

/// Runs a fixed number of PageRank iterations; returns per-node scores.
pub fn pagerank<E: Engine>(g: &Graph, engine: &E, opts: PageRankOpts, iters: usize) -> Vec<f32> {
    let (scores, _) = pagerank_impl(g, engine, opts, f64::NEG_INFINITY, iters, true);
    scores
}

/// Runs PageRank until the propagated values change by at most `tol`
/// (max-norm) or `max_iters`; returns scores and iterations.
pub fn pagerank_until<E: Engine>(
    g: &Graph,
    engine: &E,
    opts: PageRankOpts,
    tol: f64,
    max_iters: usize,
) -> (Vec<f32>, usize) {
    pagerank_impl(g, engine, opts, tol, max_iters, false)
}

fn pagerank_impl<E: Engine>(
    g: &Graph,
    engine: &E,
    opts: PageRankOpts,
    tol: f64,
    iters: usize,
    fixed: bool,
) -> (Vec<f32>, usize) {
    let n = g.n().max(1) as f32;
    let d = opts.damping;
    let base = (1.0 - d) / n;
    let out_deg: Vec<u32> = (0..nid(g.n()))
        .map(|v| nid(g.out_degree(v).max(1)))
        .collect();
    let in_zero: Vec<bool> = (0..nid(g.n())).map(|v| g.in_degree(v) == 0).collect();

    if opts.redistribute {
        return pagerank_redistribute(g, engine, opts, tol, iters, fixed);
    }

    let init = |v: NodeId| {
        let rank0 = if in_zero[v as usize] { base } else { 1.0 / n };
        rank0 / out_deg[v as usize] as f32
    };
    let apply = |v: NodeId, sum: f32| (base + d * sum) / out_deg[v as usize] as f32;
    let (vals, performed) = if fixed {
        (engine.iterate(init, apply, iters), iters)
    } else {
        engine.iterate_until(init, apply, tol, iters)
    };
    let scores = vals
        .iter()
        .zip(&out_deg)
        .map(|(&p, &odeg)| p * odeg as f32)
        .collect();
    (scores, performed)
}

/// The textbook dangling-mass variant: each iteration adds
/// `d · (Σ_{sinks} rank) / n` to every node. The dangling sum depends on the
/// previous iteration's global state, so it runs the engine one iteration at
/// a time.
fn pagerank_redistribute<E: Engine>(
    g: &Graph,
    engine: &E,
    opts: PageRankOpts,
    tol: f64,
    max_iters: usize,
    fixed: bool,
) -> (Vec<f32>, usize) {
    let n = g.n().max(1) as f32;
    let d = opts.damping;
    let base = (1.0 - d) / n;
    let out_deg: Vec<u32> = (0..nid(g.n()))
        .map(|v| nid(g.out_degree(v).max(1)))
        .collect();
    let is_sink: Vec<bool> = (0..nid(g.n())).map(|v| g.out_degree(v) == 0).collect();
    let mut rank: Vec<f32> = vec![1.0 / n; g.n()];
    let mut performed = 0usize;
    for _ in 0..max_iters {
        let dangling: f32 = rank
            .iter()
            .zip(&is_sink)
            .filter(|&(_, &s)| s)
            .map(|(&r, _)| r)
            .sum();
        let extra = d * dangling / n;
        let init = |v: NodeId| rank[v as usize] / out_deg[v as usize] as f32;
        let apply = move |_v: NodeId, sum: f32| base + extra + d * sum;
        let next: Vec<f32> = engine.iterate(init, apply, 1);
        let diff = next
            .iter()
            .zip(&rank)
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        rank = next;
        performed += 1;
        if !fixed && diff <= tol {
            break;
        }
    }
    (rank, performed)
}

/// Supervised PageRank through [`mixen_core::RobustRunner`]: per-iteration
/// numeric health checks (NaN / Inf / divergence), preprocessing validation
/// with graceful degradation to the pull baseline, and a populated
/// [`mixen_core::RunReport`] on success *and* failure.
///
/// Returns the scores alongside the report; a numeric fault surfaces as
/// `Err(RunFailure)` whose error is [`mixen_graph::GraphError::Numeric`].
#[allow(clippy::result_large_err)] // RunFailure carries the run report by design
pub fn pagerank_supervised(
    g: &Graph,
    runner: &mixen_core::RobustRunner,
    opts: PageRankOpts,
    iters: usize,
) -> Result<(Vec<f32>, mixen_core::RunReport), mixen_core::RunFailure> {
    assert!(
        !opts.redistribute,
        "supervised mode does not support dangling redistribution"
    );
    let n = g.n().max(1) as f32;
    let d = opts.damping;
    let base = (1.0 - d) / n;
    let out_deg: Vec<u32> = (0..nid(g.n()))
        .map(|v| nid(g.out_degree(v).max(1)))
        .collect();
    let in_zero: Vec<bool> = (0..nid(g.n())).map(|v| g.in_degree(v) == 0).collect();
    let init = |v: NodeId| {
        let rank0 = if in_zero[v as usize] { base } else { 1.0 / n };
        rank0 / out_deg[v as usize] as f32
    };
    let apply = |v: NodeId, sum: f32| (base + d * sum) / out_deg[v as usize] as f32;
    let (vals, report) = runner.run(g, init, apply, iters)?;
    let scores = vals
        .iter()
        .zip(&out_deg)
        .map(|(&p, &odeg)| p * odeg as f32)
        .collect();
    Ok((scores, report))
}

/// The [`mixen_core::RunnerOpts::fingerprint_extra`] value a supervised
/// PageRank run must carry so its checkpoints bind to the algorithm
/// parameters: resuming with a different damping factor is then rejected as
/// stale instead of silently producing a hybrid of two different chains.
pub fn pagerank_fingerprint_extra(opts: &PageRankOpts) -> u64 {
    u64::from(opts.damping.to_bits())
}

/// Resumes a supervised PageRank run from the `CKPT1` snapshot at the
/// runner's configured [`mixen_core::RunnerOpts::checkpoint_path`], then
/// continues until `iters` *total* iterations (checkpointed ones included).
///
/// The snapshot must have been written by a run with the same graph, the
/// same runner options (including [`pagerank_fingerprint_extra`]), and the
/// same lane count; any mismatch is a typed staleness error. At a fixed
/// lane count the final scores are bit-identical to an uninterrupted
/// `iters`-iteration run.
#[allow(clippy::result_large_err)] // RunFailure carries the run report by design
pub fn pagerank_supervised_resume(
    g: &Graph,
    runner: &mixen_core::RobustRunner,
    opts: PageRankOpts,
    iters: usize,
) -> Result<(Vec<f32>, mixen_core::RunReport), mixen_core::RunFailure> {
    assert!(
        !opts.redistribute,
        "supervised mode does not support dangling redistribution"
    );
    let Some(path) = runner.opts().checkpoint_path.clone() else {
        return Err(mixen_core::RunFailure {
            error: mixen_graph::GraphError::Format(
                "resume requested but the runner has no checkpoint_path configured".into(),
            ),
            report: mixen_core::RunReport::default(),
        });
    };
    let resumed = runner
        .resume_from::<f32>(g, &path)
        .map_err(|error| mixen_core::RunFailure {
            error,
            report: mixen_core::RunReport::default(),
        })?;
    let n = g.n().max(1) as f32;
    let d = opts.damping;
    let base = (1.0 - d) / n;
    let out_deg: Vec<u32> = (0..nid(g.n()))
        .map(|v| nid(g.out_degree(v).max(1)))
        .collect();
    let apply = |v: NodeId, sum: f32| (base + d * sum) / out_deg[v as usize] as f32;
    let (vals, report) = runner.run_resumed(g, resumed, apply, iters)?;
    let scores = vals
        .iter()
        .zip(&out_deg)
        .map(|(&p, &odeg)| p * odeg as f32)
        .collect();
    Ok((scores, report))
}

/// Adaptive PageRank on the Mixen engine (the delta-iteration extension):
/// nodes stop propagating once their rank moves by at most `epsilon` per
/// round. Returns scores and the engine's [`mixen_core::DeltaStats`].
pub fn pagerank_adaptive(
    g: &Graph,
    engine: &mixen_core::MixenEngine,
    opts: PageRankOpts,
    epsilon: f32,
    max_iters: usize,
) -> (Vec<f32>, mixen_core::DeltaStats) {
    assert!(
        !opts.redistribute,
        "adaptive mode does not support dangling redistribution"
    );
    let n = g.n().max(1) as f32;
    let d = opts.damping;
    let base = (1.0 - d) / n;
    let out_deg: Vec<u32> = (0..nid(g.n()))
        .map(|v| nid(g.out_degree(v).max(1)))
        .collect();
    let in_zero: Vec<bool> = (0..nid(g.n())).map(|v| g.in_degree(v) == 0).collect();
    let init = |v: NodeId| {
        let rank0 = if in_zero[v as usize] { base } else { 1.0 / n };
        rank0 / out_deg[v as usize] as f32
    };
    let apply = |v: NodeId, sum: f32| (base + d * sum) / out_deg[v as usize] as f32;
    let (vals, stats) = engine.iterate_delta(init, apply, epsilon, max_iters);
    let scores = vals
        .iter()
        .zip(&out_deg)
        .map(|(&p, &odeg)| p * odeg as f32)
        .collect();
    (scores, stats)
}

/// Incremental PageRank for long-lived services: keeps the chain's state
/// between calls so a serving loop can advance a few iterations, publish a
/// snapshot of the current scores, and continue — following exactly the
/// trajectory of one uninterrupted run.
///
/// In the default (non-redistributing) formulation the stored state is the
/// engine's *native* state — the propagated values `rank/outdeg` — so a
/// sequence of [`PageRankStream::advance`] calls is bit-identical to a
/// single `pagerank` call for the same total iteration count: no
/// rank↔propagated round-trips are inserted at batch boundaries. With
/// [`PageRankOpts::redistribute`] the state is the rank vector and each
/// iteration runs individually, which is already how the batch entry point
/// evaluates that recurrence.
pub struct PageRankStream<'a, E: Engine> {
    engine: &'a E,
    damping: f32,
    base: f32,
    n: f32,
    redistribute: bool,
    out_deg: Vec<u32>,
    is_sink: Vec<bool>,
    /// Plain mode: propagated values (`rank/outdeg`); redistribute mode:
    /// ranks.
    state: Vec<f32>,
    iterations: usize,
}

impl<'a, E: Engine> PageRankStream<'a, E> {
    /// A stream positioned at iteration 0 (the textbook initial ranks).
    pub fn new(g: &Graph, engine: &'a E, opts: PageRankOpts) -> Self {
        let n = g.n().max(1) as f32;
        let d = opts.damping;
        let base = (1.0 - d) / n;
        let out_deg: Vec<u32> = (0..nid(g.n()))
            .map(|v| nid(g.out_degree(v).max(1)))
            .collect();
        let is_sink: Vec<bool> = (0..nid(g.n())).map(|v| g.out_degree(v) == 0).collect();
        let state: Vec<f32> = if opts.redistribute {
            vec![1.0 / n; g.n()]
        } else {
            (0..nid(g.n()))
                .map(|v| {
                    // Seeds start at their fixed point — the same contract
                    // `pagerank` relies on for Mixen's seed caching.
                    let rank0 = if g.in_degree(v) == 0 { base } else { 1.0 / n };
                    rank0 / out_deg[v as usize] as f32
                })
                .collect()
        };
        Self {
            engine,
            damping: d,
            base,
            n,
            redistribute: opts.redistribute,
            out_deg,
            is_sink,
            state,
            iterations: 0,
        }
    }

    /// Total iterations advanced so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Advances `iters` more iterations; returns the max-norm score change
    /// across the whole batch (an upper bound on the last iteration's
    /// change, so `residual <= tol` is a conservative convergence test).
    pub fn advance(&mut self, iters: usize) -> f64 {
        if iters == 0 {
            return 0.0;
        }
        let before = self.scores();
        if self.redistribute {
            let (base, d, n) = (self.base, self.damping, self.n);
            for _ in 0..iters {
                let dangling: f32 = self
                    .state
                    .iter()
                    .zip(&self.is_sink)
                    .filter(|&(_, &s)| s)
                    .map(|(&r, _)| r)
                    .sum();
                let extra = d * dangling / n;
                let next = {
                    let rank = &self.state;
                    let out_deg = &self.out_deg;
                    let init = |v: NodeId| rank[v as usize] / out_deg[v as usize] as f32;
                    let apply = move |_v: NodeId, sum: f32| base + extra + d * sum;
                    self.engine.iterate(init, apply, 1)
                };
                self.state = next;
            }
        } else {
            let next = {
                let state = &self.state;
                let out_deg = &self.out_deg;
                let (base, d) = (self.base, self.damping);
                let init = |v: NodeId| state[v as usize];
                let apply = |v: NodeId, sum: f32| (base + d * sum) / out_deg[v as usize] as f32;
                self.engine.iterate(init, apply, iters)
            };
            self.state = next;
        }
        self.iterations += iters;
        self.scores()
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max)
    }

    /// The current per-node scores (rank values).
    pub fn scores(&self) -> Vec<f32> {
        if self.redistribute {
            self.state.clone()
        } else {
            self.state
                .iter()
                .zip(&self.out_deg)
                .map(|(&p, &odeg)| p * odeg as f32)
                .collect()
        }
    }
}

/// Sum of all PageRank scores — without redistribution this leaks the
/// dangling mass, so it lies in `(1-d, 1]`; with redistribution it stays at
/// 1 (up to float error). Exposed for tests and examples.
pub fn total_mass(scores: &[f32]) -> f64 {
    scores.iter().map(|&s| s as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::ReferenceEngine;
    use mixen_core::{MixenEngine, MixenOpts};

    fn ring() -> Graph {
        Graph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn uniform_on_a_ring() {
        // A symmetric ring must stay uniform at 1/n.
        let g = ring();
        let scores = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 20);
        for &s in &scores {
            assert!((s - 0.25).abs() < 1e-5, "{scores:?}");
        }
        assert!((total_mass(&scores) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hub_ranks_highest() {
        // Everyone links to node 0; node 0 links to 1.
        let g = Graph::from_pairs(5, &[(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let scores = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 30);
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > scores[2]);
        assert!((scores[2] - scores[3]).abs() < 1e-6);
    }

    #[test]
    fn mixen_matches_reference_every_iteration() {
        let g = Graph::from_pairs(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 0),
                (3, 2),
                (1, 4),
                (2, 5),
                (4, 5),
            ],
        );
        let eng = MixenEngine::new(
            &g,
            MixenOpts {
                block_side: 2,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
        );
        let reference = ReferenceEngine::new(&g);
        for iters in 1..8 {
            let a = pagerank(&g, &eng, PageRankOpts::default(), iters);
            let b = pagerank(&g, &reference, PageRankOpts::default(), iters);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-5, "iters {iters}: {a:?} vs {b:?}");
            }
        }
    }

    /// The serving loop's contract: advancing in batches reproduces the
    /// single-shot run bit-for-bit, because the stream stores the engine's
    /// native (propagated) state between batches.
    #[test]
    fn stream_batches_match_single_shot_bitwise() {
        use mixen_graph::{Dataset, Scale};
        let g = Dataset::Weibo.generate(Scale::Tiny, 7);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let opts = PageRankOpts::default();
        let full = pagerank(&g, &engine, opts, 12);
        let mut stream = PageRankStream::new(&g, &engine, opts);
        for batch in [1usize, 3, 8] {
            let residual = stream.advance(batch);
            assert!(residual.is_finite());
        }
        assert_eq!(stream.iterations(), 12);
        let streamed = stream.scores();
        let full_bits: Vec<u32> = full.iter().map(|s| s.to_bits()).collect();
        let stream_bits: Vec<u32> = streamed.iter().map(|s| s.to_bits()).collect();
        assert_eq!(full_bits, stream_bits);
    }

    #[test]
    fn stream_redistribute_matches_batch_entry_point() {
        let g = Graph::from_pairs(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)]);
        let engine = ReferenceEngine::new(&g);
        let opts = PageRankOpts {
            redistribute: true,
            ..PageRankOpts::default()
        };
        let full = pagerank(&g, &engine, opts, 9);
        let mut stream = PageRankStream::new(&g, &engine, opts);
        stream.advance(4);
        stream.advance(5);
        assert_eq!(stream.scores(), full);
        assert!((total_mass(&stream.scores()) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stream_residual_shrinks_and_zero_advance_is_free() {
        let g = ring();
        let engine = ReferenceEngine::new(&g);
        let mut stream = PageRankStream::new(&g, &engine, PageRankOpts::default());
        assert_eq!(stream.advance(0), 0.0);
        let early = stream.advance(5);
        let late = stream.advance(5);
        assert!(late <= early, "residual grew: {early} -> {late}");
    }

    #[test]
    fn convergence_variant_stops() {
        let g = ring();
        let (scores, iters) = pagerank_until(
            &g,
            &ReferenceEngine::new(&g),
            PageRankOpts::default(),
            1e-9,
            500,
        );
        assert!(iters < 100);
        assert!((total_mass(&scores) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn adaptive_matches_fixed_iteration_pagerank() {
        let g = Graph::from_pairs(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 0),
                (3, 2),
                (1, 4),
                (2, 5),
                (4, 5),
            ],
        );
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let (scores, stats) = pagerank_adaptive(&g, &engine, PageRankOpts::default(), 0.0, 25);
        let dense = pagerank(&g, &engine, PageRankOpts::default(), stats.iterations);
        for (a, b) in scores.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-5, "{scores:?} vs {dense:?}");
        }
    }

    #[test]
    fn adaptive_converges_with_epsilon() {
        let g = Graph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let (scores, stats) = pagerank_adaptive(&g, &engine, PageRankOpts::default(), 1e-9, 500);
        assert!(stats.converged);
        for &sc in &scores {
            assert!((sc - 0.25).abs() < 1e-4);
        }
    }

    #[test]
    fn redistribution_conserves_mass_with_sinks() {
        // Node 2 is a sink; without redistribution mass leaks.
        let g = Graph::from_pairs(3, &[(0, 1), (1, 2), (1, 0)]);
        let leaky = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 50);
        assert!(total_mass(&leaky) < 0.999);
        let conserved = pagerank(
            &g,
            &ReferenceEngine::new(&g),
            PageRankOpts {
                redistribute: true,
                ..PageRankOpts::default()
            },
            50,
        );
        assert!(
            (total_mass(&conserved) - 1.0).abs() < 1e-3,
            "mass = {}",
            total_mass(&conserved)
        );
    }

    #[test]
    fn supervised_matches_reference() {
        let g = Graph::from_pairs(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 0),
                (3, 2),
                (1, 4),
                (2, 5),
                (4, 5),
            ],
        );
        let runner = mixen_core::RobustRunner::new(mixen_core::RunnerOpts {
            mixen: MixenOpts {
                block_side: 2,
                min_tasks_per_thread: 1,
                ..MixenOpts::default()
            },
            ..mixen_core::RunnerOpts::default()
        });
        let (scores, report) =
            pagerank_supervised(&g, &runner, PageRankOpts::default(), 10).unwrap();
        let want = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 10);
        for (a, b) in scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5, "{scores:?} vs {want:?}");
        }
        assert_eq!(report.iterations, 10);
        assert!(report.degradations.is_empty());
    }

    #[test]
    fn supervised_catches_nan_damping() {
        let g = ring();
        let runner = mixen_core::RobustRunner::new(mixen_core::RunnerOpts::default());
        let failure = pagerank_supervised(
            &g,
            &runner,
            PageRankOpts {
                damping: f32::NAN,
                ..PageRankOpts::default()
            },
            10,
        )
        .unwrap_err();
        assert!(matches!(
            failure.error,
            mixen_graph::GraphError::Numeric { .. }
        ));
        // The report still describes the run up to the fault.
        assert_eq!(failure.report.engine, mixen_core::EngineUsed::Mixen);
    }

    #[test]
    fn supervised_resume_is_bit_identical() {
        let g = Graph::from_pairs(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 0),
                (3, 2),
                (1, 4),
                (2, 5),
                (4, 5),
            ],
        );
        let dir = std::env::temp_dir().join("mixen_algos_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pr.ckpt");
        let pr = PageRankOpts::default();
        let opts = mixen_core::RunnerOpts {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 3,
            fingerprint_extra: pagerank_fingerprint_extra(&pr),
            ..mixen_core::RunnerOpts::default()
        };
        let runner = mixen_core::RobustRunner::new(opts);
        let (want, _) = pagerank_supervised(&g, &runner, pr, 10).unwrap();
        // Simulate an interruption at iteration 6 and resume to 10.
        let (_, report) = pagerank_supervised(&g, &runner, pr, 6).unwrap();
        assert!(report.metrics.get("checkpoints_written") >= 2);
        let (got, report) = pagerank_supervised_resume(&g, &runner, pr, 10).unwrap();
        assert_eq!(report.iterations, 10);
        assert_eq!(report.metrics.get("resumes"), 1);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A different damping factor (wired through fingerprint_extra, as
        // the CLI does) must be rejected as stale.
        let changed = mixen_core::RobustRunner::new(mixen_core::RunnerOpts {
            checkpoint_path: Some(path.clone()),
            fingerprint_extra: pagerank_fingerprint_extra(&PageRankOpts { damping: 0.9, ..pr }),
            ..mixen_core::RunnerOpts::default()
        });
        let err = pagerank_supervised_resume(&g, &changed, pr, 10).unwrap_err();
        assert!(matches!(err.error, mixen_graph::GraphError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_pairs(0, &[]);
        let scores = pagerank(&g, &ReferenceEngine::new(&g), PageRankOpts::default(), 3);
        assert!(scores.is_empty());
    }
}
