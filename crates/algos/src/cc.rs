//! Connected components by min-label propagation.
//!
//! A bonus workload beyond the paper's four: the component label of a node
//! is the minimum node ID reachable along (undirected) paths. With the
//! `min` monoid ([`mixen_graph::MinF32`]) and an `apply` that re-injects
//! each node's own ID, the synchronous kernel computes exactly the
//! monotone closure:
//!
//! `x_t[v] = min{ id(u) : path u → v of length ≤ t }`,
//!
//! so on a symmetric graph it converges to the weak component labels in
//! diameter-many iterations. Like BFS it gains nothing from Mixen's Cache
//! step, but it runs on every engine unchanged — one more probe of the
//! shared contract.
//!
//! IDs are carried in `f32`, exact for `n ≤ 2^24` (all bundled datasets at
//! the scales this repo runs).

use crate::Engine;
use mixen_graph::{Graph, MinF32, NodeId, PropValue};

/// Maximum node count for exact f32 label encoding.
pub const MAX_EXACT_N: usize = 1 << 24;

/// Computes weak-component labels by min-label propagation. The graph
/// should be symmetric (undirected); on directed graphs the result is the
/// "min reachable ancestor" closure instead. Returns `label[v]` = smallest
/// node ID in `v`'s component.
pub fn connected_components<E: Engine>(g: &Graph, engine: &E, max_iters: usize) -> Vec<u32> {
    assert!(
        g.n() <= MAX_EXACT_N,
        "n = {} exceeds exact f32 label range",
        g.n()
    );
    let init = |v: NodeId| MinF32(v as f32);
    let apply = |v: NodeId, min_in: MinF32| {
        let mut out = min_in;
        out.combine(MinF32(v as f32));
        out
    };
    let (labels, _) = engine.iterate_until(init, apply, 0.0, max_iters);
    // lint: allow(truncation) reason=labels are node ids < 2^24, exactly representable in f32
    labels.into_iter().map(|MinF32(x)| x as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::{PushEngine, ReferenceEngine};
    use mixen_core::{MixenEngine, MixenOpts};
    use mixen_graph::{weakly_connected_components, Dataset, EdgeList, Scale};

    fn sym(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut el = EdgeList::from_pairs(n, edges.to_vec());
        el.symmetrize();
        Graph::from_edge_list(&el)
    }

    #[test]
    fn labels_match_union_find_on_small_graph() {
        let g = sym(7, &[(0, 1), (1, 2), (3, 4), (5, 5)]);
        let labels = connected_components(&g, &ReferenceEngine::new(&g), 100);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5, 6]);
        let uf = weakly_connected_components(&g);
        for v in 0..g.n() {
            for w in 0..g.n() {
                assert_eq!(
                    labels[v] == labels[w],
                    uf.labels[v] == uf.labels[w],
                    "partition mismatch at {v},{w}"
                );
            }
        }
    }

    #[test]
    fn engines_agree_on_road() {
        let g = Dataset::Road.generate(Scale::Tiny, 5);
        let want = connected_components(&g, &ReferenceEngine::new(&g), 10);
        // road is connected but has a huge diameter: after only 10 rounds
        // labels are NOT converged — all engines must still agree exactly.
        let mixen = connected_components(&g, &MixenEngine::new(&g, MixenOpts::default()), 10);
        let push = connected_components(&g, &PushEngine::new(&g), 10);
        assert_eq!(want, mixen);
        assert_eq!(want, push);
    }

    #[test]
    fn converges_to_single_label_on_connected_graph() {
        let g = sym(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let labels = connected_components(&g, &ReferenceEngine::new(&g), 100);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn kron_components_match_union_find_partition() {
        let g = Dataset::Kron.generate(Scale::Tiny, 2);
        let labels = connected_components(&g, &MixenEngine::new(&g, MixenOpts::default()), 200);
        let uf = weakly_connected_components(&g);
        // Count distinct labels both ways.
        let mut a: Vec<u32> = labels.clone();
        a.sort_unstable();
        a.dedup();
        assert_eq!(a.len(), uf.count);
    }
}
