//! Ranking utilities: top-k selection and rank-agreement metrics.
//!
//! The paper motivates the advanced algorithms by noting they "perform
//! similarly to the InDegree algorithm" (§2.2, citing Borodin et al.) —
//! these helpers quantify that similarity: top-k overlap and Kendall's τ
//! between score vectors, plus the top-k selection the examples and the
//! CLI print.

/// The serving-path rank order: descending score, NaN *last*, ties broken
/// by node ID (ascending) so results are deterministic.
///
/// A plain descending `total_cmp` would sort NaN above every finite score
/// (IEEE total order puts +NaN above +∞), so a single poisoned score would
/// occupy rank 1 of every served top-k. Here NaN of either sign compares
/// after all finite and infinite scores.
fn rank_order(scores: &[f32], i: usize, j: usize) -> std::cmp::Ordering {
    let (a, b) = (scores[i], scores[j]);
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
    .then(i.cmp(&j))
}

/// Indices of the `k` largest scores, in descending score order. Ties are
/// broken by node ID (ascending) so results are deterministic; NaN scores
/// rank after every finite score (see `rank_order`).
///
/// This is a per-request hot path in `mixen-serve`, so selection is
/// partial: an O(n) `select_nth_unstable_by` narrows the candidates to `k`
/// before the O(k log k) sort — not the full O(n log n) sort the batch
/// tools used to pay.
pub fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, |&i, &j| rank_order(scores, i, j));
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&i, &j| rank_order(scores, i, j));
    idx
}

/// Fraction of the top-k sets that two score vectors share, in `[0, 1]`.
/// Inherits [`top_k`]'s NaN-last guard: a poisoned score cannot inflate
/// either top-k set, so the overlap compares the *valid* leaders.
pub fn top_k_overlap(a: &[f32], b: &[f32], k: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    let k = k.min(a.len());
    if k == 0 {
        return 1.0;
    }
    let sa: std::collections::HashSet<usize> = top_k(a, k).into_iter().collect();
    let sb: std::collections::HashSet<usize> = top_k(b, k).into_iter().collect();
    sa.intersection(&sb).count() as f64 / k as f64
}

/// Kendall's τ-a between two score vectors, in `[-1, 1]`: +1 for identical
/// orderings, −1 for reversed. O(n²) — intended for sampled or small `n`;
/// use [`kendall_tau_sampled`] on big graphs.
pub fn kendall_tau(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i].total_cmp(&a[j]) as i32;
            let db = b[i].total_cmp(&b[j]) as i32;
            match da * db {
                x if x > 0 => concordant += 1,
                x if x < 0 => discordant += 1,
                _ => {}
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Kendall's τ-a estimated from `samples` random index pairs (deterministic
/// splitmix64 sampling), for vectors too large for the exact O(n²) count.
pub fn kendall_tau_sampled(a: &[f32], b: &[f32], samples: usize, seed: u64) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut counted = 0i64;
    for _ in 0..samples {
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        if i == j {
            continue;
        }
        let da = a[i].total_cmp(&a[j]) as i32;
        let db = b[i].total_cmp(&b[j]) as i32;
        match da * db {
            x if x > 0 => concordant += 1,
            x if x < 0 => discordant += 1,
            _ => {}
        }
        counted += 1;
    }
    if counted == 0 {
        return 1.0;
    }
    (concordant - discordant) as f64 / counted as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let scores = [1.0f32, 5.0, 3.0, 5.0, 0.5];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&scores, 99).len(), 5);
        assert!(top_k(&scores, 0).is_empty());
    }

    /// Regression: NaN used to sort *above* +∞ under descending
    /// `total_cmp`, so one poisoned score owned rank 1 of every served
    /// top-k. NaN (either sign) must rank last.
    #[test]
    fn top_k_orders_nan_last() {
        let scores = [1.0f32, f32::NAN, 3.0, -f32::NAN, 2.0];
        assert_eq!(top_k(&scores, 3), vec![2, 4, 0]);
        // NaNs only appear once every finite score is exhausted, in
        // node-id order.
        assert_eq!(top_k(&scores, 5), vec![2, 4, 0, 1, 3]);
        let all_nan = [f32::NAN; 3];
        assert_eq!(top_k(&all_nan, 2), vec![0, 1]);
        // -inf still beats NaN.
        let with_inf = [f32::NAN, f32::NEG_INFINITY, f32::INFINITY];
        assert_eq!(top_k(&with_inf, 3), vec![2, 1, 0]);
    }

    /// The partial-selection path must agree with a full sort on every
    /// k, NaN entries included.
    #[test]
    fn top_k_partial_selection_matches_full_sort() {
        let scores: Vec<f32> = (0..257)
            .map(|i| {
                if i % 51 == 0 {
                    f32::NAN
                } else {
                    ((i as f32) * 0.37).sin() * 10.0
                }
            })
            .collect();
        let mut full: Vec<usize> = (0..scores.len()).collect();
        full.sort_by(|&i, &j| rank_order(&scores, i, j));
        for k in [1, 2, 7, 64, 256, 257, 300] {
            assert_eq!(top_k(&scores, k), full[..k.min(scores.len())], "k={k}");
        }
    }

    #[test]
    fn overlap_ignores_nan_poisoning() {
        let clean = [4.0f32, 3.0, 2.0, 1.0];
        let poisoned = [4.0f32, 3.0, f32::NAN, 1.0];
        // Ranks 1–2 are unaffected by the poisoned third entry.
        assert_eq!(top_k_overlap(&clean, &poisoned, 2), 1.0);
    }

    #[test]
    fn overlap_bounds() {
        let a = [3.0f32, 2.0, 1.0, 0.0];
        let b = [0.0f32, 1.0, 2.0, 3.0];
        assert_eq!(top_k_overlap(&a, &a, 2), 1.0);
        assert_eq!(top_k_overlap(&a, &b, 2), 0.0);
        assert_eq!(top_k_overlap(&a, &b, 4), 1.0);
    }

    #[test]
    fn kendall_extremes() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let rev = [4.0f32, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
    }

    #[test]
    fn kendall_partial_agreement() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 3.0, 2.0]; // one swapped pair of three
        let tau = kendall_tau(&a, &b);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn sampled_tau_tracks_exact() {
        let a: Vec<f32> = (0..500).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = a.iter().map(|x| x * 0.9 + 0.01).collect();
        let exact = kendall_tau(&a, &b);
        let approx = kendall_tau_sampled(&a, &b, 200_000, 1);
        assert!((exact - approx).abs() < 0.03, "{exact} vs {approx}");
    }

    #[test]
    fn indegree_predicts_pagerank_on_skewed_graph() {
        // The paper's §2.2 claim, quantified on a stand-in.
        use crate::{indegree, pagerank, PageRankOpts};
        use mixen_baselines::ReferenceEngine;
        use mixen_graph::{Dataset, Scale};
        let g = Dataset::Weibo.generate(Scale::Tiny, 12);
        let e = ReferenceEngine::new(&g);
        let ind = indegree(&e);
        let pr = pagerank(&g, &e, PageRankOpts::default(), 20);
        assert!(
            top_k_overlap(&ind, &pr, 20) >= 0.6,
            "overlap = {}",
            top_k_overlap(&ind, &pr, 20)
        );
    }
}
