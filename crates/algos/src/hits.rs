//! HITS — Hyperlink-Induced Topic Search (Kleinberg), §2.2.
//!
//! Two mutually-reinforcing scores per node: authorities are pointed at by
//! good hubs, hubs point at good authorities. Each half-step is one SpMV —
//! the authority update pulls along in-edges of `G`, the hub update pulls
//! along in-edges of `G` reversed — so the algorithm takes two engines, one
//! per direction (build the second over [`mixen_graph::Graph::reversed`]).

use crate::Engine;
use mixen_graph::NodeId;

/// The two HITS score vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct HitsScores {
    /// Authority scores (L2-normalized).
    pub authority: Vec<f32>,
    /// Hub scores (L2-normalized).
    pub hub: Vec<f32>,
}

/// Runs `iters` HITS iterations. `fwd` must be an engine over the original
/// graph, `rev` over its reverse.
pub fn hits<F: Engine, R: Engine>(n: usize, fwd: &F, rev: &R, iters: usize) -> HitsScores {
    let mut hub = vec![1.0f32; n];
    let mut authority = vec![1.0f32; n];
    normalize(&mut hub);
    normalize(&mut authority);
    for _ in 0..iters {
        let h = &hub;
        authority = fwd.iterate(|v: NodeId| h[v as usize], |_, s: f32| s, 1);
        normalize(&mut authority);
        let a = &authority;
        hub = rev.iterate(|v: NodeId| a[v as usize], |_, s: f32| s, 1);
        normalize(&mut hub);
    }
    HitsScores { authority, hub }
}

fn normalize(v: &mut [f32]) {
    let norm = v
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    if norm > 0.0 {
        let inv = (1.0 / norm) as f32;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::ReferenceEngine;
    use mixen_core::{MixenEngine, MixenOpts};
    use mixen_graph::Graph;

    /// A small bipartite-ish web: 0,1 are hubs pointing at 2,3 (authorities).
    fn web() -> Graph {
        Graph::from_pairs(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 2)])
    }

    #[test]
    fn hubs_and_authorities_separate() {
        let g = web();
        let rev = g.reversed();
        let scores = hits(
            g.n(),
            &ReferenceEngine::new(&g),
            &ReferenceEngine::new(&rev),
            20,
        );
        // 2 and 3 are the authorities; 0 and 1 the strongest hubs.
        assert!(scores.authority[2] > scores.authority[0]);
        assert!(scores.authority[3] > scores.authority[0]);
        assert!(scores.hub[0] > scores.hub[2]);
        assert!(scores.hub[0] > scores.hub[4], "two-link hub beats one-link");
    }

    #[test]
    fn scores_are_normalized() {
        let g = web();
        let rev = g.reversed();
        let s = hits(
            g.n(),
            &ReferenceEngine::new(&g),
            &ReferenceEngine::new(&rev),
            5,
        );
        let na: f64 = s.authority.iter().map(|&x| (x as f64).powi(2)).sum();
        let nh: f64 = s.hub.iter().map(|&x| (x as f64).powi(2)).sum();
        assert!((na - 1.0).abs() < 1e-4);
        assert!((nh - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mixen_matches_reference() {
        let g = web();
        let rev = g.reversed();
        let opts = MixenOpts {
            block_side: 2,
            min_tasks_per_thread: 1,
            ..MixenOpts::default()
        };
        let a = hits(
            g.n(),
            &MixenEngine::new(&g, opts),
            &MixenEngine::new(&rev, opts),
            8,
        );
        let b = hits(
            g.n(),
            &ReferenceEngine::new(&g),
            &ReferenceEngine::new(&rev),
            8,
        );
        for (x, y) in a.authority.iter().zip(&b.authority) {
            assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in a.hub.iter().zip(&b.hub) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_pairs(0, &[]);
        let rev = g.reversed();
        let s = hits(0, &ReferenceEngine::new(&g), &ReferenceEngine::new(&rev), 3);
        assert!(s.authority.is_empty() && s.hub.is_empty());
    }
}
