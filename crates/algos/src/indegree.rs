//! The InDegree algorithm and its SpMV generalization (§2.2).
//!
//! InDegree is the precursor of all link-analysis algorithms: a node's score
//! is the number of links pointing at it, i.e. one iteration of
//! `y = Aᵀ·1`. The same single iteration with an arbitrary input vector is
//! the SpMV primitive advanced algorithms (Collaborative Filtering, GNN
//! feature propagation) build on.

use crate::Engine;
use mixen_graph::NodeId;

/// Ranks nodes by in-degree: one propagation of the all-ones vector.
pub fn indegree<E: Engine>(engine: &E) -> Vec<f32> {
    engine.iterate(|_| 1.0f32, |_, sum| sum, 1)
}

/// One SpMV, `y = Aᵀ x`, over the engine.
pub fn spmv<E: Engine>(engine: &E, x: &[f32]) -> Vec<f32> {
    engine.iterate(|v: NodeId| x[v as usize], |_, sum| sum, 1)
}

/// The paper's InDegree *timing* workload: `iters` back-to-back SpMV
/// iterations with the convergence condition removed (§6.1 runs 100 and
/// reports the per-iteration average). Values are damped by 1/16 per
/// iteration purely to keep the floats finite over long runs; the memory
/// behaviour is identical to the raw kernel.
pub fn indegree_iterated<E: Engine>(engine: &E, iters: usize) -> Vec<f32> {
    engine.iterate(|_| 1.0f32, |_, sum| sum * 0.0625, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixen_baselines::ReferenceEngine;
    use mixen_core::{MixenEngine, MixenOpts};
    use mixen_graph::Graph;

    fn toy() -> Graph {
        Graph::from_pairs(4, &[(0, 1), (2, 1), (3, 1), (1, 2)])
    }

    #[test]
    fn indegree_counts_incoming_links() {
        let g = toy();
        let scores = indegree(&ReferenceEngine::new(&g));
        assert_eq!(scores, vec![0.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn indegree_same_on_mixen() {
        let g = toy();
        let e = MixenEngine::new(&g, MixenOpts::default());
        assert_eq!(indegree(&e), vec![0.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn spmv_weighted_input() {
        let g = toy();
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = spmv(&ReferenceEngine::new(&g), &x);
        // y[1] = x[0] + x[2] + x[3] = 8; y[2] = x[1] = 2.
        assert_eq!(y, vec![0.0, 8.0, 2.0, 0.0]);
    }

    #[test]
    fn spmv_linearity() {
        let g = toy();
        let e = ReferenceEngine::new(&g);
        let a = [1.0f32, 0.0, 2.0, 1.0];
        let b = [0.5f32, 3.0, 0.0, 1.0];
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ya = spmv(&e, &a);
        let yb = spmv(&e, &b);
        let ysum = spmv(&e, &sum);
        for i in 0..4 {
            assert!((ya[i] + yb[i] - ysum[i]).abs() < 1e-5);
        }
    }
}
