//! Micro-benchmarks of Mixen's building blocks: filtering, partitioning,
//! one Scatter+Gather round, the Pre-Phase seed push, and BFS level
//! expansion. These back the preprocessing numbers of Table 4 and the
//! phase-cost discussion of §4.3.

use criterion::{criterion_group, criterion_main, Criterion};
use mixen_core::bins::{DynamicBins, StaticBin};
use mixen_core::{scga, BlockedSubgraph, FilteredGraph, MixenEngine, MixenOpts};
use mixen_graph::{Dataset, Scale};

fn bench_kernels(c: &mut Criterion) {
    let g = Dataset::Wiki.generate(Scale::Tiny, 42);
    let opts = MixenOpts::default();

    c.bench_function("filter/wiki", |b| {
        b.iter(|| FilteredGraph::new(&g));
    });

    let filtered = FilteredGraph::new(&g);
    c.bench_function("partition/wiki", |b| {
        b.iter(|| BlockedSubgraph::new(filtered.reg_csr(), &opts, 1));
    });

    let blocked = BlockedSubgraph::new(filtered.reg_csr(), &opts, 1);
    let r = filtered.num_regular();
    c.bench_function("scatter_gather/wiki", |b| {
        let mut bins: DynamicBins<f32> = DynamicBins::new(&blocked);
        let mut x = vec![1.0f32; r];
        let mut y = vec![0.0f32; r];
        b.iter(|| {
            scga::scatter(&blocked, &mut x, &mut bins, None);
            scga::gather(&blocked, &bins, &mut y, |_, s| s * 0.5);
        });
    });

    c.bench_function("pre_phase_seed_push/wiki", |b| {
        let seed_vals = vec![1.0f32; filtered.num_seed()];
        b.iter(|| StaticBin::compute(filtered.seed_csr(), &seed_vals, r));
    });

    let engine = MixenEngine::new(&g, opts);
    c.bench_function("bfs/wiki", |b| {
        b.iter(|| engine.bfs(0));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels
}
criterion_main!(benches);
