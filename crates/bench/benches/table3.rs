//! Criterion bench behind **Table 3**: per-iteration time of each
//! algorithm × framework on each dataset (tiny scale, so the full sweep
//! stays tractable under Criterion's sampling; run the `table3` binary with
//! `--scale medium` for the paper-shaped wall-clock table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixen_algos::{
    bfs, collaborative_filtering, default_root, indegree_iterated, pagerank, AnyEngine, CfOpts,
    EngineKind, PageRankOpts,
};
use mixen_graph::{Dataset, Scale};

fn bench_table3(c: &mut Criterion) {
    // A representative subset: the paper's headline skewed graph types plus
    // one non-skewed control.
    let datasets = [Dataset::Weibo, Dataset::Wiki, Dataset::Rmat, Dataset::Urand];
    for d in datasets {
        let g = d.generate(Scale::Tiny, 42);
        let engines: Vec<(EngineKind, AnyEngine<'_>)> = EngineKind::ALL
            .iter()
            .map(|&k| (k, AnyEngine::build(k, &g)))
            .collect();
        let root = default_root(&g);

        let mut group = c.benchmark_group(format!("indegree/{}", d.name()));
        for (kind, engine) in &engines {
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), engine, |b, e| {
                b.iter(|| indegree_iterated(e, 5));
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("pagerank/{}", d.name()));
        for (kind, engine) in &engines {
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), engine, |b, e| {
                b.iter(|| pagerank(&g, e, PageRankOpts::default(), 5));
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("cf/{}", d.name()));
        for (kind, engine) in &engines {
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), engine, |b, e| {
                b.iter(|| {
                    collaborative_filtering(
                        &g,
                        e,
                        CfOpts {
                            blend: 0.5,
                            iters: 2,
                        },
                    )
                });
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("bfs/{}", d.name()));
        for (kind, engine) in &engines {
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), engine, |b, e| {
                b.iter(|| bfs(e, root));
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_table3
}
criterion_main!(benches);
