//! Micro-benchmarks of the graph substrate: CSR construction, transpose,
//! classification, statistics and dataset generation — the building blocks
//! behind Table 4's preprocessing costs.

use criterion::{criterion_group, criterion_main, Criterion};
use mixen_graph::{Classification, Csr, Dataset, Graph, Scale, StructuralStats};

fn bench_substrate(c: &mut Criterion) {
    let g = Dataset::Wiki.generate(Scale::Tiny, 42);
    let pairs: Vec<(u32, u32)> = g.edges().collect();
    let n = g.n();

    c.bench_function("substrate/csr_from_edges", |b| {
        b.iter(|| Csr::from_edges(n, &pairs));
    });

    c.bench_function("substrate/transpose", |b| {
        b.iter(|| g.out_csr().transpose());
    });

    c.bench_function("substrate/graph_from_pairs", |b| {
        b.iter(|| Graph::from_pairs(n, &pairs));
    });

    c.bench_function("substrate/classification", |b| {
        b.iter(|| Classification::of(&g));
    });

    c.bench_function("substrate/structural_stats", |b| {
        b.iter(|| StructuralStats::of(&g));
    });

    let mut group = c.benchmark_group("substrate/generate");
    for d in [Dataset::Weibo, Dataset::Rmat, Dataset::Road] {
        group.bench_function(d.name(), |b| {
            b.iter(|| d.generate(Scale::Tiny, 1));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_substrate
}
criterion_main!(benches);
