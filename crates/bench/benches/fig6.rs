//! Criterion bench behind **Fig. 6**: PageRank per-iteration time as a
//! function of Mixen's block side, on the two graphs the paper's
//! discussion singles out (pld for the L2 regime, weibo for the
//! small-regular-count regime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixen_algos::{pagerank, PageRankOpts};
use mixen_core::{MixenEngine, MixenOpts};
use mixen_graph::{Dataset, Scale};

fn bench_block_sizes(c: &mut Criterion) {
    for d in [Dataset::Pld, Dataset::Weibo] {
        let g = d.generate(Scale::Tiny, 42);
        let mut group = c.benchmark_group(format!("fig6/{}", d.name()));
        for shift in 0..7 {
            let side = 256usize << shift;
            let engine = MixenEngine::new(
                &g,
                MixenOpts {
                    block_side: side,
                    min_tasks_per_thread: 1,
                    ..MixenOpts::default()
                },
            );
            group.bench_with_input(BenchmarkId::from_parameter(side), &engine, |b, e| {
                b.iter(|| pagerank(&g, e, PageRankOpts::default(), 5));
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_block_sizes
}
criterion_main!(benches);
